//! Dynamic load balancing of a particle-in-cell simulation — the paper's
//! motivating application (PIC-MAG), extended with the migration-cost
//! accounting its §5 names as future work.
//!
//! A magnetosphere-style PIC run drifts over time; this example
//! repartitions every snapshot with `JAG-M-HEUR` and contrasts an
//! always-repartition policy with an imbalance-threshold policy.
//!
//! ```text
//! cargo run --release --example pic_dynamic_rebalance
//! ```

use rectpart::prelude::*;
use rectpart::simexec::{dynamic_run, RebalancePolicy};

fn main() {
    let cfg = PicConfig {
        rows: 128,
        cols: 128,
        particles: 100_000,
        snapshots: 12,
        ..PicConfig::default()
    };
    println!(
        "simulating {}x{} PIC-MAG, {} particles, {} snapshots…",
        cfg.rows, cfg.cols, cfg.particles, cfg.snapshots
    );
    let trace: Vec<_> = rectpart::workloads::pic_trace(&cfg)
        .into_iter()
        .map(|s| s.matrix)
        .collect();

    let m = 64;
    let algo = JagMHeur::best();
    let model = CommModel::default();

    for (label, policy) in [
        ("repartition every snapshot", RebalancePolicy::EverySnapshot),
        (
            "repartition when imbalance > 10%",
            RebalancePolicy::Threshold(0.10),
        ),
    ] {
        let stats = dynamic_run(&trace, &algo, m, &model, policy);
        println!("\npolicy: {label}");
        println!(
            "{:>5} {:>12} {:>12} {:>8} {:>14}",
            "step", "imbalance", "makespan", "repart", "migrated cells"
        );
        for s in &stats {
            println!(
                "{:>5} {:>11.2}% {:>12.0} {:>8} {:>14}",
                s.step,
                100.0 * s.imbalance,
                s.makespan,
                if s.repartitioned { "yes" } else { "-" },
                s.migration_cells
            );
        }
        let moved: u64 = stats.iter().map(|s| s.migration_cells).sum();
        let mean_imb = stats.iter().map(|s| s.imbalance).sum::<f64>() / stats.len() as f64;
        println!(
            "total cells migrated: {moved}, mean imbalance: {:.2}%",
            100.0 * mean_imb
        );
    }
}
