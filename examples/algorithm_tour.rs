//! Algorithm tour: every solution class of the paper on one instance,
//! heuristics and (where tractable) exact optima side by side.
//!
//! ```text
//! cargo run --release --example algorithm_tour
//! ```

use rectpart::core::{
    exhaustive_opt, hier_opt, jag_m_opt_dp, standard_heuristics, Axis, JagMOpt, JagPqOpt,
    LoadMatrix,
};
use rectpart::prelude::*;

fn main() {
    // A multi-peak instance, small enough that even the exact dynamic
    // programs answer quickly.
    let n = 48;
    let m = 12;
    let matrix = multi_peak(n, n, 7).build();
    let pfx = PrefixSum2D::new(&matrix);
    println!(
        "instance: {n}x{n} Multi-peak, total {}, m = {m}, lower bound = {}",
        pfx.total(),
        pfx.lower_bound(m)
    );

    println!("\n{:<22} {:>12} {:>12}", "algorithm", "Lmax", "imbalance");
    let report = |name: &str, part: &rectpart::core::Partition| {
        part.validate(&pfx).expect(name);
        println!(
            "{name:<22} {:>12} {:>11.2}%",
            part.lmax(&pfx),
            100.0 * part.load_imbalance(&pfx)
        );
    };

    for algo in standard_heuristics() {
        report(&algo.name(), &algo.partition(&pfx, m));
    }
    report("JAG-PQ-OPT-BEST", &JagPqOpt::default().partition(&pfx, m));
    report("JAG-M-OPT-BEST", &JagMOpt::default().partition(&pfx, m));
    let (hier, hier_value) = hier_opt(&pfx, m);
    report("HIER-OPT", &hier);
    assert_eq!(hier.lmax(&pfx), hier_value);

    // The paper's literal JAG-M-OPT dynamic program agrees with the
    // parametric solver (per orientation).
    let dp = jag_m_opt_dp(&pfx, Axis::Rows, m);
    println!("\nJAG-M-OPT DP cross-check (rows orientation): Lmax = {dp}");

    // On a tiny instance, compare every class against the NP-hard
    // arbitrary-rectangle optimum.
    let tiny = LoadMatrix::from_fn(6, 6, |r, c| 1 + ((r * 31 + c * 17) % 13) as u32);
    let tiny_pfx = PrefixSum2D::new(&tiny);
    let (arb, arb_value) = exhaustive_opt(&tiny_pfx, 4);
    println!(
        "\n6x6 oracle, m = 4: arbitrary optimum Lmax = {arb_value}, \
         m-way jagged = {}, hierarchical = {}",
        JagMOpt::default().partition(&tiny_pfx, 4).lmax(&tiny_pfx),
        hier_opt(&tiny_pfx, 4).1,
    );
    println!("arbitrary-optimal tiling:\n{}", arb.ascii_art(6, 6));
}
