//! Real threads, real balance: a partitioned Jacobi stencil mini-app.
//!
//! Everything else in this repository *models* a parallel machine; this
//! example runs one. A heat-diffusion stencil with per-cell heterogeneous
//! work (the load matrix made literal) executes on one OS thread per
//! processor, and the per-thread busy times show how the paper's
//! imbalance metric translates into actual idle cores.
//!
//! ```text
//! cargo run --release --example stencil_app
//! ```

use rectpart::prelude::*;
use rectpart::simexec::{run_stencil, run_stencil_sequential, StencilConfig};

fn main() {
    // Use a handful of threads even on small machines: with timesharing
    // the per-thread busy totals still expose the work distribution.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8))
        .unwrap_or(4);
    let matrix = peak(192, 192, 17).build();
    // Compress the peak's dynamic range so a single cell cannot dominate
    // a whole thread (work per cell = sqrt of the instance load).
    let work = LoadMatrixExt::sqrt_loads(&matrix);
    let pfx = PrefixSum2D::new(&work);
    let cfg = StencilConfig {
        iterations: 6,
        work_scale: 8,
    };
    println!(
        "Jacobi stencil on {}x{} Peak-derived work field, {} threads, {} iterations",
        work.rows(),
        work.cols(),
        threads,
        cfg.iterations
    );
    let reference = run_stencil_sequential(&work, &cfg);

    println!(
        "\n{:<22} {:>10} {:>12} {:>12} {:>10}",
        "partitioner", "imbalance", "wall (s)", "busy max(s)", "balance"
    );
    for algo in [
        &RectUniform::default() as &dyn Partitioner,
        &JagMHeur::best(),
        &HierRelaxed::load(),
    ] {
        let part = algo.partition(&pfx, threads);
        let rep = run_stencil(&work, &part, &cfg);
        assert_eq!(
            rep.checksum.to_bits(),
            reference.to_bits(),
            "parallel run must be bit-identical to the sequential reference"
        );
        let busy_max = rep.busy_seconds.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<22} {:>9.2}% {:>12.3} {:>12.3} {:>9.1}%",
            algo.name(),
            100.0 * part.load_imbalance(&pfx),
            rep.wall_seconds,
            busy_max,
            100.0 * rep.balance_efficiency
        );
    }
    println!(
        "\n(balance = mean busy / max busy across threads; the predicted\n\
         imbalance ordering shows up as real idle time)"
    );
}

/// Local helper: per-cell square root of the loads (clamped to ≥ 1).
struct LoadMatrixExt;

impl LoadMatrixExt {
    fn sqrt_loads(m: &rectpart::core::LoadMatrix) -> rectpart::core::LoadMatrix {
        rectpart::core::LoadMatrix::from_fn(m.rows(), m.cols(), |r, c| {
            (m.get(r, c) as f64).sqrt().max(1.0) as u32
        })
    }
}
