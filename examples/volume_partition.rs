//! Partitioning in three dimensions — and why the paper's "accumulate
//! to 2D" preprocessing is a legitimate shortcut.
//!
//! Runs the 3D PIC-MAG simulation, partitions the raw volume with the 3D
//! algorithms, then partitions the accumulated 2D matrix (the paper's
//! pipeline) and extrudes the result back to 3D for comparison.
//!
//! ```text
//! cargo run --release --example volume_partition
//! ```

use rectpart::core::{JagMHeur, Partitioner, PrefixSum2D};
use rectpart::volume::{
    Axis3, Box3, HierRb3, JagMHeur3, Partition3, Partitioner3, PrefixSum3D, RectUniform3,
};
use rectpart::workloads::{Pic3Config, Pic3Simulation, PicConfig};

fn main() {
    let cfg = Pic3Config {
        planar: PicConfig {
            rows: 96,
            cols: 96,
            particles: 120_000,
            snapshots: 4,
            ..PicConfig::default()
        },
        depth: 24,
        vz_thermal: 0.3,
    };
    println!(
        "simulating {}x{}x{} PIC-MAG volume, {} particles…",
        cfg.planar.rows, cfg.planar.cols, cfg.depth, cfg.planar.particles
    );
    let mut sim = Pic3Simulation::new(cfg.clone());
    let volume = (0..4).map(|_| sim.next_snapshot()).last().unwrap().volume;
    let pfx3 = PrefixSum3D::new(&volume);
    let m = 64;

    println!("\n3D partitioners, m = {m}:");
    println!("{:<22} {:>12} {:>12}", "algorithm", "Lmax", "imbalance");
    let threed: Vec<(String, Partition3)> = vec![
        (
            RectUniform3::default().name(),
            RectUniform3::default().partition(&pfx3, m),
        ),
        (
            JagMHeur3::new(&volume, Axis3::X).name(),
            JagMHeur3::new(&volume, Axis3::X).partition(&pfx3, m),
        ),
        (HierRb3.name(), HierRb3.partition(&pfx3, m)),
    ];
    for (name, p) in &threed {
        p.validate(&pfx3).expect("3D tiling");
        println!(
            "{name:<22} {:>12} {:>11.2}%",
            p.lmax(&pfx3),
            100.0 * p.load_imbalance(&pfx3)
        );
    }

    // The paper's pipeline: accumulate along the depth axis, partition in
    // 2D, extrude each rectangle through the full depth.
    let flat = volume.flatten(Axis3::Z);
    let pfx2 = PrefixSum2D::new(&flat);
    let part2 = JagMHeur::best().partition(&pfx2, m);
    let depth = volume.dims().2;
    let extruded = Partition3::new(
        part2
            .rects()
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Box3::EMPTY
                } else {
                    Box3::new(r.r0, r.r1, r.c0, r.c1, 0, depth)
                }
            })
            .collect(),
    );
    extruded.validate(&pfx3).expect("extruded tiling");
    println!(
        "\npaper pipeline (flatten -> JAG-M-HEUR -> extrude): Lmax = {}, imbalance = {:.2}%",
        extruded.lmax(&pfx3),
        100.0 * extruded.load_imbalance(&pfx3)
    );
    println!(
        "2D imbalance on the accumulated matrix itself:       {:.2}%",
        100.0 * part2.load_imbalance(&pfx2)
    );
    println!(
        "\nBecause column loads are preserved by accumulation, the extruded\n\
         partition's imbalance equals the 2D one — the paper's preprocessing\n\
         loses nothing for column-shaped (extruded) solutions, while native\n\
         3D classes can additionally cut along the depth axis."
    );
}
