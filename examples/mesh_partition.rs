//! Partitioning a projected 3D mesh — the paper's SLAC scenario
//! (figure 14): a sparse matrix where most cells are empty and the load
//! hugs curved silhouette bands. Sparsity is what separates the
//! hierarchical methods from everything else.
//!
//! ```text
//! cargo run --release --example mesh_partition
//! ```

use rectpart::core::standard_heuristics;
use rectpart::prelude::*;
use rectpart::workloads::MeshKind;

fn main() {
    let cfg = MeshConfig {
        grid_rows: 256,
        grid_cols: 256,
        u_samples: 1024,
        v_samples: 512,
        kind: MeshKind::Cavity { cells: 9 },
    };
    let matrix = cfg.generate();
    let zeros = matrix.data().iter().filter(|&&v| v == 0).count();
    println!(
        "cavity mesh projected to {}x{}: {} vertices, {:.1}% empty cells",
        matrix.rows(),
        matrix.cols(),
        matrix.total(),
        100.0 * zeros as f64 / (matrix.rows() * matrix.cols()) as f64
    );
    println!("\nsilhouette:\n{}", matrix.ascii_art(20, 56));

    let pfx = PrefixSum2D::new(&matrix);
    let m = 144;
    println!("{:<22} {:>12} {:>12}", "algorithm", "Lmax", "imbalance");
    for algo in standard_heuristics() {
        let part = algo.partition(&pfx, m);
        part.validate(&pfx).expect("valid tiling");
        println!(
            "{:<22} {:>12} {:>11.2}%",
            algo.name(),
            part.lmax(&pfx),
            100.0 * part.load_imbalance(&pfx)
        );
    }

    let hier = HierRelaxed::load().partition(&pfx, m);
    println!(
        "\nHIER-RELAXED tiling (note how rectangles shrink on the dense bands):\n{}",
        hier.ascii_art_scaled(256, 256, 20, 56)
    );
}
