//! Quickstart: generate a spatial load, partition it for 100 processors
//! with the paper's best heuristic, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rectpart::prelude::*;

fn main() {
    // A 256x256 synthetic instance with a single load peak (paper §4.1).
    let matrix = peak(256, 256, 42).build();
    println!("instance: 256x256 Peak, total load {}", matrix.total());

    // The 2D prefix-sum array Γ answers rectangle loads in O(1).
    let pfx = PrefixSum2D::new(&matrix);

    // m-way jagged heuristic — the paper's overall winner (JAG-M-HEUR).
    let m = 100;
    let partition = JagMHeur::best().partition(&pfx, m);
    partition
        .validate(&pfx)
        .expect("partitions always tile the matrix");

    println!(
        "JAG-M-HEUR, m={m}: Lmax = {}, lower bound = {}, imbalance = {:.2}%",
        partition.lmax(&pfx),
        pfx.lower_bound(m),
        100.0 * partition.load_imbalance(&pfx)
    );

    // Where did the rectangles land? (letters cycle across processors)
    println!("\nload (darker = heavier):\n{}", matrix.ascii_art(24, 48));
    println!(
        "partition:\n{}",
        partition.ascii_art_scaled(256, 256, 24, 48)
    );

    // Compare against the naive MPI_Cart-style grid.
    let naive = RectUniform::default().partition(&pfx, m);
    println!(
        "RECT-UNIFORM imbalance for comparison: {:.2}%",
        100.0 * naive.load_imbalance(&pfx)
    );
}
