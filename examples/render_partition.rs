//! Sort-first parallel rendering — the paper's image-rendering
//! motivation (§1): partition the screen so every processor renders an
//! equally expensive set of pixels, here on a fractal render-cost field
//! with heterogeneous processors thrown in (related-work extension).
//!
//! ```text
//! cargo run --release --example render_partition
//! ```

use rectpart::core::standard_heuristics;
use rectpart::prelude::*;
use rectpart::workloads::RenderConfig;

fn main() {
    let cfg = RenderConfig {
        rows: 384,
        cols: 512,
        ..RenderConfig::default()
    };
    let cost = cfg.generate();
    println!(
        "render-cost field {}x{}: total {}, per-pixel cost 1..{} (delta {:.0})",
        cost.rows(),
        cost.cols(),
        cost.total(),
        cost.max_cell(),
        cost.delta().unwrap()
    );
    println!(
        "\ncost field (darker = cheaper):\n{}",
        cost.ascii_art(18, 48)
    );

    let pfx = PrefixSum2D::new(&cost);
    let m = 64;
    println!("{:<22} {:>12} {:>12}", "algorithm", "Lmax", "imbalance");
    for algo in standard_heuristics() {
        let part = algo.partition(&pfx, m);
        part.validate(&pfx).expect("valid tiling");
        println!(
            "{:<22} {:>12} {:>11.2}%",
            algo.name(),
            part.lmax(&pfx),
            100.0 * part.load_imbalance(&pfx)
        );
    }

    // Heterogeneous cluster: half the processors are twice as fast. The
    // BSP simulator prices the same partition on both machines.
    let part = JagMHeur::best().partition(&pfx, m);
    let homo = Simulator::new(CommModel::default()).evaluate(&pfx, &part);
    let speeds: Vec<f64> = (0..m).map(|p| if p % 2 == 0 { 2.0 } else { 1.0 }).collect();
    let hetero = Simulator::with_speeds(CommModel::default(), speeds).evaluate(&pfx, &part);
    println!(
        "\nJAG-M-HEUR frame time: homogeneous {:.0}, heterogeneous {:.0} \
         (same partition; a load-balanced tiling is speed-oblivious, so\n\
         fast processors idle — the heterogeneity-aware partitioning the\n\
         paper's related work discusses would shift load toward them)",
        homo.makespan, hetero.makespan
    );
}
