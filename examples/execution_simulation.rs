//! End-to-end BSP execution simulation: what a partition's quality means
//! for wall-clock speedup once halo communication is priced in (the
//! communication-cost study the paper's §5 proposes).
//!
//! ```text
//! cargo run --release --example execution_simulation
//! ```

use rectpart::core::standard_heuristics;
use rectpart::prelude::*;

fn main() {
    let matrix = diagonal(256, 256, 11).build();
    let pfx = PrefixSum2D::new(&matrix);
    let m = 256;
    println!(
        "instance: 256x256 Diagonal, m = {m}, serial work = {}",
        pfx.total()
    );

    // A stencil-ish cost model: one halo cell costs 20 cell updates, a
    // message costs 200 (the crate defaults).
    let sim = Simulator::default();
    println!(
        "cost model: alpha = {}, beta = {}, latency = {}",
        sim.model().alpha,
        sim.model().beta,
        sim.model().latency
    );

    println!(
        "\n{:<22} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "algorithm", "imbalance", "halo cells", "neighbors", "speedup", "effic."
    );
    for algo in standard_heuristics() {
        let part = algo.partition(&pfx, m);
        let report: ExecutionReport = sim.evaluate(&pfx, &part);
        println!(
            "{:<22} {:>9.2}% {:>12} {:>10} {:>9.1} {:>8.1}%",
            algo.name(),
            100.0 * part.load_imbalance(&pfx),
            report.comm_volume_total,
            report.max_neighbors,
            report.speedup,
            100.0 * report.efficiency
        );
    }
    println!(
        "\nNote how the imbalance ranking carries over to speedup, while the\n\
         halo volumes of all rectangle classes stay within a small factor —\n\
         the \"implicit communication minimization\" the paper credits\n\
         rectangles with (§1)."
    );
}
