//! Small import/export helpers for load matrices (PGM images for the
//! instance gallery, CSV for external analysis).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use rectpart_core::LoadMatrix;

/// Writes the matrix as a binary PGM (P5) image, darkest = zero load,
/// brightest = maximum load (the paper's figure 2 rendering convention:
/// "the whiter the more computation").
pub fn write_pgm(matrix: &LoadMatrix, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "P5\n{} {}\n255", matrix.cols(), matrix.rows())?;
    let max = matrix.max_cell().max(1) as f64;
    for r in 0..matrix.rows() {
        let row: Vec<u8> = matrix
            .row(r)
            .iter()
            .map(|&v| ((v as f64 / max).sqrt() * 255.0).round() as u8)
            .collect();
        out.write_all(&row)?;
    }
    out.flush()
}

/// Writes the matrix as headerless CSV (one row per line).
pub fn write_csv(matrix: &LoadMatrix, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut line = String::new();
    for r in 0..matrix.rows() {
        line.clear();
        for (c, v) in matrix.row(r).iter().enumerate() {
            if c > 0 {
                line.push(',');
            }
            line.push_str(&v.to_string());
        }
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Reads a matrix from headerless CSV as written by [`write_csv`].
pub fn read_csv(path: &Path) -> io::Result<LoadMatrix> {
    let reader = BufReader::new(File::open(path)?);
    let mut data: Vec<u32> = Vec::new();
    let mut cols = None;
    let mut rows = 0;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let before = data.len();
        for tok in line.split(',') {
            let v = tok.trim().parse::<u32>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad cell {tok:?}: {e}"))
            })?;
            data.push(v);
        }
        let width = data.len() - before;
        match cols {
            None => cols = Some(width),
            Some(c) if c != width => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ragged CSV: row {rows} has {width} cells, expected {c}"),
                ));
            }
            _ => {}
        }
        rows += 1;
    }
    let cols = cols.unwrap_or(0);
    Ok(LoadMatrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rectpart-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip() {
        let m = LoadMatrix::from_fn(5, 7, |r, c| (r * 7 + c) as u32);
        let path = tmp("roundtrip.csv");
        write_csv(&m, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1,x,3\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_header_and_size() {
        let m = LoadMatrix::from_fn(3, 4, |r, c| (r + c) as u32);
        let path = tmp("img.pgm");
        write_pgm(&m, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 3\n255\n".len() + 12);
        std::fs::remove_file(&path).ok();
    }
}
