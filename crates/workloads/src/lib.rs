#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Load-matrix generators for the `rectpart` evaluation (paper §4.1).
//!
//! * [`synthetic`] — the four synthetic classes (uniform, diagonal, peak,
//!   multi-peak) with the paper's exact recipes;
//! * [`pic`] — a particle-in-cell magnetosphere simulator standing in for
//!   the proprietary PIC-MAG traces (see DESIGN.md §8);
//! * [`mesh`] — parametric 3D surface meshes projected to a 2D grid,
//!   standing in for the SLAC cavity mesh;
//! * [`amr`] — adaptive-mesh-refinement-style nested cost plateaus;
//! * [`render`] — escape-time render-cost fields (the image-rendering
//!   application class);
//! * [`io`] — PGM/CSV import & export.
//!
//! All generators are deterministic in their seeds.

pub mod amr;
pub mod io;
pub mod mesh;
pub mod pic;
pub mod pic3d;
pub mod render;
pub mod synthetic;

pub use amr::AmrConfig;
pub use mesh::{slac_like, MeshConfig, MeshKind};
pub use pic::{pic_trace, PicConfig, PicSimulation, PicSnapshot};
pub use pic3d::{pic3_trace, Pic3Config, Pic3Simulation, Pic3Snapshot};
pub use render::RenderConfig;
pub use synthetic::{diagonal, multi_peak, peak, uniform, Synthetic};
