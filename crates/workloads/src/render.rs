//! Image-rendering workload — the paper's third motivating application
//! class ("image rendering algorithms", §1, citing sort-first parallel
//! volume rendering).
//!
//! In sort-first rendering the screen is partitioned among processors and
//! each pays for the primitives behind its pixels. A faithful stand-in
//! with the same load anatomy is an escape-time fractal render: per-pixel
//! cost = iteration count, producing large cheap plateaus (the set's
//! interior and the far exterior) against expensive filament bands — the
//! classic hard case for static screen partitioning.

use rectpart_core::LoadMatrix;

/// Escape-time render-cost field over a rectangular window of the
/// complex plane.
#[derive(Clone, Debug)]
pub struct RenderConfig {
    /// Output rows (pixels).
    pub rows: usize,
    /// Output columns (pixels).
    pub cols: usize,
    /// Window center (real, imaginary).
    pub center: (f64, f64),
    /// Window width in the complex plane (height follows the aspect).
    pub width: f64,
    /// Iteration cap = maximum per-pixel cost.
    pub max_iter: u32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        // The seahorse-valley window: rich filament structure, strong
        // load contrast.
        Self {
            rows: 512,
            cols: 512,
            center: (-0.75, 0.1),
            width: 0.6,
            max_iter: 256,
        }
    }
}

impl RenderConfig {
    /// Computes the per-pixel cost matrix (deterministic; no RNG).
    pub fn generate(&self) -> LoadMatrix {
        assert!(self.rows > 0 && self.cols > 0 && self.max_iter > 0);
        let height = self.width * self.rows as f64 / self.cols as f64;
        let (cx, cy) = self.center;
        let x0 = cx - self.width / 2.0;
        let y0 = cy - height / 2.0;
        LoadMatrix::from_fn(self.rows, self.cols, |r, c| {
            let re = x0 + self.width * (c as f64 + 0.5) / self.cols as f64;
            let im = y0 + height * (r as f64 + 0.5) / self.rows as f64;
            // Cost 1 + iterations: every pixel costs at least the
            // rasterization itself (keeps the matrix strictly positive,
            // like the paper's model).
            1 + escape_iterations(re, im, self.max_iter)
        })
    }
}

/// Mandelbrot escape iterations for `c = re + im·i`, capped.
fn escape_iterations(re: f64, im: f64, cap: u32) -> u32 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut iter = 0;
    while x * x + y * y <= 4.0 && iter < cap {
        let xt = x * x - y * y + re;
        y = 2.0 * x * y + im;
        x = xt;
        iter += 1;
    }
    iter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RenderConfig {
        RenderConfig {
            rows: 64,
            cols: 64,
            ..RenderConfig::default()
        }
    }

    #[test]
    fn deterministic_and_positive() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
        assert!(a.min_cell() >= 1);
        assert!(a.delta().is_some());
    }

    #[test]
    fn has_strong_load_contrast() {
        let m = small().generate();
        // Interior pixels hit the cap, exterior escapes quickly.
        assert!(m.max_cell() >= 256);
        let delta = m.delta().unwrap();
        assert!(
            delta > 20.0,
            "render cost must be highly heterogeneous, got {delta}"
        );
    }

    #[test]
    fn interior_is_expensive() {
        // A window fully inside the set: every pixel at the cap.
        let cfg = RenderConfig {
            rows: 8,
            cols: 8,
            center: (-0.1, 0.0),
            width: 0.05,
            max_iter: 100,
        };
        let m = cfg.generate();
        assert_eq!(m.min_cell(), 101);
        assert_eq!(m.max_cell(), 101);
    }

    #[test]
    fn aspect_follows_dimensions() {
        let cfg = RenderConfig {
            rows: 32,
            cols: 64,
            ..RenderConfig::default()
        };
        let m = cfg.generate();
        assert_eq!((m.rows(), m.cols()), (32, 64));
    }
}
