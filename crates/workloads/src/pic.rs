//! A 2D particle-in-cell magnetosphere simulator — the PIC-MAG substrate.
//!
//! The paper's PIC-MAG instances are particle-count histograms extracted
//! every 500 iterations from a proprietary global hybrid simulation of
//! the solar wind hitting the Earth's magnetosphere (Karimabadi et al.).
//! Those traces are not available, so this module *simulates the
//! substrate*: charged particles stream in from the left against a
//! magnetic dipole; a Boris-style rotation deflects them around the
//! strong-field region, producing the same qualitative load fields the
//! partitioning figures consume — dense, smooth, slowly drifting
//! matrices with a bow-shock-like pile-up and a low-density cavity, with
//! Δ in the paper's reported 1.2–1.5 band under the default weights.
//!
//! The partitioning experiments only read the per-snapshot
//! [`LoadMatrix`]; any plasma-physics fidelity beyond that shape is
//! intentionally out of scope (see DESIGN.md §8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::LoadMatrix;

/// Configuration of a PIC-MAG run.
#[derive(Clone, Debug)]
pub struct PicConfig {
    /// Grid rows (the paper accumulates its 3D data to 2D; we simulate
    /// 2D directly).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Number of simulated particles (kept constant by re-injection).
    pub particles: usize,
    /// Number of load snapshots to extract (the paper takes 68: every
    /// 500 iterations of the first 33 500).
    pub snapshots: usize,
    /// Physics steps integrated between two snapshots.
    pub substeps_per_snapshot: usize,
    /// Nominal solver iterations between snapshots — only used to label
    /// snapshots like the paper ("iter=20,000").
    pub iterations_per_snapshot: u32,
    /// Time step of one physics step (domain is the unit square, solar
    /// wind speed 1).
    pub dt: f64,
    /// Per-cell background load (field solve); keeps every cell > 0.
    pub base_load: u32,
    /// Load contributed by each particle in a cell.
    pub particle_weight: u32,
    /// RNG seed; runs are bit-for-bit reproducible.
    pub seed: u64,
}

impl Default for PicConfig {
    fn default() -> Self {
        Self {
            rows: 512,
            cols: 512,
            particles: 1_000_000,
            snapshots: 68,
            substeps_per_snapshot: 10,
            iterations_per_snapshot: 500,
            dt: 0.002,
            base_load: 2000,
            particle_weight: 25,
            seed: 42,
        }
    }
}

impl PicConfig {
    /// A laptop-scale configuration (128² grid, 65 536 particles) used by
    /// tests and the default experiment scale.
    pub fn small(seed: u64) -> Self {
        Self {
            rows: 128,
            cols: 128,
            particles: 1 << 16,
            snapshots: 16,
            ..Self {
                seed,
                ..Self::default()
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Particle {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    /// Times this slot was re-injected; part of its private RNG stream so
    /// the simulation is deterministic under any thread schedule.
    reinjections: u32,
}

/// One extracted load matrix with its nominal iteration label.
#[derive(Clone, Debug)]
pub struct PicSnapshot {
    /// Nominal solver iteration (multiples of
    /// [`PicConfig::iterations_per_snapshot`], starting at 0).
    pub iteration: u32,
    /// The spatial load at that time.
    pub matrix: LoadMatrix,
}

/// The running simulation.
pub struct PicSimulation {
    cfg: PicConfig,
    particles: Vec<Particle>,
    snapshots_taken: u32,
    /// Dipole position in the unit square.
    dipole: (f64, f64),
}

/// Magnetic-field strength scale of the dipole.
const B_SCALE: f64 = 0.2;
/// Softening added to d³ so the field stays finite at the dipole.
const B_SOFTEN: f64 = 1e-4;
/// Mean inflow (solar wind) speed, in domain units per time unit.
const V_WIND: f64 = 1.0;
/// Thermal velocity spread relative to the wind speed.
const V_THERMAL: f64 = 0.2;

impl PicSimulation {
    /// Initializes the particle population (uniform over the domain,
    /// streaming in the +x direction with thermal spread).
    pub fn new(cfg: PicConfig) -> Self {
        assert!(cfg.rows > 0 && cfg.cols > 0 && cfg.particles > 0);
        let seed = cfg.seed;
        let particles = rectpart_parallel::map_range(cfg.particles, |i| {
            let mut rng = particle_rng(seed, i as u64, 0);
            Particle {
                x: rng.gen::<f64>(),
                y: rng.gen::<f64>(),
                vx: V_WIND + V_THERMAL * (rng.gen::<f64>() - 0.5),
                vy: V_THERMAL * (rng.gen::<f64>() - 0.5),
                reinjections: 0,
            }
        });
        Self {
            cfg,
            particles,
            snapshots_taken: 0,
            dipole: (0.45, 0.5),
        }
    }

    /// The configuration this run was started with.
    pub fn config(&self) -> &PicConfig {
        &self.cfg
    }

    /// Advances one physics step: Boris-style rotation in the dipole
    /// field, drift, and re-injection of escaped particles at the inflow
    /// boundary.
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let (dx, dy) = self.dipole;
        let seed = self.cfg.seed;
        rectpart_parallel::for_each_indexed_mut(&mut self.particles, |i, p| {
            // Out-of-plane dipole field: |B| ~ 1/d³, softened.
            let rx = p.x - dx;
            let ry = p.y - dy;
            let d3 = (rx * rx + ry * ry).powf(1.5);
            let b = B_SCALE / (d3 + B_SOFTEN);
            // Exact rotation by θ = B·dt (Boris push for pure Bz).
            let theta = b * dt;
            let (sin, cos) = theta.sin_cos();
            let (vx, vy) = (p.vx, p.vy);
            p.vx = cos * vx - sin * vy;
            p.vy = sin * vx + cos * vy;
            p.x += p.vx * dt;
            p.y += p.vy * dt;
            if p.x < 0.0 || p.x >= 1.0 || p.y < 0.0 || p.y >= 1.0 {
                p.reinjections += 1;
                let mut rng = particle_rng(seed, i as u64, p.reinjections);
                p.x = 0.0;
                p.y = rng.gen::<f64>();
                p.vx = V_WIND + V_THERMAL * (rng.gen::<f64>() - 0.5);
                p.vy = V_THERMAL * (rng.gen::<f64>() - 0.5);
            }
        });
    }

    /// Deposits the particles onto the grid and returns the load matrix
    /// `base_load + particle_weight · count` (deterministic reduction).
    pub fn deposit(&self) -> LoadMatrix {
        let rows = self.cfg.rows;
        let cols = self.cfg.cols;
        let counts = rectpart_parallel::chunked_reduce(
            &self.particles,
            8192,
            |_, chunk| {
                let mut local = vec![0u32; rows * cols];
                for p in chunk {
                    let r = ((p.y * rows as f64) as usize).min(rows - 1);
                    let c = ((p.x * cols as f64) as usize).min(cols - 1);
                    local[r * cols + c] += 1;
                }
                local
            },
            vec![0u32; rows * cols],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        let base = self.cfg.base_load;
        let w = self.cfg.particle_weight;
        LoadMatrix::from_fn(rows, cols, |r, c| base + w * counts[r * cols + c])
    }

    /// Current particle positions `(x, y)` in the unit square; consumed
    /// by the 3D deposition of [`crate::pic3d`].
    pub fn positions(&self) -> Vec<(f64, f64)> {
        self.particles.iter().map(|p| (p.x, p.y)).collect()
    }

    /// Advances to the next snapshot boundary and extracts it.
    pub fn next_snapshot(&mut self) -> PicSnapshot {
        if self.snapshots_taken > 0 {
            for _ in 0..self.cfg.substeps_per_snapshot {
                self.step();
            }
        }
        let snap = PicSnapshot {
            iteration: self.snapshots_taken * self.cfg.iterations_per_snapshot,
            matrix: self.deposit(),
        };
        self.snapshots_taken += 1;
        snap
    }
}

/// Runs the full simulation and returns all snapshots (the paper's
/// 68-matrix PIC-MAG trace under the default configuration).
pub fn pic_trace(cfg: &PicConfig) -> Vec<PicSnapshot> {
    let mut sim = PicSimulation::new(cfg.clone());
    (0..cfg.snapshots).map(|_| sim.next_snapshot()).collect()
}

/// Private, schedule-independent RNG stream per (particle, lifetime).
fn particle_rng(seed: u64, index: u64, generation: u32) -> StdRng {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15u64;
    for v in [index, generation as u64] {
        h ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h = h.rotate_left(31).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rectpart_core::PrefixSum2D;

    fn tiny() -> PicConfig {
        PicConfig {
            rows: 32,
            cols: 32,
            particles: 4096,
            snapshots: 4,
            substeps_per_snapshot: 5,
            ..PicConfig::default()
        }
    }

    #[test]
    fn deterministic_trace() {
        let a = pic_trace(&tiny());
        let b = pic_trace(&tiny());
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.iteration, y.iteration);
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn particle_count_is_conserved() {
        let cfg = tiny();
        let trace = pic_trace(&cfg);
        for snap in &trace {
            let extra: u64 =
                snap.matrix.total() - (cfg.base_load as u64) * (cfg.rows * cfg.cols) as u64;
            assert_eq!(
                extra,
                cfg.particle_weight as u64 * cfg.particles as u64,
                "iter={}",
                snap.iteration
            );
        }
    }

    #[test]
    fn snapshots_are_labeled_like_the_paper() {
        let trace = pic_trace(&tiny());
        let iters: Vec<u32> = trace.iter().map(|s| s.iteration).collect();
        assert_eq!(iters, vec![0, 500, 1000, 1500]);
    }

    #[test]
    fn field_evolves_over_time() {
        let trace = pic_trace(&tiny());
        assert_ne!(trace[0].matrix, trace[3].matrix);
    }

    #[test]
    fn all_cells_strictly_positive_and_delta_moderate() {
        let cfg = PicConfig::small(7);
        let mut sim = PicSimulation::new(cfg);
        let mut last = None;
        for _ in 0..6 {
            last = Some(sim.next_snapshot());
        }
        let m = last.unwrap().matrix;
        assert!(m.min_cell() > 0);
        let delta = m.delta().unwrap();
        assert!(
            (1.05..4.0).contains(&delta),
            "delta {delta} out of the plausible PIC-MAG band"
        );
        let pfx = PrefixSum2D::new(&m);
        assert_eq!(pfx.total(), m.total());
    }

    #[test]
    fn deposit_respects_grid_bounds() {
        let cfg = PicConfig {
            rows: 8,
            cols: 16,
            particles: 1000,
            ..PicConfig::default()
        };
        let sim = PicSimulation::new(cfg);
        let m = sim.deposit();
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 16);
    }
}
