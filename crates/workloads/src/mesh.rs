//! Projected 3D surface meshes — the SLAC substrate.
//!
//! The paper's SLAC instances put one unit of computation on every vertex
//! of a 3D accelerator-cavity mesh and project it onto a 2D plane at a
//! chosen discretization (512² in §4.1). The original mesh is not
//! available, so this module generates parametric surface meshes with the
//! same decisive property for the partitioning figures: after projection
//! the matrix is *sparse* — large zero regions outside the silhouette,
//! dense curved bands along it — which is what makes every non-jagged,
//! non-hierarchical method struggle in figure 14.
//!
//! Three surface families are provided; [`MeshKind::Cavity`] (a corrugated
//! body of revolution, like the superconducting accelerator cavities the
//! SLAC data came from) is the default.

use rectpart_core::LoadMatrix;

/// Parametric surface family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeshKind {
    /// Accelerator-cavity-like corrugated body of revolution with the
    /// given number of cavity cells along its axis.
    Cavity {
        /// Number of corrugation bumps.
        cells: usize,
    },
    /// Unit sphere.
    Sphere,
    /// Torus with the given tube-to-ring radius ratio.
    Torus {
        /// Tube radius as a fraction of the ring radius (0 < tube < 1).
        tube: f64,
    },
}

/// Mesh generation + projection configuration.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Output grid rows.
    pub grid_rows: usize,
    /// Output grid columns.
    pub grid_cols: usize,
    /// Samples along the first surface parameter (axis / longitude).
    pub u_samples: usize,
    /// Samples along the second surface parameter (angle / latitude).
    pub v_samples: usize,
    /// Which surface to mesh.
    pub kind: MeshKind,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            grid_rows: 512,
            grid_cols: 512,
            u_samples: 2048,
            v_samples: 1024,
            kind: MeshKind::Cavity { cells: 9 },
        }
    }
}

impl MeshConfig {
    /// Generates the mesh vertices (one unit of load each), projects them
    /// orthographically onto the x–y plane, and bins them onto the grid.
    pub fn generate(&self) -> LoadMatrix {
        assert!(self.grid_rows > 0 && self.grid_cols > 0);
        assert!(self.u_samples >= 2 && self.v_samples >= 2);
        let mut counts = vec![0u32; self.grid_rows * self.grid_cols];
        let mut bounds = Bounds::new();
        let mut vertices = Vec::with_capacity(self.u_samples * self.v_samples);
        for iu in 0..self.u_samples {
            let u = iu as f64 / (self.u_samples - 1) as f64;
            for iv in 0..self.v_samples {
                let v = iv as f64 / self.v_samples as f64; // periodic
                let (x, y) = self.project(u, v);
                bounds.include(x, y);
                vertices.push((x, y));
            }
        }
        for (x, y) in vertices {
            let r = bounds.bin_y(y, self.grid_rows);
            let c = bounds.bin_x(x, self.grid_cols);
            counts[r * self.grid_cols + c] += 1;
        }
        LoadMatrix::from_vec(self.grid_rows, self.grid_cols, counts)
    }

    /// Surface point for parameters `(u, v) ∈ [0,1]²`, already projected
    /// (the z coordinate is dropped — orthographic projection).
    fn project(&self, u: f64, v: f64) -> (f64, f64) {
        use std::f64::consts::PI;
        match self.kind {
            MeshKind::Cavity { cells } => {
                // Axis along x; corrugated radius: r(u) = r0 + a·sin²(πku)
                // with rounded iris between cells.
                let r0 = 0.25;
                let a = 0.75;
                let r = r0 + a * (PI * cells as f64 * u).sin().powi(2);
                let theta = 2.0 * PI * v;
                (u * 4.0, r * theta.cos()) // drop z = r·sinθ
            }
            MeshKind::Sphere => {
                let phi = PI * u; // latitude
                let theta = 2.0 * PI * v;
                (phi.sin() * theta.cos(), phi.sin() * theta.sin()) // drop cosφ
            }
            MeshKind::Torus { tube } => {
                assert!(tube > 0.0 && tube < 1.0);
                let big = 2.0 * PI * u;
                let small = 2.0 * PI * v;
                let ring = 1.0 + tube * small.cos();
                (ring * big.cos(), ring * big.sin()) // drop tube·sin
            }
        }
    }
}

/// The paper's experimental setting: a 512² projected cavity mesh.
pub fn slac_like() -> LoadMatrix {
    MeshConfig::default().generate()
}

struct Bounds {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

impl Bounds {
    fn new() -> Self {
        Self {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    fn include(&mut self, x: f64, y: f64) {
        self.min_x = self.min_x.min(x);
        self.max_x = self.max_x.max(x);
        self.min_y = self.min_y.min(y);
        self.max_y = self.max_y.max(y);
    }

    fn bin_x(&self, x: f64, bins: usize) -> usize {
        bin(x, self.min_x, self.max_x, bins)
    }

    fn bin_y(&self, y: f64, bins: usize) -> usize {
        bin(y, self.min_y, self.max_y, bins)
    }
}

fn bin(v: f64, lo: f64, hi: f64, bins: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    (((v - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(kind: MeshKind) -> MeshConfig {
        MeshConfig {
            grid_rows: 64,
            grid_cols: 64,
            u_samples: 256,
            v_samples: 128,
            kind,
        }
    }

    #[test]
    fn vertex_count_is_conserved() {
        let cfg = small(MeshKind::Sphere);
        let m = cfg.generate();
        assert_eq!(m.total(), (cfg.u_samples * cfg.v_samples) as u64);
    }

    #[test]
    fn projection_is_sparse_like_slac() {
        for kind in [
            MeshKind::Cavity { cells: 5 },
            MeshKind::Sphere,
            MeshKind::Torus { tube: 0.35 },
        ] {
            let m = small(kind).generate();
            let zeros = m.data().iter().filter(|&&v| v == 0).count();
            let frac = zeros as f64 / (64.0 * 64.0);
            assert!(
                frac > 0.15,
                "{kind:?}: zero fraction {frac} — not sparse enough to exercise the SLAC regime"
            );
            assert_eq!(m.delta(), None, "{kind:?} must contain zeros");
        }
    }

    #[test]
    fn cavity_spans_the_grid() {
        let m = small(MeshKind::Cavity { cells: 7 }).generate();
        // Something lands in the first and last columns (bounds are tight).
        let first_col: u64 = (0..64).map(|r| m.get(r, 0) as u64).sum();
        let last_col: u64 = (0..64).map(|r| m.get(r, 63) as u64).sum();
        assert!(first_col > 0 && last_col > 0);
    }

    #[test]
    fn deterministic() {
        let a = small(MeshKind::Torus { tube: 0.25 }).generate();
        let b = small(MeshKind::Torus { tube: 0.25 }).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_paper_scale() {
        let cfg = MeshConfig::default();
        assert_eq!((cfg.grid_rows, cfg.grid_cols), (512, 512));
        assert!(matches!(cfg.kind, MeshKind::Cavity { .. }));
    }
}
