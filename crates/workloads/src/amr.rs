//! Adaptive-mesh-refinement-style workload.
//!
//! The paper's first application class — fluid dynamics / PIC codes — is
//! in practice often run on adaptively refined meshes (the original
//! recursive-bisection paper, Berger & Bokhari 1987, was written exactly
//! for this setting). The resulting load field differs from the smooth
//! synthetic classes: *discrete plateaus* — each refinement level
//! multiplies the per-cell cost — with sharp nested boundaries. Those
//! steps are what make cut placement hard for grid-like methods, so this
//! class complements the §4.1 generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::LoadMatrix;

/// Nested-refinement workload configuration.
#[derive(Clone, Debug)]
pub struct AmrConfig {
    /// Output rows.
    pub rows: usize,
    /// Output columns.
    pub cols: usize,
    /// Refinement levels (0 = uniform base grid).
    pub levels: usize,
    /// Independently placed refinement sites.
    pub sites: usize,
    /// Cost of an unrefined cell.
    pub base_cost: u32,
    /// Cost multiplier per refinement level (4 models one 2×2 split per
    /// level, the standard AMR ratio).
    pub refine_factor: u32,
    /// RNG seed for site placement.
    pub seed: u64,
}

impl Default for AmrConfig {
    fn default() -> Self {
        Self {
            rows: 256,
            cols: 256,
            levels: 3,
            sites: 4,
            base_cost: 10,
            refine_factor: 4,
            seed: 0,
        }
    }
}

impl AmrConfig {
    /// Generates the load matrix: every cell costs
    /// `base · factor^(deepest covering level)`, where level `l + 1`'s
    /// region around each site is half the radius of level `l`'s.
    pub fn generate(&self) -> LoadMatrix {
        assert!(self.rows > 0 && self.cols > 0 && self.base_cost > 0);
        assert!(self.refine_factor >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sites: Vec<(f64, f64)> = (0..self.sites)
            .map(|_| {
                (
                    rng.gen_range(0..self.rows) as f64,
                    rng.gen_range(0..self.cols) as f64,
                )
            })
            .collect();
        let base_radius = (self.rows.min(self.cols)) as f64 / 3.0;
        LoadMatrix::from_fn(self.rows, self.cols, |r, c| {
            let mut depth = 0usize;
            for &(sr, sc) in &sites {
                let d = ((r as f64 - sr).powi(2) + (c as f64 - sc).powi(2)).sqrt();
                // Deepest level whose shrinking radius still covers (r, c).
                let mut radius = base_radius;
                let mut level = 0usize;
                while level < self.levels && d <= radius {
                    level += 1;
                    radius /= 2.0;
                }
                depth = depth.max(level);
            }
            self.base_cost
                .checked_mul(self.refine_factor.pow(depth as u32))
                .expect("refined cell cost exceeds u32")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn costs_form_discrete_levels() {
        let cfg = AmrConfig {
            rows: 96,
            cols: 96,
            ..AmrConfig::default()
        };
        let m = cfg.generate();
        let values: BTreeSet<u32> = m.data().iter().copied().collect();
        // Only base * 4^l values may appear.
        for v in &values {
            let mut x = *v / cfg.base_cost;
            assert_eq!(v % cfg.base_cost, 0);
            while x > 1 {
                assert_eq!(x % cfg.refine_factor, 0, "value {v} is not a level cost");
                x /= cfg.refine_factor;
            }
        }
        // The base level and at least one refined level are present.
        assert!(values.contains(&cfg.base_cost));
        assert!(values.len() >= 2, "refinement must actually trigger");
    }

    #[test]
    fn deterministic_and_positive() {
        let a = AmrConfig::default().generate();
        let b = AmrConfig::default().generate();
        assert_eq!(a, b);
        assert!(a.min_cell() >= 1);
        let c = AmrConfig {
            seed: 1,
            ..AmrConfig::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_levels_is_uniform() {
        let m = AmrConfig {
            rows: 16,
            cols: 16,
            levels: 0,
            ..AmrConfig::default()
        }
        .generate();
        assert_eq!(m.min_cell(), m.max_cell());
    }

    #[test]
    fn refined_regions_are_nested() {
        // A single central site: deeper levels must sit inside shallower
        // ones (cost is monotone non-increasing with distance from site).
        let cfg = AmrConfig {
            rows: 64,
            cols: 64,
            sites: 1,
            seed: 9,
            ..AmrConfig::default()
        };
        let m = cfg.generate();
        // Find the site as the argmax cell.
        let (mut sr, mut sc, mut best) = (0, 0, 0);
        for r in 0..64 {
            for c in 0..64 {
                if m.get(r, c) > best {
                    best = m.get(r, c);
                    sr = r;
                    sc = c;
                }
            }
        }
        // Walk away from the site along a row: costs never increase.
        let mut prev = m.get(sr, sc);
        for c in sc..64 {
            let v = m.get(sr, c);
            assert!(v <= prev, "cost increased away from the site");
            prev = v;
        }
    }
}
