//! Synthetic load-matrix classes of the paper's evaluation (§4.1):
//! *uniform*, *diagonal*, *peak* and *multi-peak*.
//!
//! Recipes, verbatim from the paper:
//!
//! * **uniform(Δ)** — every cell is drawn uniformly from
//!   `[1000, 1000·Δ]`, so the matrix heterogeneity is exactly the target
//!   Δ (up to sampling).
//! * **diagonal / peak / multi-peak** — every cell draws a number
//!   uniformly in `[0, #cells)` and divides it by the Euclidean distance
//!   to a *reference point* (plus 0.1 to avoid dividing by zero). The
//!   reference point is the closest point on the matrix diagonal
//!   (diagonal), one random point (peak), or the closest of several
//!   random points (multi-peak, 3 in the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::LoadMatrix;

/// Which §4.1 synthetic class a [`Synthetic`] builder generates.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Kind {
    Uniform,
    Diagonal,
    Peak,
    MultiPeak,
}

/// Configurable generator for the synthetic instance classes. Obtain one
/// through [`uniform`], [`diagonal`], [`peak`] or [`multi_peak`]; tune it
/// with the chained setters; call [`Synthetic::build`].
#[derive(Clone, Debug)]
pub struct Synthetic {
    kind: Kind,
    rows: usize,
    cols: usize,
    seed: u64,
    delta: f64,
    peaks: usize,
}

/// Uniform matrix with target heterogeneity Δ (default 1.2, a common
/// setting in the paper's figures 6 and 9).
pub fn uniform(rows: usize, cols: usize, seed: u64) -> Synthetic {
    Synthetic {
        kind: Kind::Uniform,
        rows,
        cols,
        seed,
        delta: 1.2,
        peaks: 0,
    }
}

/// Diagonal-concentrated matrix (reference point = closest point on the
/// main diagonal).
pub fn diagonal(rows: usize, cols: usize, seed: u64) -> Synthetic {
    Synthetic {
        kind: Kind::Diagonal,
        rows,
        cols,
        seed,
        delta: 1.0,
        peaks: 0,
    }
}

/// Single random load peak.
pub fn peak(rows: usize, cols: usize, seed: u64) -> Synthetic {
    Synthetic {
        kind: Kind::Peak,
        rows,
        cols,
        seed,
        delta: 1.0,
        peaks: 1,
    }
}

/// Several random load peaks; each cell is attracted to the closest
/// (3 peaks in the paper).
pub fn multi_peak(rows: usize, cols: usize, seed: u64) -> Synthetic {
    Synthetic {
        kind: Kind::MultiPeak,
        rows,
        cols,
        seed,
        delta: 1.0,
        peaks: 3,
    }
}

impl Synthetic {
    /// Sets the target Δ of a [`uniform`] instance.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 1`.
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta >= 1.0, "delta must be >= 1");
        self.delta = delta;
        self
    }

    /// Sets the number of peaks of a [`multi_peak`] instance.
    pub fn peaks(mut self, peaks: usize) -> Self {
        assert!(peaks >= 1);
        self.peaks = peaks;
        self
    }

    /// Generates the matrix (deterministic in the seed).
    pub fn build(&self) -> LoadMatrix {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (rows, cols) = (self.rows, self.cols);
        if self.kind == Kind::Uniform {
            let hi = (1000.0 * self.delta).round() as u32;
            return LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(1000..=hi.max(1000)));
        }
        // Distance-divided classes: reference points first (so the draws
        // below do not shift with the peak count), then one uniform draw
        // per cell divided by the distance to the closest reference.
        let refs: Vec<(f64, f64)> = match self.kind {
            Kind::Diagonal => Vec::new(),
            _ => (0..self.peaks)
                .map(|_| (rng.gen_range(0..rows) as f64, rng.gen_range(0..cols) as f64))
                .collect(),
        };
        let ncells = (rows * cols) as u64;
        let kind = self.kind;
        LoadMatrix::from_fn(rows, cols, |r, c| {
            let d = match kind {
                Kind::Diagonal => diagonal_distance(r, c, rows, cols),
                _ => refs
                    .iter()
                    .map(|&(pr, pc)| ((r as f64 - pr).powi(2) + (c as f64 - pc).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min),
            };
            (rng.gen_range(0..ncells) as f64 / (d + 0.1)) as u32
        })
    }
}

/// Euclidean distance from `(r, c)` to the closest point of the segment
/// from `(0,0)` to `(rows-1, cols-1)` — the matrix's main diagonal.
fn diagonal_distance(r: usize, c: usize, rows: usize, cols: usize) -> f64 {
    let (px, py) = (r as f64, c as f64);
    let (dx, dy) = ((rows.max(2) - 1) as f64, (cols.max(2) - 1) as f64);
    let t = ((px * dx + py * dy) / (dx * dx + dy * dy)).clamp(0.0, 1.0);
    let (qx, qy) = (t * dx, t * dy);
    ((px - qx).powi(2) + (py - qy).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_delta_range() {
        let m = uniform(64, 64, 1).delta(1.5).build();
        assert!(m.min_cell() >= 1000);
        assert!(m.max_cell() <= 1500);
        let d = m.delta().unwrap();
        assert!(d > 1.3 && d <= 1.5, "observed delta {d}");
    }

    #[test]
    fn uniform_delta_one_is_flat() {
        let m = uniform(16, 16, 2).delta(1.0).build();
        assert_eq!(m.min_cell(), 1000);
        assert_eq!(m.max_cell(), 1000);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(peak(32, 32, 7).build(), peak(32, 32, 7).build());
        assert_ne!(peak(32, 32, 7).build(), peak(32, 32, 8).build());
    }

    #[test]
    fn diagonal_concentrates_on_diagonal() {
        let m = diagonal(64, 64, 3).build();
        let diag_avg: f64 = (0..64).map(|i| m.get(i, i) as f64).sum::<f64>() / 64.0;
        let corner_avg: f64 = (0..64).map(|i| m.get(i, 63 - i) as f64).sum::<f64>() / 64.0;
        assert!(
            diag_avg > 5.0 * corner_avg,
            "diag {diag_avg} vs anti-diag {corner_avg}"
        );
    }

    #[test]
    fn peak_concentrates_somewhere() {
        let m = peak(64, 64, 5).build();
        let (mut best, mut pos) = (0u32, (0, 0));
        for r in 0..64 {
            for c in 0..64 {
                if m.get(r, c) > best {
                    best = m.get(r, c);
                    pos = (r, c);
                }
            }
        }
        // Neighbourhood of the max should carry much more load than the
        // global average.
        let total = m.total() as f64 / (64.0 * 64.0);
        let near = m.get(pos.0.min(62), pos.1.min(62)) as f64;
        assert!(near > total);
    }

    #[test]
    fn multi_peak_has_requested_peak_count_influence() {
        // Just shape sanity: generation succeeds, nonzero, differs from
        // single peak with the same seed.
        let a = peak(48, 48, 11).build();
        let b = multi_peak(48, 48, 11).build();
        assert_ne!(a, b);
        assert!(b.total() > 0);
        let c = multi_peak(48, 48, 11).peaks(5).build();
        assert_ne!(b, c);
    }

    #[test]
    fn rectangular_shapes_supported() {
        let m = diagonal(20, 50, 4).build();
        assert_eq!(m.rows(), 20);
        assert_eq!(m.cols(), 50);
        let m = uniform(5, 3, 4).build();
        assert_eq!((m.rows(), m.cols()), (5, 3));
    }

    #[test]
    fn diagonal_distance_geometry() {
        assert!(diagonal_distance(0, 0, 10, 10) < 1e-9);
        assert!(diagonal_distance(9, 9, 10, 10) < 1e-9);
        let d = diagonal_distance(0, 9, 10, 10);
        assert!((d - 9.0 / 2f64.sqrt()).abs() < 1e-9);
    }
}
