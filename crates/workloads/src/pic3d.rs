//! 3D particle deposition — the faithful PIC-MAG pipeline.
//!
//! The paper's PIC-MAG matrices are *3D* simulation data whose particle
//! counts "are accumulated among one dimension to get a 2D instance"
//! (§4.1). This module closes that loop: it runs the same magnetosphere
//! dynamics as [`crate::pic`] in the (x, y) plane, tracks a third
//! coordinate with thermal motion between reflecting walls, deposits
//! into a [`LoadVolume`], and lets callers accumulate along any axis via
//! [`LoadVolume::flatten`] — or partition the volume directly with the
//! `rectpart-volume` algorithms and compare.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_volume::LoadVolume;

use crate::pic::PicConfig;

/// Configuration of a 3D PIC-MAG run: the planar dynamics of
/// [`PicConfig`] plus a depth dimension.
#[derive(Clone, Debug)]
pub struct Pic3Config {
    /// Planar configuration (grid, particles, physics, seed).
    pub planar: PicConfig,
    /// Grid depth along the third (accumulated) dimension.
    pub depth: usize,
    /// Thermal speed along the third dimension, relative to the wind.
    pub vz_thermal: f64,
}

impl Default for Pic3Config {
    fn default() -> Self {
        Self {
            planar: PicConfig::default(),
            depth: 32,
            vz_thermal: 0.3,
        }
    }
}

/// One 3D snapshot.
#[derive(Clone, Debug)]
pub struct Pic3Snapshot {
    /// Nominal solver iteration.
    pub iteration: u32,
    /// Particle-count volume (`rows × cols × depth`), including the
    /// planar `base_load` spread uniformly across the depth cells it
    /// divides into.
    pub volume: LoadVolume,
}

/// The running 3D simulation: planar magnetosphere dynamics plus thermal
/// depth motion with reflecting walls.
pub struct Pic3Simulation {
    cfg: Pic3Config,
    planar: crate::pic::PicSimulation,
    /// (z, vz) per particle; positions in [0, 1).
    depth_state: Vec<(f64, f64)>,
    snapshots_taken: u32,
}

impl Pic3Simulation {
    /// Initializes planar and depth state (deterministic in the seed).
    pub fn new(cfg: Pic3Config) -> Self {
        let planar = crate::pic::PicSimulation::new(cfg.planar.clone());
        let seed = cfg.planar.seed ^ 0x5851_F42D_4C95_7F2D;
        let depth_state = rectpart_parallel::map_range(cfg.planar.particles, |i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            (rng.gen::<f64>(), cfg.vz_thermal * (rng.gen::<f64>() - 0.5))
        });
        Self {
            cfg,
            planar,
            depth_state,
            snapshots_taken: 0,
        }
    }

    /// One physics step: planar Boris push + depth drift with reflection.
    pub fn step(&mut self) {
        self.planar.step();
        let dt = self.cfg.planar.dt;
        rectpart_parallel::for_each_indexed_mut(&mut self.depth_state, |_, (z, vz)| {
            *z += *vz * dt;
            if *z < 0.0 {
                *z = -*z;
                *vz = -*vz;
            } else if *z >= 1.0 {
                *z = (2.0 - *z).max(0.0);
                *vz = -*vz;
            }
        });
    }

    /// Deposits particles into the 3D grid. The planar `base_load` of a
    /// column is spread over its depth cells (rounded down, so the
    /// *accumulated* volume slightly underestimates the 2D base when
    /// `depth ∤ base_load` — negligible for the defaults).
    pub fn deposit(&self) -> LoadVolume {
        let cfg = &self.cfg.planar;
        let (rows, cols, depth) = (cfg.rows, cfg.cols, self.cfg.depth);
        let planar_pos = self.planar.positions();
        let counts = rectpart_parallel::chunked_reduce(
            &planar_pos,
            8192,
            |chunk_idx, pchunk| {
                let zchunk = &self.depth_state[chunk_idx * 8192..][..pchunk.len()];
                let mut local = vec![0u32; rows * cols * depth];
                for (&(x, y), &(z, _)) in pchunk.iter().zip(zchunk) {
                    let r = ((y * rows as f64) as usize).min(rows - 1);
                    let c = ((x * cols as f64) as usize).min(cols - 1);
                    let d = ((z * depth as f64) as usize).min(depth - 1);
                    local[(r * cols + c) * depth + d] += 1;
                }
                local
            },
            vec![0u32; rows * cols * depth],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        let base = cfg.base_load / depth as u32;
        let w = cfg.particle_weight;
        LoadVolume::from_fn(rows, cols, depth, |r, c, d| {
            base + w * counts[(r * cols + c) * depth + d]
        })
    }

    /// Advances to the next snapshot boundary and extracts it.
    pub fn next_snapshot(&mut self) -> Pic3Snapshot {
        if self.snapshots_taken > 0 {
            for _ in 0..self.cfg.planar.substeps_per_snapshot {
                self.step();
            }
        }
        let snap = Pic3Snapshot {
            iteration: self.snapshots_taken * self.cfg.planar.iterations_per_snapshot,
            volume: self.deposit(),
        };
        self.snapshots_taken += 1;
        snap
    }
}

/// Runs the full 3D simulation and returns all snapshots.
pub fn pic3_trace(cfg: &Pic3Config) -> Vec<Pic3Snapshot> {
    let mut sim = Pic3Simulation::new(cfg.clone());
    (0..cfg.planar.snapshots)
        .map(|_| sim.next_snapshot())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rectpart_volume::Axis3;

    fn tiny() -> Pic3Config {
        Pic3Config {
            planar: PicConfig {
                rows: 16,
                cols: 16,
                particles: 2000,
                snapshots: 3,
                substeps_per_snapshot: 4,
                base_load: 64,
                ..PicConfig::default()
            },
            depth: 8,
            vz_thermal: 0.3,
        }
    }

    #[test]
    fn deterministic() {
        let a = pic3_trace(&tiny());
        let b = pic3_trace(&tiny());
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.volume, y.volume);
        }
    }

    #[test]
    fn particle_count_conserved_in_3d() {
        let cfg = tiny();
        for snap in pic3_trace(&cfg) {
            let base_total = (cfg.planar.base_load / cfg.depth as u32) as u64
                * (cfg.planar.rows * cfg.planar.cols * cfg.depth) as u64;
            let particles = (snap.volume.total() - base_total) / cfg.planar.particle_weight as u64;
            assert_eq!(particles, cfg.planar.particles as u64);
        }
    }

    #[test]
    fn accumulation_matches_paper_preprocessing() {
        // Flattening along the depth axis gives a matrix with the same
        // particle mass as the planar deposit (bases differ by rounding).
        let cfg = tiny();
        let trace = pic3_trace(&cfg);
        let flat = trace[2].volume.flatten(Axis3::Z);
        assert_eq!(flat.rows(), cfg.planar.rows);
        assert_eq!(flat.cols(), cfg.planar.cols);
        assert_eq!(flat.total(), trace[2].volume.total());
    }

    #[test]
    fn depth_dimension_is_populated() {
        let trace = pic3_trace(&tiny());
        let v = &trace[1].volume;
        let (_, _, depth) = v.dims();
        // Particles spread across depth: more than one slab is non-base.
        let base = 64 / 8;
        let populated = (0..depth)
            .filter(|&d| (0..16).any(|r| (0..16).any(|c| v.get(r, c, d) > base)))
            .count();
        assert!(populated > depth / 2, "only {populated} slabs populated");
    }
}
