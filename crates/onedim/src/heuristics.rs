//! Fast 1D partitioning heuristics: `DirectCut` and `RecursiveBisection`.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;

/// `DirectCut` (DC) — "Heuristic 1" of Miguet & Pierson.
///
/// Places cut `j` at the smallest index `i` such that
/// `cost(0, i) > j · total / m`, i.e. each processor greedily absorbs the
/// smallest prefix whose load exceeds its cumulative ideal share.
///
/// For **additive** costs this guarantees
/// `Lmax(DC) ≤ total/m + max_i A[i]` (paper §2.2), hence DC is a
/// 2-approximation, and — with every element strictly positive —
/// `Lmax(DC) ≤ (total/m)(1 + Δm/n)` (Lemma 1 of the paper). For general
/// monotone costs it is still a valid heuristic, without the guarantee.
///
/// Runs in `O(m log n)` cost queries.
pub fn direct_cut<C: IntervalCost>(c: &C, m: usize) -> Cuts {
    assert!(m >= 1);
    let n = c.len();
    let total = c.total() as u128;
    let mut points = Vec::with_capacity(m + 1);
    points.push(0usize);
    let mut prev = 0usize;
    for j in 1..m {
        // smallest i >= prev with cost(0, i) * m > j * total
        // lint:allow(checked-arith) -- u128 widening: j <= m (usize) times
        // a u64 total cannot overflow 128 bits
        let target = j as u128 * total;
        let (mut a, mut b) = (prev, n);
        while a < b {
            let mid = a + (b - a) / 2;
            if (c.cost(0, mid) as u128) * m as u128 > target {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        points.push(a);
        prev = a;
    }
    points.push(n);
    Cuts::new(points)
}

/// `RecursiveBisection` (RB) — Berger & Bokhari style bisection.
///
/// Recursively splits the range into two pieces of (approximately) equal
/// per-processor load, assigning `⌊m/2⌋` processors to one side and
/// `⌈m/2⌉` to the other; for odd `m` both assignments of the extra
/// processor are tried and the one minimizing the expected per-processor
/// load is kept. A 2-approximation with
/// `Lmax(RB) ≤ total/m + max_i A[i]` for additive costs; `O(m log n)`
/// cost queries.
pub fn recursive_bisection<C: IntervalCost>(c: &C, m: usize) -> Cuts {
    assert!(m >= 1);
    let mut points = Vec::with_capacity(m + 1);
    recursive_bisection_into(c, m, &mut points);
    Cuts::new(points)
}

/// [`recursive_bisection`] writing the `m + 1` cut points into a caller-
/// provided buffer (cleared first) instead of allocating a [`Cuts`]. The
/// allocation-free incumbent builder of the stripe-cost hot loops.
pub fn recursive_bisection_into<C: IntervalCost>(c: &C, m: usize, points: &mut Vec<usize>) {
    assert!(m >= 1);
    points.clear();
    points.reserve(m + 1);
    points.push(0usize);
    bisect(c, 0, c.len(), m, points);
    debug_assert_eq!(points.len(), m + 1);
}

/// Scaled max per-processor load of splitting `[lo, hi)` at `s` with
/// `(m1, m2)` processors: `max(L1/m1, L2/m2)` compared via cross
/// multiplication to stay in integers. Returns the comparable key.
fn split_key<C: IntervalCost>(c: &C, lo: usize, s: usize, hi: usize, m1: usize, m2: usize) -> u128 {
    let l1 = c.cost(lo, s) as u128;
    let l2 = c.cost(s, hi) as u128;
    // max(l1/m1, l2/m2) == max(l1*m2, l2*m1) / (m1*m2); m1*m2 is constant
    // across candidate s for a fixed (m1, m2) ordering, and when comparing
    // the two orderings of an odd split the denominators also agree.
    // lint:allow(checked-arith) -- u128 widening: u64 loads times usize
    // part counts cannot overflow 128 bits
    (l1 * m2 as u128).max(l2 * m1 as u128)
}

fn bisect<C: IntervalCost>(c: &C, lo: usize, hi: usize, m: usize, out: &mut Vec<usize>) {
    if m == 1 {
        out.push(hi);
        return;
    }
    let m1 = m / 2;
    let m2 = m - m1;
    // Smallest s with l1 * m2 >= l2 * m1 (LHS non-decreasing, RHS
    // non-increasing in s); the optimum is at that crossing or just before.
    let (mut a, mut b) = (lo, hi);
    while a < b {
        let mid = a + (b - a) / 2;
        let l1 = c.cost(lo, mid) as u128 * m2 as u128;
        let l2 = c.cost(mid, hi) as u128 * m1 as u128;
        if l1 >= l2 {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let mut best_s = a;
    let mut best_key = split_key(c, lo, a, hi, m1, m2);
    let mut best_m1 = m1;
    if a > lo {
        let k = split_key(c, lo, a - 1, hi, m1, m2);
        if k < best_key {
            best_key = k;
            best_s = a - 1;
        }
    }
    if m1 != m2 {
        // Odd m: also consider giving the larger processor count to the left.
        let (mut a, mut b) = (lo, hi);
        while a < b {
            let mid = a + (b - a) / 2;
            let l1 = c.cost(lo, mid) as u128 * m1 as u128;
            let l2 = c.cost(mid, hi) as u128 * m2 as u128;
            if l1 >= l2 {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        for s in [a, a.saturating_sub(1).max(lo)] {
            let k = split_key(c, lo, s, hi, m2, m1);
            if k < best_key {
                best_key = k;
                best_s = s;
                best_m1 = m2;
            }
        }
    }
    bisect(c, lo, best_s, best_m1, out);
    bisect(c, best_s, hi, m - best_m1, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;
    use crate::dp::dp_optimal;

    fn uniform(n: usize) -> PrefixCosts {
        PrefixCosts::from_loads(&vec![1u64; n])
    }

    #[test]
    fn direct_cut_uniform_is_balanced() {
        let c = uniform(100);
        let cuts = direct_cut(&c, 4);
        // DC takes the smallest prefix whose load exceeds the cumulative
        // ideal share (strict, per Miguet-Pierson), so the first part gets
        // one extra item on a perfectly uniform array.
        assert_eq!(cuts.loads(&c), vec![26, 25, 25, 24]);
        assert_eq!(cuts.bottleneck(&c), 26);
    }

    #[test]
    fn direct_cut_guarantee_holds() {
        let loads = [7u64, 3, 9, 1, 1, 8, 2, 2, 6, 5, 4, 9];
        let c = PrefixCosts::from_loads(&loads);
        for m in 1..=12 {
            let cuts = direct_cut(&c, m);
            let bound = c.total() / m as u64 + c.max_unit_cost() + 1; // +1 for integer division slack
            assert!(
                cuts.bottleneck(&c) <= bound,
                "m={m}: {} > {}",
                cuts.bottleneck(&c),
                bound
            );
            assert!(cuts.validate(12, m).is_ok());
        }
    }

    #[test]
    fn recursive_bisection_uniform_is_balanced() {
        let c = uniform(64);
        let cuts = recursive_bisection(&c, 8);
        assert_eq!(cuts.loads(&c), vec![8; 8]);
    }

    #[test]
    fn recursive_bisection_guarantee_holds() {
        let loads = [7u64, 3, 9, 1, 1, 8, 2, 2, 6, 5, 4, 9, 10, 1, 1, 2];
        let c = PrefixCosts::from_loads(&loads);
        for m in 1..=16 {
            let cuts = recursive_bisection(&c, m);
            assert!(cuts.validate(16, m).is_ok());
            let bound = c.total() / m as u64 + c.max_unit_cost() + 1;
            assert!(cuts.bottleneck(&c) <= bound, "m={m}");
        }
    }

    #[test]
    fn heuristics_never_beat_optimal() {
        let loads = [5u64, 17, 2, 8, 8, 1, 13, 4, 4, 4, 20, 1];
        let c = PrefixCosts::from_loads(&loads);
        for m in 1..=8 {
            let opt = dp_optimal(&c, m).bottleneck;
            assert!(direct_cut(&c, m).bottleneck(&c) >= opt);
            assert!(recursive_bisection(&c, m).bottleneck(&c) >= opt);
        }
    }

    #[test]
    fn single_processor_takes_everything() {
        let c = PrefixCosts::from_loads(&[1u64, 2, 3]);
        assert_eq!(direct_cut(&c, 1).points(), &[0, 3]);
        assert_eq!(recursive_bisection(&c, 1).points(), &[0, 3]);
    }

    #[test]
    fn more_parts_than_items() {
        let c = PrefixCosts::from_loads(&[4u64, 4]);
        let dc = direct_cut(&c, 5);
        let rb = recursive_bisection(&c, 5);
        assert!(dc.validate(2, 5).is_ok());
        assert!(rb.validate(2, 5).is_ok());
        assert_eq!(dc.bottleneck(&c), 4);
        assert_eq!(rb.bottleneck(&c), 4);
    }

    #[test]
    fn zero_loads_are_tolerated() {
        let c = PrefixCosts::from_loads(&[0u64, 0, 5, 0, 0, 5, 0]);
        for m in 1..=4 {
            let dc = direct_cut(&c, m);
            let rb = recursive_bisection(&c, m);
            assert!(dc.validate(7, m).is_ok());
            assert!(rb.validate(7, m).is_ok());
        }
        assert_eq!(recursive_bisection(&c, 2).bottleneck(&c), 5);
    }
}
