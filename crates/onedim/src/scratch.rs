//! Reusable scratch buffers for the 1D solve hot loops.
//!
//! The 2D partitioners call the 1D solvers thousands of times per
//! partition (once per stripe-cost query, once per feasibility check),
//! and every call that materializes cut points or DP rows pays a heap
//! allocation. A [`SolveScratch`] owns those buffers across calls: a
//! caller checks a buffer out, the checkout clears it and notes whether
//! the existing capacity sufficed ([`ScratchReuses`]) or a (re)allocation
//! was needed ([`ScratchAllocs`]).
//!
//! The two counters are the substrate benchmark's allocation proxy
//! (`#[global_allocator]` hooks are off the table under
//! `forbid(unsafe_code)`), and they are **deterministic counters**: every
//! checkout site runs an identical sequence at any thread count, so the
//! obs differential suite can pin their values.
//!
//! A `SolveScratch` is deliberately *not* shareable — no `Sync`, no
//! interior mutability. Serial hot loops thread `&mut` through; the
//! memoized stripe-cost closures wrap one in a `RefCell` because each
//! orientation's closure chain runs single-threaded.
//!
//! [`ScratchReuses`]: rectpart_obs::Counter::ScratchReuses
//! [`ScratchAllocs`]: rectpart_obs::Counter::ScratchAllocs

/// Owned buffers for the 1D solve hot paths.
///
/// ```
/// use rectpart_onedim::{nicol, nicol_bottleneck, PrefixCosts, SolveScratch};
///
/// let c = PrefixCosts::from_loads(&[3u64, 1, 4, 1, 5, 9, 2, 6]);
/// let mut scratch = SolveScratch::new();
/// for m in 1..=4 {
///     assert_eq!(nicol_bottleneck(&c, m, &mut scratch), nicol(&c, m).bottleneck);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Cut-point buffer (recursive-bisection incumbents).
    points: Vec<usize>,
    /// Jagged feasibility DP: minimal processor count per suffix.
    jag_f: Vec<usize>,
    /// Jagged feasibility DP: chosen next stripe boundary per position.
    jag_choice: Vec<usize>,
}

/// Clears `buf` for reuse and records whether its capacity already
/// covered `cap` (a reuse) or had to grow (an allocation).
fn checkout<T>(buf: &mut Vec<T>, cap: usize) {
    if buf.capacity() >= cap {
        rectpart_obs::incr(rectpart_obs::Counter::ScratchReuses);
    } else {
        rectpart_obs::incr(rectpart_obs::Counter::ScratchAllocs);
    }
    buf.clear();
    buf.reserve(cap);
}

impl SolveScratch {
    /// An empty arena; buffers grow on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out the cut-point buffer, cleared, with room for `cap`
    /// points.
    pub fn points(&mut self, cap: usize) -> &mut Vec<usize> {
        checkout(&mut self.points, cap);
        &mut self.points
    }

    /// Checks out the two jagged-feasibility DP buffers (`f`, `choice`),
    /// cleared, each with room for `cap` entries. One checkout — the
    /// pair is counted once.
    pub fn jag_buffers(&mut self, cap: usize) -> (&mut Vec<usize>, &mut Vec<usize>) {
        if self.jag_f.capacity() >= cap && self.jag_choice.capacity() >= cap {
            rectpart_obs::incr(rectpart_obs::Counter::ScratchReuses);
        } else {
            rectpart_obs::incr(rectpart_obs::Counter::ScratchAllocs);
        }
        self.jag_f.clear();
        self.jag_f.reserve(cap);
        self.jag_choice.clear();
        self.jag_choice.reserve(cap);
        (&mut self.jag_f, &mut self.jag_choice)
    }

    /// The jagged `choice` buffer as last filled through
    /// [`Self::jag_buffers`] (solution reconstruction reads it after the
    /// final feasibility check).
    pub fn jag_choice(&self) -> &[usize] {
        &self.jag_choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_cleared_and_capacity_is_kept() {
        let mut s = SolveScratch::new();
        s.points(8).extend_from_slice(&[1, 2, 3]);
        let p = s.points(4);
        assert!(p.is_empty(), "checkout must clear");
        assert!(p.capacity() >= 8, "capacity must survive checkouts");
    }

    #[test]
    fn jag_buffers_round_trip_through_choice() {
        let mut s = SolveScratch::new();
        let (f, choice) = s.jag_buffers(4);
        f.resize(4, usize::MAX);
        choice.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(s.jag_choice(), &[1, 2, 3, 4]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn checkout_counts_allocs_then_reuses() {
        // Deltas only (other tests in this binary may also count).
        let counter = |name: &str| {
            rectpart_obs::Recorder::global()
                .snapshot()
                .get(name)
                .unwrap_or(0)
        };
        let before_alloc = counter("onedim.scratch.allocs");
        let mut s = SolveScratch::new();
        s.points(16);
        assert!(
            counter("onedim.scratch.allocs") > before_alloc,
            "first checkout allocates"
        );
        let before_reuse = counter("onedim.scratch.reuses");
        s.points(8);
        assert!(
            counter("onedim.scratch.reuses") > before_reuse,
            "smaller checkout reuses"
        );
    }
}
