#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! One-dimensional partitioning substrate for `rectpart`.
//!
//! The 2D rectangle-partitioning algorithms of the IPDPS 2011 paper
//! *Partitioning Spatially Located Computations using Rectangles*
//! (Saule, Baş, Çatalyürek) are all built on one-dimensional chains-on-chains
//! partitioning: split an array of `n` non-negative loads into `m`
//! consecutive intervals minimizing the load of the most loaded interval
//! (the *bottleneck*).
//!
//! This crate provides the four 1D algorithms the paper relies on
//! (§2.2 of the paper):
//!
//! * [`direct_cut`] — the `DC` heuristic ("Heuristic 1" of Miguet &
//!   Pierson), a 2-approximation with the stronger guarantee
//!   `Lmax ≤ total/m + max_i A[i]`,
//! * [`recursive_bisection`] — the classic `RB` heuristic (also a
//!   2-approximation with the same refined bound),
//! * [`dp_optimal`] — the Manne–Olstad dynamic program, an easy-to-audit
//!   optimal algorithm used as a test oracle,
//! * [`nicol`] — Nicol's optimal parametric-search algorithm with the
//!   Han–Narahari–Choi [`probe`] subroutine and the Pınar–Aykanat style
//!   search-range bounding ("NicolPlus"); this is the production optimal
//!   solver used by every 2D algorithm.
//!
//! # Interval-cost oracles
//!
//! Everything is generic over [`IntervalCost`], a *monotone* interval-cost
//! oracle: `cost(lo, hi)` must be non-decreasing when the interval grows.
//! Two families of oracles appear in the 2D code:
//!
//! * additive costs backed by prefix sums (O(1) per query) — projections of
//!   the 2D load matrix onto one dimension read straight from the 2D prefix
//!   sum array, no materialization needed;
//! * the *max-over-stripes* cost used by the `RECT-NICOL` iterative
//!   refinement, which is monotone but not additive.
//!
//! Nicol's algorithm, `probe`, `RB` and `DC` only require monotonicity, so a
//! single implementation serves both. (For non-additive oracles `DC`'s and
//! `RB`'s approximation guarantees no longer apply; they remain valid
//! heuristics.)
//!
//! # Example
//!
//! ```
//! use rectpart_onedim::{PrefixCosts, nicol, dp_optimal, IntervalCost};
//!
//! let loads = [3u64, 1, 4, 1, 5, 9, 2, 6];
//! let cost = PrefixCosts::from_loads(&loads);
//! let opt = nicol(&cost, 3);
//! assert_eq!(opt.bottleneck, dp_optimal(&cost, 3).bottleneck);
//! assert_eq!(opt.cuts.parts(), 3);
//! assert!(opt.bottleneck >= cost.total() / 3);
//! ```

mod cost;
mod cuts;
mod dp;
mod hetero;
mod heuristics;
mod nicol;
mod probe;
mod refined;
mod scratch;

pub use cost::{FnCost, IntervalCost, PrefixCosts};
pub use cuts::Cuts;
pub use dp::dp_optimal;
pub use hetero::{hetero_optimal, hetero_probe, HeteroResult};
pub use heuristics::{direct_cut, recursive_bisection, recursive_bisection_into};
pub use nicol::{
    nicol, nicol_bottleneck, nicol_bounded, nicol_in, nicol_in_seeded, parametric_optimal,
    try_nicol_in, Cancelled, OneDimResult,
};
pub use probe::{probe, probe_feasible, probe_suffix_feasible};
pub use refined::{direct_cut_refined, probe_feasible_sliced};
pub use scratch::SolveScratch;
