//! Monotone interval-cost oracles.

/// A monotone cost function over half-open intervals `[lo, hi)` of a
/// sequence of `len()` items.
///
/// # Contract
///
/// Implementations must guarantee, for all `lo <= hi <= len()`:
///
/// * `cost(i, i) == 0`,
/// * *monotonicity*: `cost(lo, hi) <= cost(lo, hi + 1)` and
///   `cost(lo, hi) >= cost(lo + 1, hi)` — growing an interval never
///   decreases its cost.
///
/// Additivity (`cost(a, c) == cost(a, b) + cost(b, c)`) is **not**
/// required: the `RECT-NICOL` refinement feeds a max-over-stripes cost
/// through the same algorithms. Algorithms that exploit additivity for
/// their approximation guarantee ([`crate::direct_cut`]) document it.
///
/// `Send + Sync` is a supertrait: the 2D algorithms evaluate independent
/// stripes of one instance on worker threads, sharing the cost oracle by
/// reference. Oracles are read-only views over prefix sums (plus, in the
/// 2D crate, a sharded concurrent memo), so the bound costs nothing in
/// practice.
pub trait IntervalCost: Send + Sync {
    /// Number of items in the underlying sequence.
    fn len(&self) -> usize;

    /// Cost of the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// May panic if `lo > hi` or `hi > len()`.
    fn cost(&self, lo: usize, hi: usize) -> u64;

    /// `true` if the sequence has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cost of the whole sequence.
    fn total(&self) -> u64 {
        self.cost(0, self.len())
    }

    /// Largest single-item cost; a lower bound on any bottleneck since
    /// every item must land in some interval (valid for any monotone
    /// cost).
    fn max_unit_cost(&self) -> u64 {
        (0..self.len())
            .map(|i| self.cost(i, i + 1))
            .max()
            .unwrap_or(0)
    }

    /// `true` if the cost is additive (`cost(a,c) = cost(a,b) +
    /// cost(b,c)`). Enables average-based lower bounds in the optimal
    /// algorithms; claiming additivity for a non-additive oracle breaks
    /// their exactness.
    fn additive(&self) -> bool {
        false
    }

    /// A lower bound on the bottleneck of any partition of `[lo, len)`
    /// into `parts` intervals. For additive costs this is
    /// `⌈cost(lo, len)/parts⌉`; without additivity no average-based bound
    /// is sound (splitting an interval can shrink costs more than
    /// proportionally), so the default is 0.
    fn partition_lower_bound(&self, lo: usize, parts: usize) -> u64 {
        if self.additive() && parts > 0 {
            self.cost(lo, self.len()).div_ceil(parts as u64)
        } else {
            0
        }
    }

    /// Smallest index `i in [lo, hi]` such that `cost(from, i) >= target`,
    /// or `hi` if none. Relies on monotonicity of `cost(from, ·)`.
    fn lower_bisect(&self, from: usize, lo: usize, hi: usize, target: u64) -> usize {
        debug_assert!(from <= lo && lo <= hi && hi <= self.len());
        let (mut a, mut b) = (lo, hi);
        while a < b {
            let mid = a + (b - a) / 2;
            if self.cost(from, mid) >= target {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        a
    }

    /// Largest index `i in [lo, hi]` such that `cost(from, i) <= budget`.
    /// Requires `cost(from, lo) <= budget`. Relies on monotonicity.
    fn upper_bisect(&self, from: usize, lo: usize, hi: usize, budget: u64) -> usize {
        debug_assert!(self.cost(from, lo) <= budget);
        let (mut a, mut b) = (lo, hi);
        // Invariant: cost(from, a) <= budget.
        while a < b {
            let mid = a + (b - a).div_ceil(2);
            if self.cost(from, mid) <= budget {
                a = mid;
            } else {
                b = mid - 1;
            }
        }
        a
    }
}

impl<T: IntervalCost + ?Sized> IntervalCost for &T {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn cost(&self, lo: usize, hi: usize) -> u64 {
        (**self).cost(lo, hi)
    }
    fn max_unit_cost(&self) -> u64 {
        (**self).max_unit_cost()
    }
    fn additive(&self) -> bool {
        (**self).additive()
    }
}

/// Additive interval costs backed by an owned prefix-sum array:
/// `cost(lo, hi) = prefix[hi] - prefix[lo]` in O(1).
#[derive(Clone, Debug)]
pub struct PrefixCosts {
    prefix: Vec<u64>,
    max_unit: u64,
}

impl PrefixCosts {
    /// Builds the prefix-sum array from per-item loads.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the running `u64` sum (debug and release).
    pub fn from_loads<L: Into<u64> + Copy>(loads: &[L]) -> Self {
        let mut prefix = Vec::with_capacity(loads.len() + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        let mut max_unit = 0u64;
        for &l in loads {
            let l: u64 = l.into();
            // lint:allow(panic) -- overflow guard: aborting on a u64-overflowing load sum beats silently wrapping costs
            acc = acc.checked_add(l).expect("prefix sum overflow");
            max_unit = max_unit.max(l);
            prefix.push(acc);
        }
        Self { prefix, max_unit }
    }

    /// Wraps an existing prefix-sum array (`prefix[0] == 0`,
    /// non-decreasing, `len = prefix.len() - 1`).
    ///
    /// # Panics
    ///
    /// Panics if the array is empty, does not start at 0, or decreases.
    pub fn from_prefix(prefix: Vec<u64>) -> Self {
        assert!(!prefix.is_empty(), "prefix array must contain at least [0]");
        assert_eq!(prefix[0], 0, "prefix array must start at 0");
        let mut max_unit = 0;
        for w in prefix.windows(2) {
            assert!(w[1] >= w[0], "prefix array must be non-decreasing");
            max_unit = max_unit.max(w[1] - w[0]);
        }
        Self { prefix, max_unit }
    }

    /// The raw prefix-sum array (length `len() + 1`).
    pub fn prefix(&self) -> &[u64] {
        &self.prefix
    }
}

impl IntervalCost for PrefixCosts {
    fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    #[inline]
    fn cost(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi < self.prefix.len());
        // lint:allow(panic-reach) -- API contract (debug_assert above):
        // lo <= hi < prefix.len(); this is the hottest query in the crate
        self.prefix[hi] - self.prefix[lo]
    }

    fn max_unit_cost(&self) -> u64 {
        self.max_unit
    }

    fn additive(&self) -> bool {
        true
    }
}

/// An interval-cost oracle defined by a closure; used by the 2D crate to
/// expose virtual projections of the load matrix without materializing
/// them (paper §3.2.1: "there is actually no projection to make").
#[derive(Clone)]
pub struct FnCost<F> {
    len: usize,
    additive: bool,
    f: F,
}

impl<F: Fn(usize, usize) -> u64> FnCost<F> {
    /// Wraps `f(lo, hi)` as a *general monotone* cost oracle over `len`
    /// items. The closure must satisfy the [`IntervalCost`] monotonicity
    /// contract. Use [`FnCost::additive`] when the closure is additive to
    /// unlock average-based bounds in the optimal algorithms.
    pub fn new(len: usize, f: F) -> Self {
        Self {
            len,
            additive: false,
            f,
        }
    }

    /// Wraps an **additive** closure (`f(a,c) == f(a,b) + f(b,c)`), e.g. a
    /// projection of a 2D prefix-sum array.
    pub fn additive(len: usize, f: F) -> Self {
        Self {
            len,
            additive: true,
            f,
        }
    }
}

impl<F: Fn(usize, usize) -> u64 + Send + Sync> IntervalCost for FnCost<F> {
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn cost(&self, lo: usize, hi: usize) -> u64 {
        (self.f)(lo, hi)
    }

    fn additive(&self) -> bool {
        self.additive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_costs_basic() {
        let c = PrefixCosts::from_loads(&[1u64, 2, 3, 4]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.total(), 10);
        assert_eq!(c.cost(0, 0), 0);
        assert_eq!(c.cost(1, 3), 5);
        assert_eq!(c.max_unit_cost(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn prefix_costs_empty() {
        let c = PrefixCosts::from_loads::<u64>(&[]);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
        assert_eq!(c.max_unit_cost(), 0);
    }

    #[test]
    fn from_prefix_roundtrip() {
        let c = PrefixCosts::from_prefix(vec![0, 3, 3, 10]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.cost(0, 3), 10);
        assert_eq!(c.cost(1, 2), 0);
        assert_eq!(c.max_unit_cost(), 7);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_prefix_rejects_decreasing() {
        let _ = PrefixCosts::from_prefix(vec![0, 5, 3]);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn from_prefix_rejects_nonzero_start() {
        let _ = PrefixCosts::from_prefix(vec![1, 5]);
    }

    #[test]
    fn lower_bisect_finds_first_reaching_target() {
        let c = PrefixCosts::from_loads(&[2u64, 2, 2, 2, 2]);
        assert_eq!(c.lower_bisect(0, 0, 5, 5), 3); // cost(0,3)=6 >= 5
        assert_eq!(c.lower_bisect(0, 0, 5, 0), 0);
        assert_eq!(c.lower_bisect(0, 0, 5, 100), 5); // unreachable -> hi
        assert_eq!(c.lower_bisect(2, 2, 5, 3), 4); // cost(2,4)=4 >= 3
    }

    #[test]
    fn upper_bisect_finds_last_within_budget() {
        let c = PrefixCosts::from_loads(&[2u64, 2, 2, 2, 2]);
        assert_eq!(c.upper_bisect(0, 0, 5, 5), 2); // cost(0,2)=4 <= 5
        assert_eq!(c.upper_bisect(0, 0, 5, 100), 5);
        assert_eq!(c.upper_bisect(0, 0, 5, 0), 0);
        assert_eq!(c.upper_bisect(1, 1, 5, 4), 3); // cost(1,3)=4
    }

    #[test]
    fn fn_cost_wraps_closure() {
        let loads = [5u64, 1, 1, 5];
        let pfx: Vec<u64> = std::iter::once(0)
            .chain(loads.iter().scan(0, |a, &x| {
                *a += x;
                Some(*a)
            }))
            .collect();
        let c = FnCost::new(4, move |lo, hi| pfx[hi] - pfx[lo]);
        assert_eq!(c.total(), 12);
        assert_eq!(c.cost(1, 3), 2);
        assert_eq!(c.max_unit_cost(), 5);
    }

    #[test]
    fn reference_impl_delegates() {
        let c = PrefixCosts::from_loads(&[1u64, 2, 3]);
        let r = &c;
        assert_eq!(IntervalCost::len(&r), 3);
        assert_eq!(IntervalCost::cost(&r, 0, 2), 3);
        assert_eq!(IntervalCost::max_unit_cost(&r), 3);
    }
}
