//! Refinement heuristics on top of `DirectCut` (Miguet & Pierson's
//! "Heuristic 2") and the sliced Probe of Han, Narahari & Choi.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;
use crate::heuristics::direct_cut;

/// Miguet & Pierson's "Heuristic 2": run [`direct_cut`], then locally
/// refine every cut — each boundary may move one item left if that
/// lowers the larger of the two adjacent interval costs. A single
/// left-to-right pass, as in the original: DC places each cut at the
/// *smallest* index exceeding the ideal cumulative share, so the only
/// profitable local move is backwards.
///
/// Keeps DC's `total/m + max` guarantee (the refinement never increases
/// the bottleneck) at DC's `O(m log n)` cost.
pub fn direct_cut_refined<C: IntervalCost>(c: &C, m: usize) -> Cuts {
    let cuts = direct_cut(c, m);
    let mut points = cuts.points().to_vec();
    for j in 1..m {
        // Moving cut j left by one shifts one item from part j-1's right
        // edge into part j. The neighbours are loop-invariant (only cut j
        // moves), so hoist all three points out of the descent loop.
        // lint:allow(panic-reach) -- j in 1..m and points.len() = m+1, so
        // j-1, j and j+1 are all in bounds
        let (left_pt, mut pj, right_pt) = (points[j - 1], points[j], points[j + 1]);
        while pj > left_pt {
            let left = c.cost(left_pt, pj);
            let right = c.cost(pj, right_pt);
            let new_left = c.cost(left_pt, pj - 1);
            let new_right = c.cost(pj - 1, right_pt);
            if new_left.max(new_right) < left.max(right) {
                pj -= 1;
            } else {
                break;
            }
        }
        // lint:allow(panic-reach) -- j < m < points.len()
        points[j] = pj;
    }
    Cuts::new(points)
}

/// The sliced Probe of Han, Narahari & Choi (1992) for **additive**
/// costs: the sequence is pre-sliced into `m` equal-length chunks; each
/// greedy step first locates the chunk containing its cut (amortized
/// O(1) forward scan, since the m successive searches look for
/// increasing prefix values) and then bisects inside it, for
/// `O(m log(n/m))` total instead of `O(m log n)`.
///
/// Falls back to the plain probe for non-additive oracles, where prefix
/// values against a fixed origin are meaningless.
pub fn probe_feasible_sliced<C: IntervalCost>(c: &C, m: usize, budget: u64) -> bool {
    if !c.additive() {
        return crate::probe::probe_feasible(c, m, budget);
    }
    let n = c.len();
    if n == 0 {
        return true;
    }
    let chunk = n.div_ceil(m);
    let mut lo = 0usize;
    let mut slice = 0usize; // index of the chunk the next cut lies in
    for _ in 0..m {
        if lo == n {
            return true;
        }
        if c.cost(lo, lo + 1) > budget {
            return false;
        }
        // Target prefix value the cut must not exceed. Saturating: a
        // budget near u64::MAX means every cut is feasible, and a clamped
        // target keeps exactly that meaning in the comparisons below.
        let target = c.cost(0, lo).saturating_add(budget);
        // Advance to the first chunk whose end exceeds the target; the
        // cut lies in it. Amortized O(1): `slice` only moves forward.
        while (slice + 1) * chunk < n && c.cost(0, ((slice + 1) * chunk).min(n)) <= target {
            slice += 1;
        }
        let hi_bound = ((slice + 1) * chunk).min(n);
        let lo_bound = (slice * chunk).max(lo);
        lo = c.upper_bisect(lo, lo_bound.max(lo + 1).min(hi_bound), hi_bound, budget);
    }
    lo == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;
    use crate::nicol::nicol;
    use crate::probe::probe_feasible;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn refined_never_worse_than_direct_cut() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let n = rng.gen_range(2..80);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [2usize, 3, 7, 12] {
                let dc = direct_cut(&c, m).bottleneck(&c);
                let h2 = direct_cut_refined(&c, m);
                assert!(h2.validate(n, m).is_ok());
                assert!(h2.bottleneck(&c) <= dc, "n={n} m={m}");
                assert!(h2.bottleneck(&c) >= nicol(&c, m).bottleneck);
            }
        }
    }

    #[test]
    fn refined_improves_a_known_case() {
        // DC overfills the first part on this array; H2 walks the cut back.
        let loads = [6u64, 6, 1, 1, 1, 1];
        let c = PrefixCosts::from_loads(&loads);
        let dc = direct_cut(&c, 2).bottleneck(&c);
        let h2 = direct_cut_refined(&c, 2).bottleneck(&c);
        assert!(dc >= h2);
        assert_eq!(h2, nicol(&c, 2).bottleneck);
    }

    #[test]
    fn sliced_probe_matches_plain_probe() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let n = rng.gen_range(1..120);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [1usize, 2, 5, 11] {
                let opt = nicol(&c, m).bottleneck;
                for budget in [
                    0,
                    opt.saturating_sub(1),
                    opt,
                    opt + 1,
                    opt.saturating_mul(2),
                ] {
                    assert_eq!(
                        probe_feasible_sliced(&c, m, budget),
                        probe_feasible(&c, m, budget),
                        "n={n} m={m} budget={budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliced_probe_empty_sequence() {
        let c = PrefixCosts::from_loads::<u64>(&[]);
        assert!(probe_feasible_sliced(&c, 3, 0));
    }
}
