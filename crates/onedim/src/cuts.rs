//! Partition-of-a-sequence representation.

use crate::cost::IntervalCost;

/// A partition of `[0, n)` into `m` consecutive half-open intervals,
/// stored as `m + 1` non-decreasing cut points with `points[0] == 0` and
/// `points[m] == n`. Interval `j` is `[points[j], points[j + 1])`; empty
/// intervals are allowed (the paper permits idle processors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cuts {
    points: Vec<usize>,
}

impl Cuts {
    /// Builds cuts from raw points, validating the invariants.
    ///
    /// # Panics
    ///
    /// Panics if the invariant described on [`Cuts`] is violated.
    pub fn new(points: Vec<usize>) -> Self {
        assert!(points.len() >= 2, "need at least one interval");
        assert_eq!(points[0], 0, "first cut must be 0");
        assert!(
            points.windows(2).all(|w| w[0] <= w[1]),
            "cut points must be non-decreasing"
        );
        Self { points }
    }

    /// The trivial partition of `[0, n)` into `m` intervals of
    /// near-uniform *length* (sizes differ by at most one).
    pub fn uniform(n: usize, m: usize) -> Self {
        assert!(m >= 1);
        // lint:allow(panic-reach) -- m >= 1 asserted above
        let points = (0..=m).map(|j| j * n / m).collect();
        Self { points }
    }

    /// Number of intervals.
    pub fn parts(&self) -> usize {
        self.points.len() - 1
    }

    /// Total number of items partitioned.
    pub fn n(&self) -> usize {
        // Constructors always materialize `0..=n`, so the vector is
        // non-empty; an (unreachable) empty cut set partitions nothing.
        self.points.last().copied().unwrap_or(0)
    }

    /// The half-open interval `[lo, hi)` of part `j`.
    pub fn interval(&self, j: usize) -> (usize, usize) {
        // lint:allow(panic-reach) -- API contract: j < parts() and
        // points.len() = parts() + 1, so j+1 is in bounds
        (self.points[j], self.points[j + 1])
    }

    /// The raw cut points (length `parts() + 1`).
    pub fn points(&self) -> &[usize] {
        &self.points
    }

    /// Iterator over `(lo, hi)` intervals.
    pub fn intervals(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Per-interval costs under the given oracle.
    pub fn loads<C: IntervalCost>(&self, c: &C) -> Vec<u64> {
        self.intervals().map(|(lo, hi)| c.cost(lo, hi)).collect()
    }

    /// Cost of the most loaded interval.
    pub fn bottleneck<C: IntervalCost>(&self, c: &C) -> u64 {
        self.intervals()
            .map(|(lo, hi)| c.cost(lo, hi))
            .max()
            .unwrap_or(0)
    }

    /// Checks that this is a partition of `[0, n)` into exactly `m` parts.
    pub fn validate(&self, n: usize, m: usize) -> Result<(), String> {
        if self.parts() != m {
            return Err(format!("expected {m} parts, found {}", self.parts()));
        }
        if self.n() != n {
            return Err(format!("expected last cut {n}, found {}", self.n()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;

    #[test]
    fn uniform_cuts_cover_everything() {
        let c = Cuts::uniform(10, 3);
        assert_eq!(c.points(), &[0, 3, 6, 10]);
        assert_eq!(c.parts(), 3);
        assert_eq!(c.n(), 10);
        assert!(c.validate(10, 3).is_ok());
    }

    #[test]
    fn uniform_more_parts_than_items_yields_empty_parts() {
        let c = Cuts::uniform(2, 5);
        assert_eq!(c.parts(), 5);
        assert_eq!(c.n(), 2);
        let total_len: usize = c.intervals().map(|(a, b)| b - a).sum();
        assert_eq!(total_len, 2);
    }

    #[test]
    fn loads_and_bottleneck() {
        let cost = PrefixCosts::from_loads(&[1u64, 2, 3, 4, 5]);
        let cuts = Cuts::new(vec![0, 2, 4, 5]);
        assert_eq!(cuts.loads(&cost), vec![3, 7, 5]);
        assert_eq!(cuts.bottleneck(&cost), 7);
        assert_eq!(cuts.interval(1), (2, 4));
    }

    #[test]
    fn validate_rejects_wrong_shape() {
        let cuts = Cuts::new(vec![0, 2, 4]);
        assert!(cuts.validate(4, 2).is_ok());
        assert!(cuts.validate(5, 2).is_err());
        assert!(cuts.validate(4, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn new_rejects_decreasing_points() {
        let _ = Cuts::new(vec![0, 3, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "first cut")]
    fn new_rejects_nonzero_start() {
        let _ = Cuts::new(vec![1, 2]);
    }
}
