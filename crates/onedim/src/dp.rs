//! Manne–Olstad style dynamic program for optimal 1D partitioning.
//!
//! `B[p][i] = min_k max(B[p-1][k], cost(k, i))` — one interval must end at
//! `i`, and the bottleneck is either that interval or the best partition of
//! the prefix (paper §2.2). Since `B[p-1][k]` is non-decreasing and
//! `cost(k, i)` non-increasing in `k`, the inner minimum is found by binary
//! search, giving `O(m n log n)` cost queries and `O(m n)` memory.
//!
//! This implementation is deliberately simple: it is the *oracle* against
//! which [`crate::nicol`] (the production optimal solver) is verified.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;
use crate::nicol::OneDimResult;

/// Computes an optimal partition of the whole sequence into `m` intervals.
pub fn dp_optimal<C: IntervalCost>(c: &C, m: usize) -> OneDimResult {
    assert!(m >= 1);
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::DpSweep);
    let n = c.len();
    let w = n + 1;
    // One flat `m × (n+1)` table, row p at offset p·w: table[p·w + i] is
    // the optimal bottleneck of [0, i) in p+1 parts. A single allocation
    // instead of one per DP row.
    let mut table = vec![0u64; m * w];
    for (i, slot) in table.iter_mut().take(w).enumerate() {
        *slot = c.cost(0, i);
    }
    rectpart_obs::add(rectpart_obs::Counter::DpCells, w as u64);
    for p in 1..m {
        // lint:allow(panic-reach) -- p < m, so the midpoint p*w < m*w = len
        let (head, tail) = table.split_at_mut(p * w);
        // lint:allow(panic-reach) -- head.len() = p*w >= (p-1)*w
        let prev = &head[(p - 1) * w..];
        for (i, slot) in tail.iter_mut().take(w).enumerate() {
            *slot = best_split(c, prev, i).1;
        }
        rectpart_obs::add(rectpart_obs::Counter::DpCells, w as u64);
    }
    rectpart_obs::work::charge((m * w) as u64);
    // The corner cell (m-1)·w + n is exactly the last cell of the flat
    // table (w = n+1), so `last()` reads it without an index proof.
    let bottleneck = table.last().copied().unwrap_or(0);
    // Reconstruct cuts right-to-left.
    let mut points = vec![0usize; m + 1];
    // lint:allow(panic-reach) -- points.len() = m+1 > m
    points[m] = n;
    let mut i = n;
    for p in (1..m).rev() {
        // lint:allow(panic-reach) -- 1 <= p < m, so p*w <= (m-1)*w < len
        let prev = &table[(p - 1) * w..p * w];
        let (k, _) = best_split(c, prev, i);
        // lint:allow(panic-reach) -- p < m < points.len()
        points[p] = k;
        i = k;
    }
    let cuts = Cuts::new(points);
    debug_assert_eq!(cuts.bottleneck(c), bottleneck);
    OneDimResult { cuts, bottleneck }
}

/// `argmin_k max(prev[k], cost(k, i))` via binary search on the crossing
/// of the two monotone sequences. Returns `(k, value)`.
fn best_split<C: IntervalCost>(c: &C, prev: &[u64], i: usize) -> (usize, u64) {
    // Smallest k with prev[k] >= cost(k, i).
    let (mut a, mut b) = (0usize, i);
    while a < b {
        let mid = a + (b - a) / 2;
        // lint:allow(panic-reach) -- mid < b <= i, and callers pass a full
        // DP row: prev.len() = n+1 > i
        if prev[mid] >= c.cost(mid, i) {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    // lint:allow(panic-reach) -- k <= i < prev.len() (callers pass a full
    // DP row of length n+1)
    let eval = |k: usize| prev[k].max(c.cost(k, i));
    let mut best = (a, eval(a));
    if a > 0 {
        let v = eval(a - 1);
        if v < best.1 {
            best = (a - 1, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;

    /// Exhaustive optimal bottleneck by enumerating all cut placements.
    fn brute(loads: &[u64], m: usize) -> u64 {
        let c = PrefixCosts::from_loads(loads);
        let n = loads.len();
        fn rec(c: &PrefixCosts, lo: usize, m: usize, n: usize) -> u64 {
            if m == 1 {
                return c.cost(lo, n);
            }
            (lo..=n)
                .map(|k| c.cost(lo, k).max(rec(c, k, m - 1, n)))
                .min()
                .unwrap()
        }
        rec(&c, 0, m, n)
    }

    #[test]
    fn matches_brute_force_on_small_arrays() {
        let cases: &[&[u64]] = &[
            &[3, 1, 4, 1, 5, 9, 2, 6],
            &[10, 1, 1, 1, 1, 1, 1, 10],
            &[0, 0, 7, 0, 0],
            &[1],
            &[5, 5, 5, 5],
            &[100, 1, 100],
        ];
        for loads in cases {
            let c = PrefixCosts::from_loads(loads);
            for m in 1..=loads.len().min(5) {
                let got = dp_optimal(&c, m);
                assert_eq!(got.bottleneck, brute(loads, m), "loads={loads:?} m={m}");
                assert!(got.cuts.validate(loads.len(), m).is_ok());
                assert_eq!(got.cuts.bottleneck(&c), got.bottleneck);
            }
        }
    }

    #[test]
    fn bottleneck_monotone_in_m() {
        let loads = [8u64, 2, 9, 4, 4, 7, 1, 1, 6, 3];
        let c = PrefixCosts::from_loads(&loads);
        let mut prev = u64::MAX;
        for m in 1..=10 {
            let b = dp_optimal(&c, m).bottleneck;
            assert!(b <= prev, "optimal bottleneck must not increase with m");
            prev = b;
        }
        assert_eq!(prev, 9); // never below the max element
    }

    #[test]
    fn lower_bounds_respected() {
        let loads = [8u64, 2, 9, 4, 4, 7, 1, 1, 6, 3];
        let c = PrefixCosts::from_loads(&loads);
        for m in 1..=10 {
            let b = dp_optimal(&c, m).bottleneck;
            assert!(b >= c.total() / m as u64);
            assert!(b >= c.max_unit_cost());
        }
    }

    #[test]
    fn more_parts_than_items_gives_max_element() {
        let c = PrefixCosts::from_loads(&[4u64, 9, 2]);
        let r = dp_optimal(&c, 7);
        assert_eq!(r.bottleneck, 9);
        assert!(r.cuts.validate(3, 7).is_ok());
    }
}
