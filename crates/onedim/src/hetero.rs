//! Heterogeneous-processor 1D partitioning.
//!
//! The paper's related work (Lastovetsky & Dongarra's constant
//! performance models) partitions *equal* tasks over *unequal*
//! processors; this module solves the combined problem the execution
//! simulator exposes: split a load array into consecutive intervals, one
//! per processor with relative speed `s_p`, minimizing the makespan
//! `max_p load_p / s_p`. Processor order is fixed (the chains-on-chains
//! setting): callers choose the ordering.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;

/// Result of a heterogeneous 1D partitioning run.
#[derive(Clone, Debug)]
pub struct HeteroResult {
    /// The partition (one interval per processor, in the given order).
    pub cuts: Cuts,
    /// Realized makespan `max_p load_p / s_p`.
    pub makespan: f64,
}

/// Greedy feasibility: processor `p` (in order) takes the maximal
/// interval with `cost ≤ t · s_p`. Returns the cuts if the sequence is
/// covered — by the usual exchange argument, greedy maximal prefixes are
/// feasible iff any assignment is.
pub fn hetero_probe<C: IntervalCost>(c: &C, speeds: &[f64], t: f64) -> Option<Cuts> {
    assert!(!speeds.is_empty());
    assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
    let n = c.len();
    let mut points = Vec::with_capacity(speeds.len() + 1);
    points.push(0usize);
    let mut lo = 0usize;
    for &s in speeds {
        if lo == n {
            points.push(n);
            continue;
        }
        let budget = t * s;
        if c.cost(lo, lo + 1) as f64 > budget {
            // Unlike the homogeneous probe, this is not fatal: a later,
            // faster processor may absorb the item — this processor just
            // takes the empty interval.
            points.push(lo);
            continue;
        }
        // Largest hi with cost(lo, hi) <= budget (monotone in hi).
        let (mut a, mut b) = (lo + 1, n);
        while a < b {
            let mid = a + (b - a).div_ceil(2);
            if c.cost(lo, mid) as f64 <= budget {
                a = mid;
            } else {
                b = mid - 1;
            }
        }
        points.push(a);
        lo = a;
    }
    if lo == n {
        Some(Cuts::new(points))
    } else {
        None
    }
}

/// Optimal (up to floating-point bisection) heterogeneous partition for
/// the given processor order: bisects the makespan between the
/// speed-weighted average and the serial-on-fastest upper bound, then
/// reports the realized makespan of the final probe.
///
/// ```
/// use rectpart_onedim::{hetero_optimal, PrefixCosts};
///
/// let cost = PrefixCosts::from_loads(&[1u64; 30]);
/// let r = hetero_optimal(&cost, &[2.0, 1.0]); // one processor twice as fast
/// assert!((r.makespan - 10.0).abs() < 1e-9);  // 20 items / 2.0 = 10 items / 1.0
/// ```
pub fn hetero_optimal<C: IntervalCost>(c: &C, speeds: &[f64]) -> HeteroResult {
    assert!(!speeds.is_empty());
    assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
    let total = c.total() as f64;
    let speed_sum: f64 = speeds.iter().sum();
    // lint:allow(panic-reach) -- f64 division is total (never panics)
    let mut lo = total / speed_sum; // perfect speed-proportional split
    let mut hi = {
        // Everything on the fastest processor always succeeds when it
        // comes first; as a general upper bound use total / min speed.
        let min_speed = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        // lint:allow(panic-reach) -- f64 division is total (never panics)
        total / min_speed
    }
    .max(lo);
    // A few extra iterations cost nothing; 128 halvings exhaust f64.
    for _ in 0..128 {
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
        let mid = lo + (hi - lo) / 2.0;
        if hetero_probe(c, speeds, mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // lint:allow(panic) -- invariant: the bisection never moves `hi` onto an infeasible makespan
    let cuts = hetero_probe(c, speeds, hi).expect("invariant: upper bound must stay feasible");
    let makespan = cuts
        .intervals()
        .zip(speeds)
        .map(|((a, b), &s)| c.cost(a, b) as f64 / s)
        .fold(0.0f64, f64::max);
    HeteroResult { cuts, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;
    use crate::nicol::nicol;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force optimal makespan for a fixed processor order.
    fn brute(loads: &[u64], speeds: &[f64]) -> f64 {
        let c = PrefixCosts::from_loads(loads);
        fn rec(c: &PrefixCosts, lo: usize, speeds: &[f64]) -> f64 {
            let n = c.len();
            if speeds.len() == 1 {
                return c.cost(lo, n) as f64 / speeds[0];
            }
            (lo..=n)
                .map(|k| (c.cost(lo, k) as f64 / speeds[0]).max(rec(c, k, &speeds[1..])))
                .fold(f64::INFINITY, f64::min)
        }
        rec(&c, 0, speeds)
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let n = rng.gen_range(1..12);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(1..40)).collect();
            let m = rng.gen_range(1..5usize);
            let speeds: Vec<f64> = (0..m).map(|_| rng.gen_range(1..4) as f64).collect();
            let c = PrefixCosts::from_loads(&loads);
            let got = hetero_optimal(&c, &speeds);
            let want = brute(&loads, &speeds);
            assert!(
                (got.makespan - want).abs() <= 1e-9 * want.max(1.0),
                "loads={loads:?} speeds={speeds:?}: {} vs {want}",
                got.makespan
            );
            assert!(got.cuts.validate(n, m).is_ok());
        }
    }

    #[test]
    fn equal_speeds_reduce_to_homogeneous() {
        let loads = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let c = PrefixCosts::from_loads(&loads);
        for m in 1..=5 {
            let homo = nicol(&c, m).bottleneck as f64;
            let het = hetero_optimal(&c, &vec![1.0; m]).makespan;
            assert!((het - homo).abs() < 1e-9, "m={m}: {het} vs {homo}");
        }
    }

    #[test]
    fn fast_processor_takes_more_load() {
        let loads = vec![1u64; 30];
        let c = PrefixCosts::from_loads(&loads);
        let r = hetero_optimal(&c, &[2.0, 1.0]);
        let (a0, b0) = r.cuts.interval(0);
        let (a1, b1) = r.cuts.interval(1);
        assert!(b0 - a0 > b1 - a1, "the 2x processor must take more items");
        assert!((r.makespan - 10.0).abs() < 1e-9); // 20/2 = 10/1
    }

    #[test]
    fn probe_semantics() {
        let c = PrefixCosts::from_loads(&[5u64, 5, 5]);
        // t=5 with speeds [1,1,1]: exactly one item each.
        let cuts = hetero_probe(&c, &[1.0, 1.0, 1.0], 5.0).unwrap();
        assert_eq!(cuts.points(), &[0, 1, 2, 3]);
        assert!(hetero_probe(&c, &[1.0, 1.0], 5.0).is_none());
        assert!(hetero_probe(&c, &[1.0, 1.0], 10.0).is_some());
        // A fast first processor can take everything.
        assert!(hetero_probe(&c, &[15.0, 1.0], 1.0).is_some());
    }

    #[test]
    fn zero_length_sequence() {
        let c = PrefixCosts::from_loads::<u64>(&[]);
        let r = hetero_optimal(&c, &[1.0, 2.0]);
        assert_eq!(r.makespan, 0.0);
        assert!(r.cuts.validate(0, 2).is_ok());
    }
}
