//! The Probe subroutine of Han, Narahari & Choi (1992).
//!
//! `Probe(B)` answers "can `[0, n)` be split into at most `m` intervals of
//! cost ≤ B?" by greedily assigning to every part the *maximal* interval
//! whose cost stays within the budget (binary search per part on the
//! monotone cost). Nicol's optimal algorithm is built on it.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;

/// Greedy feasibility test with solution reconstruction.
///
/// Returns the cuts of a partition of `[0, len)` into exactly `m` parts,
/// each of cost at most `budget`, if one exists (trailing parts may be
/// empty). Returns `None` if even the greedy maximal-interval strategy
/// cannot cover the sequence within `m` parts — by the classic exchange
/// argument this means no partition does.
pub fn probe<C: IntervalCost>(c: &C, m: usize, budget: u64) -> Option<Cuts> {
    assert!(m >= 1);
    rectpart_obs::incr(rectpart_obs::Counter::ProbeCalls);
    rectpart_obs::work::charge(1);
    let n = c.len();
    let mut points = Vec::with_capacity(m + 1);
    points.push(0usize);
    let mut lo = 0usize;
    for _ in 0..m {
        if lo == n {
            points.push(n);
            continue;
        }
        if c.cost(lo, lo + 1) > budget {
            return None; // single item exceeds the budget
        }
        let hi = c.upper_bisect(lo, lo + 1, n, budget);
        points.push(hi);
        lo = hi;
    }
    if lo == n {
        Some(Cuts::new(points))
    } else {
        None
    }
}

/// Allocation-free feasibility-only variant of [`probe`].
pub fn probe_feasible<C: IntervalCost>(c: &C, m: usize, budget: u64) -> bool {
    probe_suffix_feasible(c, 0, m, budget)
}

/// Feasibility of partitioning the suffix `[start, len)` into at most
/// `parts` intervals of cost ≤ `budget`. Used by Nicol's algorithm, which
/// repeatedly probes suffixes of the sequence.
pub fn probe_suffix_feasible<C: IntervalCost>(
    c: &C,
    start: usize,
    parts: usize,
    budget: u64,
) -> bool {
    rectpart_obs::incr(rectpart_obs::Counter::ProbeCalls);
    rectpart_obs::work::charge(1);
    let n = c.len();
    debug_assert!(start <= n);
    if parts == 0 {
        return start == n;
    }
    let mut lo = start;
    for _ in 0..parts {
        if lo == n {
            return true;
        }
        if c.cost(lo, lo + 1) > budget {
            return false;
        }
        lo = c.upper_bisect(lo, lo + 1, n, budget);
    }
    lo == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PrefixCosts;

    fn cost() -> PrefixCosts {
        PrefixCosts::from_loads(&[3u64, 1, 4, 1, 5, 9, 2, 6])
    }

    #[test]
    fn probe_succeeds_at_generous_budget() {
        let c = cost();
        let cuts = probe(&c, 3, 31).expect("total fits in one part");
        assert_eq!(cuts.parts(), 3);
        assert!(cuts.bottleneck(&c) <= 31);
        assert!(cuts.validate(8, 3).is_ok());
    }

    #[test]
    fn probe_fails_below_max_element() {
        let c = cost();
        assert!(probe(&c, 8, 8).is_none()); // element 9 cannot fit
        assert!(!probe_feasible(&c, 8, 8));
    }

    #[test]
    fn probe_tight_budget() {
        let c = cost();
        // Optimal bottleneck for m=3 is 11: [3,1,4,1]=9? greedy at 11:
        // [3,1,4,1]=9 then +5 would be 14 -> [3,1,4,1], [5,9]=14 > 11 so [5],
        // check real value via feasibility scan below.
        let mut b = 0;
        while !probe_feasible(&c, 3, b) {
            b += 1;
        }
        assert!(probe(&c, 3, b).is_some());
        assert!(probe(&c, 3, b - 1).is_none());
        // Bottleneck is at least the average ceil(31/3) = 11 and at least 9.
        assert!(b >= 11);
    }

    #[test]
    fn probe_exact_parts_with_padding() {
        let c = PrefixCosts::from_loads(&[1u64, 1]);
        let cuts = probe(&c, 4, 2).unwrap();
        assert_eq!(cuts.parts(), 4);
        assert_eq!(cuts.n(), 2);
    }

    #[test]
    fn probe_suffix_matches_prefix_probe() {
        let c = cost();
        for start in 0..=8 {
            for parts in 1..=4 {
                for budget in [5, 9, 12, 31] {
                    let direct = {
                        let mut lo = start;
                        let mut used = 0;
                        let mut ok = true;
                        while lo < 8 && used < parts {
                            if c.cost(lo, lo + 1) > budget {
                                ok = false;
                                break;
                            }
                            lo = c.upper_bisect(lo, lo + 1, 8, budget);
                            used += 1;
                        }
                        ok && lo == 8
                    };
                    assert_eq!(
                        probe_suffix_feasible(&c, start, parts, budget),
                        direct,
                        "start={start} parts={parts} budget={budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_zero_parts_only_covers_empty_suffix() {
        let c = cost();
        assert!(probe_suffix_feasible(&c, 8, 0, 0));
        assert!(!probe_suffix_feasible(&c, 7, 0, 100));
    }

    #[test]
    fn probe_budget_monotonicity() {
        let c = cost();
        let mut prev = false;
        for budget in 0..=31 {
            let now = probe_feasible(&c, 3, budget);
            assert!(!prev || now, "feasibility must be monotone in budget");
            prev = now;
        }
        assert!(prev);
    }
}
