//! Nicol's optimal 1D partitioning algorithm (Nicol 1994) with
//! Pınar–Aykanat style search-range bounding ("NicolPlus", paper §2.2).
//!
//! The algorithm walks the parts left to right. For part `j` starting at
//! `low` with `r = m − j` parts remaining, it binary-searches the smallest
//! end `e` such that `Probe` can cover the rest `[e, n)` with `r − 1`
//! intervals under budget `cost(low, e)`. That load is a *candidate*
//! bottleneck (optimal if the bottleneck part of an optimal solution is
//! part `j`); the largest `e` with an infeasible probe is safely allocated
//! to part `j`. The optimum is the minimum over all candidates, and a
//! final `Probe` reconstructs the cuts.
//!
//! Bounding: candidates below the suffix lower bound
//! `⌈cost(low, n) / r⌉` are provably infeasible, so the binary search is
//! clipped to start where the budget first reaches it; a recursive-
//! bisection incumbent allows an early exit when the global lower bound is
//! already attained.

use crate::cost::IntervalCost;
use crate::cuts::Cuts;
use crate::heuristics::{recursive_bisection, recursive_bisection_into};
use crate::probe::{probe, probe_feasible, probe_suffix_feasible};
use crate::scratch::SolveScratch;

/// Result of an (optimal or heuristic) 1D partitioning run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneDimResult {
    /// The partition.
    pub cuts: Cuts,
    /// Load of the most loaded interval.
    pub bottleneck: u64,
}

/// Marker error returned by the cancellation-aware solver entry points
/// ([`try_nicol_in`]) when the armed work-unit deadline
/// ([`rectpart_obs::cancel`]) fires at a candidate checkpoint. Carries
/// no payload: the caller maps it into its own error taxonomy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "1D solve cancelled at a work-meter checkpoint")
    }
}

impl std::error::Error for Cancelled {}

/// Optimal 1D partitioning of the whole sequence into `m` intervals.
///
/// `O((m log n)²)` cost queries in the worst case, far fewer with the
/// bound clipping. Works for any monotone [`IntervalCost`].
///
/// ```
/// use rectpart_onedim::{nicol, PrefixCosts};
///
/// let cost = PrefixCosts::from_loads(&[3u64, 1, 4, 1, 5, 9, 2, 6]);
/// let opt = nicol(&cost, 3);
/// assert_eq!(opt.bottleneck, 14); // e.g. [3,1,4,1] [5,9] [2,6] -> max 14
/// assert_eq!(opt.cuts.parts(), 3);
/// ```
pub fn nicol<C: IntervalCost>(c: &C, m: usize) -> OneDimResult {
    nicol_in(c, m, &mut SolveScratch::new())
}

/// [`nicol`] with caller-owned scratch: the recursive-bisection
/// incumbent is built inside `scratch`, so a loop that solves many 1D
/// problems (per-stripe solves, refinement sweeps) reuses one buffer
/// instead of allocating per call. Only the returned [`Cuts`] allocate.
pub fn nicol_in<C: IntervalCost>(c: &C, m: usize, scratch: &mut SolveScratch) -> OneDimResult {
    match try_nicol_in_polling(c, m, scratch, false) {
        Ok(r) => r,
        // With polling off the search never cancels; a valid one-part
        // fallback discharges the arm without a panic path.
        Err(Cancelled) => one_part_fallback(c, m),
    }
}

/// Cancellation-aware [`nicol_in`]: polls the armed work-unit deadline
/// ([`rectpart_obs::cancel`]) once per candidate part — the existing
/// serial work-meter checkpoint of the candidate walk — and returns
/// `Err(Cancelled)` instead of completing the solve. Identical to
/// [`nicol_in`] (bit-for-bit) whenever it returns `Ok`.
pub fn try_nicol_in<C: IntervalCost>(
    c: &C,
    m: usize,
    scratch: &mut SolveScratch,
) -> Result<OneDimResult, Cancelled> {
    try_nicol_in_polling(c, m, scratch, true)
}

/// All rectangles to the first part: the panic-free discharge of the
/// unreachable `Err` arm of the non-polling search.
fn one_part_fallback<C: IntervalCost>(c: &C, m: usize) -> OneDimResult {
    let n = c.len();
    let mut points = vec![n; m + 1];
    if let Some(first) = points.first_mut() {
        *first = 0;
    }
    OneDimResult {
        bottleneck: c.cost(0, n),
        cuts: Cuts::new(points),
    }
}

fn try_nicol_in_polling<C: IntervalCost>(
    c: &C,
    m: usize,
    scratch: &mut SolveScratch,
    poll: bool,
) -> Result<OneDimResult, Cancelled> {
    assert!(m >= 1);
    rectpart_obs::incr(rectpart_obs::Counter::NicolCalls);
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolSolve);
    let n = c.len();
    if n == 0 {
        return Ok(OneDimResult {
            cuts: Cuts::new(vec![0; m + 1]),
            bottleneck: 0,
        });
    }
    // Incumbent from the RB heuristic; enables the lb_global early exit.
    let incumbent = {
        let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolIncumbent);
        rb_incumbent(c, m, scratch)
    };
    let best = {
        let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolBisect);
        nicol_search_polling(c, m, incumbent, poll)?
    };
    let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolReconstruct);
    // lint:allow(panic) -- invariant: `best` was returned feasible by the search above; re-probing at it cannot fail
    let cuts = probe(c, m, best).expect("invariant: Nicol bottleneck must be feasible");
    debug_assert_eq!(cuts.bottleneck(c), best, "probe must attain the optimum");
    Ok(OneDimResult {
        cuts,
        bottleneck: best,
    })
}

/// [`nicol_in`] warm-started with an externally supplied incumbent —
/// the resident engine's seeding entry for re-solves after a small load
/// delta, where the previous solve's cut set is still a decent (and
/// feasible) solution.
///
/// `seed` must be the bottleneck of **some achievable** `m`-way
/// partition of `c` — typically the previous cuts re-evaluated under
/// the current cost (`prior.bottleneck(c)`). Any achievable bottleneck
/// is ≥ the optimum, and the candidate walk takes a `min` over the
/// incumbent and every candidate (the optimum is always among the
/// candidates), so the returned result is **bit-identical** to
/// [`nicol_in`]; a tight seed only arms the global-lower-bound early
/// exit sooner (fewer `NicolSearchSteps`).
///
/// A seed that is *not* achievable can poison the walk (the claimed
/// incumbent wins the `min` without being realisable); the final
/// reconstruction probe detects that, and this function falls back to
/// the cold [`nicol_in`] instead of returning an invalid cut set.
pub fn nicol_in_seeded<C: IntervalCost>(
    c: &C,
    m: usize,
    scratch: &mut SolveScratch,
    seed: u64,
) -> OneDimResult {
    assert!(m >= 1);
    rectpart_obs::incr(rectpart_obs::Counter::NicolCalls);
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolSolve);
    let n = c.len();
    if n == 0 {
        return OneDimResult {
            cuts: Cuts::new(vec![0; m + 1]),
            bottleneck: 0,
        };
    }
    let incumbent = {
        let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolIncumbent);
        rb_incumbent(c, m, scratch).min(seed)
    };
    let best = {
        let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolBisect);
        // Never cancels with polling off; the RB incumbent is feasible.
        nicol_search_polling(c, m, incumbent, false).unwrap_or(incumbent)
    };
    let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolReconstruct);
    match probe(c, m, best) {
        Some(cuts) => {
            debug_assert_eq!(cuts.bottleneck(c), best, "probe must attain the optimum");
            OneDimResult {
                cuts,
                bottleneck: best,
            }
        }
        // The seed violated its contract (claimed a bottleneck nothing
        // achieves): discard it and solve cold.
        None => nicol_in(c, m, scratch),
    }
}

/// Bottleneck-only variant of [`nicol`] for the stripe-cost hot loops:
/// skips the final reconstruction probe and builds its recursive-
/// bisection incumbent inside `scratch` instead of allocating, so a
/// warmed-up solve touches the heap only when a buffer must grow.
/// Returns exactly `nicol(c, m).bottleneck`.
pub fn nicol_bottleneck<C: IntervalCost>(c: &C, m: usize, scratch: &mut SolveScratch) -> u64 {
    assert!(m >= 1);
    rectpart_obs::incr(rectpart_obs::Counter::NicolCalls);
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolSolve);
    let n = c.len();
    if n == 0 {
        return 0;
    }
    let incumbent = {
        let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolIncumbent);
        rb_incumbent(c, m, scratch)
    };
    let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolBisect);
    // Never cancels with polling off; the incumbent is a feasible value.
    nicol_search_polling(c, m, incumbent, false).unwrap_or(incumbent)
}

/// Recursive-bisection incumbent bottleneck, built in `scratch`.
fn rb_incumbent<C: IntervalCost>(c: &C, m: usize, scratch: &mut SolveScratch) -> u64 {
    let points = scratch.points(m + 1);
    recursive_bisection_into(c, m, points);
    points
        .windows(2)
        .map(|w| c.cost(w[0], w[1]))
        .max()
        .unwrap_or(0)
}

/// The candidate walk shared by [`nicol`] and [`nicol_bottleneck`]:
/// returns the optimal bottleneck given a feasible `incumbent` value.
/// With `poll` set, the armed work-unit deadline is checked once per
/// candidate part (the same granularity the meter is charged at); with
/// it clear, the walk never returns `Err`.
fn nicol_search_polling<C: IntervalCost>(
    c: &C,
    m: usize,
    incumbent: u64,
    poll: bool,
) -> Result<u64, Cancelled> {
    let n = c.len();
    let lb_global = c.partition_lower_bound(0, m).max(c.max_unit_cost());
    let mut best = incumbent;
    // Accumulated locally; charged to the work meter once on return.
    let mut steps = 0u64;
    let mut low = 0usize;
    for j in 0..m {
        if poll && rectpart_obs::cancel::requested() {
            // Charge the steps taken so far: a cancelled solve's charges
            // are discarded wholesale by the resume protocol, but the
            // meter must never under-report inside this process.
            rectpart_obs::work::charge(steps + 1);
            return Err(Cancelled);
        }
        if best == lb_global || low == n {
            break;
        }
        let r = m - j;
        if r == 1 {
            best = best.min(c.cost(low, n));
            break;
        }
        // Budgets below the suffix lower bound cannot cover the suffix
        // with r parts (sound only for additive costs, where the bound is
        // the suffix average; 0 otherwise), so the probe predicate is
        // provably false there: clip the search.
        let lb_suffix = c.partition_lower_bound(low, r);
        let elo = c.lower_bisect(low, low, n, lb_suffix);
        // Smallest e with Probe(cost(low, e)) feasible on [e, n) in r-1 parts.
        let (mut a, mut b) = (elo, n);
        while a < b {
            rectpart_obs::incr(rectpart_obs::Counter::NicolSearchSteps);
            steps += 1;
            let mid = a + (b - a) / 2;
            if probe_suffix_feasible(c, mid, r - 1, c.cost(low, mid)) {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        let candidate = c.cost(low, a);
        best = best.min(candidate);
        // Largest infeasible end is a-1: allocate it to part j.
        low = if a > low { a - 1 } else { low };
    }
    rectpart_obs::work::charge(steps + 1);
    Ok(best)
}

/// Branch-and-bound variant: returns `None` without computing the exact
/// optimum when it provably exceeds `cutoff` (a single probe decides), and
/// the exact [`nicol`] result otherwise. Used by the `JAG-M-OPT` dynamic
/// program, which can discard stripe subproblems whose bottleneck already
/// exceeds the incumbent solution.
pub fn nicol_bounded<C: IntervalCost>(c: &C, m: usize, cutoff: u64) -> Option<OneDimResult> {
    if !probe_feasible(c, m, cutoff) {
        return None;
    }
    Some(nicol(c, m))
}

/// The folklore *parametric bisection* optimal algorithm: binary search
/// the bottleneck value over `[lower bound, RB incumbent]` with one
/// [`probe`] per step. `O(m log n · log(total))` cost queries — usually
/// slower than [`nicol`] (whose candidate values are interval loads, not
/// all integers) but trivially correct, so the test-suite uses it as a
/// third independent optimal solver. Exact for any monotone cost.
pub fn parametric_optimal<C: IntervalCost>(c: &C, m: usize) -> OneDimResult {
    assert!(m >= 1);
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::ParametricSolve);
    let n = c.len();
    if n == 0 {
        return OneDimResult {
            cuts: Cuts::new(vec![0; m + 1]),
            bottleneck: 0,
        };
    }
    let mut lo = c.partition_lower_bound(0, m).max(c.max_unit_cost());
    let mut hi = recursive_bisection(c, m).bottleneck(c);
    // Accumulated locally; charged to the work meter once after the loop.
    let mut steps = 0u64;
    while lo < hi {
        rectpart_obs::incr(rectpart_obs::Counter::ParametricSteps);
        steps += 1;
        // lint:allow(checked-arith) -- lo <= hi in the loop, so
        // lo + (hi-lo)/2 <= hi: no overflow possible
        let mid = lo + (hi - lo) / 2;
        if probe_feasible(c, m, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    rectpart_obs::work::charge(steps + 1);
    // lint:allow(panic) -- invariant: bisection keeps `hi` feasible at every step, starting from a constructed feasible bound
    let cuts = probe(c, m, hi).expect("invariant: bisection result must be feasible");
    OneDimResult {
        cuts,
        bottleneck: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FnCost, PrefixCosts};
    use crate::dp::dp_optimal;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_dp_on_fixed_cases() {
        let cases: &[&[u64]] = &[
            &[3, 1, 4, 1, 5, 9, 2, 6],
            &[10, 1, 1, 1, 1, 1, 1, 10],
            &[0, 0, 7, 0, 0],
            &[1],
            &[5, 5, 5, 5],
            &[100, 1, 100],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        ];
        for loads in cases {
            let c = PrefixCosts::from_loads(loads);
            for m in 1..=loads.len() + 2 {
                let a = nicol(&c, m);
                let b = dp_optimal(&c, m.min(loads.len().max(1)));
                if m <= loads.len() {
                    assert_eq!(a.bottleneck, b.bottleneck, "loads={loads:?} m={m}");
                }
                assert!(a.cuts.validate(loads.len(), m).is_ok());
                assert_eq!(a.cuts.bottleneck(&c), a.bottleneck);
            }
        }
    }

    #[test]
    fn matches_dp_on_random_arrays() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..60 {
            let n = rng.gen_range(1..40);
            let loads: Vec<u64> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        0
                    } else {
                        rng.gen_range(1..100)
                    }
                })
                .collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [1, 2, 3, 5, 8] {
                let a = nicol(&c, m).bottleneck;
                let b = dp_optimal(&c, m).bottleneck;
                assert_eq!(a, b, "trial={trial} loads={loads:?} m={m}");
            }
        }
    }

    #[test]
    fn works_on_non_additive_monotone_cost() {
        // max-over-two-stripes cost, as used by RECT-NICOL refinement.
        let s1 = [4u64, 1, 1, 8, 2, 2];
        let s2 = [1u64, 9, 1, 1, 1, 5];
        let p1 = PrefixCosts::from_loads(&s1);
        let p2 = PrefixCosts::from_loads(&s2);
        let c = FnCost::new(6, move |lo, hi| p1.cost(lo, hi).max(p2.cost(lo, hi)));
        for m in 1..=6 {
            let r = nicol(&c, m);
            assert!(r.cuts.validate(6, m).is_ok());
            // brute force over all cut placements
            let brute = brute_monotone(&c, m);
            assert_eq!(r.bottleneck, brute, "m={m}");
        }
    }

    fn brute_monotone<C: IntervalCost>(c: &C, m: usize) -> u64 {
        fn rec<C: IntervalCost>(c: &C, lo: usize, m: usize) -> u64 {
            let n = c.len();
            if m == 1 {
                return c.cost(lo, n);
            }
            (lo..=n)
                .map(|k| c.cost(lo, k).max(rec(c, k, m - 1)))
                .min()
                .unwrap()
        }
        rec(c, 0, m)
    }

    #[test]
    fn empty_sequence() {
        let c = PrefixCosts::from_loads::<u64>(&[]);
        let r = nicol(&c, 3);
        assert_eq!(r.bottleneck, 0);
        assert_eq!(r.cuts.parts(), 3);
    }

    #[test]
    fn bottleneck_variant_matches_full_solver() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = crate::scratch::SolveScratch::new();
        for _ in 0..40 {
            let n = rng.gen_range(0..50);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..90)).collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [1, 2, 3, 7, 12] {
                assert_eq!(
                    nicol_bottleneck(&c, m, &mut scratch),
                    nicol(&c, m).bottleneck,
                    "loads={loads:?} m={m}"
                );
            }
        }
        // And over a non-additive monotone oracle.
        let p1 = PrefixCosts::from_loads(&[4u64, 1, 9, 2, 2, 7]);
        let p2 = PrefixCosts::from_loads(&[1u64, 8, 1, 3, 5, 1]);
        let c = FnCost::new(6, move |lo, hi| p1.cost(lo, hi).max(p2.cost(lo, hi)));
        for m in 1..=6 {
            assert_eq!(
                nicol_bottleneck(&c, m, &mut scratch),
                nicol(&c, m).bottleneck
            );
        }
    }

    #[test]
    fn bounded_rejects_when_cutoff_below_optimum() {
        let c = PrefixCosts::from_loads(&[5u64, 5, 5, 5]);
        let opt = nicol(&c, 2).bottleneck;
        assert_eq!(opt, 10);
        assert!(nicol_bounded(&c, 2, 9).is_none());
        assert_eq!(nicol_bounded(&c, 2, 10).unwrap().bottleneck, 10);
        assert_eq!(nicol_bounded(&c, 2, 100).unwrap().bottleneck, 10);
    }

    #[test]
    fn parametric_bisection_matches_nicol() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = rng.gen_range(1..60);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..80)).collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [1, 2, 4, 9] {
                assert_eq!(
                    parametric_optimal(&c, m).bottleneck,
                    nicol(&c, m).bottleneck,
                    "loads={loads:?} m={m}"
                );
            }
        }
        // And over a non-additive monotone oracle.
        let p1 = PrefixCosts::from_loads(&[4u64, 1, 9, 2, 2, 7]);
        let p2 = PrefixCosts::from_loads(&[1u64, 8, 1, 3, 5, 1]);
        let c = FnCost::new(6, move |lo, hi| p1.cost(lo, hi).max(p2.cost(lo, hi)));
        for m in 1..=6 {
            assert_eq!(
                parametric_optimal(&c, m).bottleneck,
                nicol(&c, m).bottleneck
            );
        }
    }

    #[test]
    fn seeded_is_bit_identical_for_any_achievable_seed() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut scratch = crate::scratch::SolveScratch::new();
        for _ in 0..40 {
            let n = rng.gen_range(1..50);
            let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..90)).collect();
            let c = PrefixCosts::from_loads(&loads);
            for m in [1, 2, 3, 6, 11] {
                let cold = nicol(&c, m);
                // Seeds spanning the achievable range: the optimum itself,
                // a mediocre heuristic bottleneck, and the trivial one-part
                // solution (all achievable by construction).
                for seed in [
                    cold.bottleneck,
                    recursive_bisection(&c, m).bottleneck(&c),
                    c.cost(0, n),
                ] {
                    let warm = nicol_in_seeded(&c, m, &mut scratch, seed);
                    assert_eq!(warm, cold, "loads={loads:?} m={m} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn seeded_survives_a_lying_seed() {
        let c = PrefixCosts::from_loads(&[5u64, 5, 5, 5]);
        let cold = nicol(&c, 2);
        assert_eq!(cold.bottleneck, 10);
        // Claimed bottleneck 3 is unachievable; the fallback must still
        // return the true optimum with valid cuts.
        let warm = nicol_in_seeded(&c, 2, &mut crate::scratch::SolveScratch::new(), 3);
        assert_eq!(warm, cold);
    }

    #[test]
    fn single_part() {
        let c = PrefixCosts::from_loads(&[2u64, 3, 4]);
        let r = nicol(&c, 1);
        assert_eq!(r.bottleneck, 9);
        assert_eq!(r.cuts.points(), &[0, 3]);
    }

    #[test]
    fn all_zero_loads() {
        let c = PrefixCosts::from_loads(&[0u64; 10]);
        let r = nicol(&c, 4);
        assert_eq!(r.bottleneck, 0);
        assert!(r.cuts.validate(10, 4).is_ok());
    }
}
