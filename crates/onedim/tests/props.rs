//! Property-based tests for the 1D substrate: all three optimal solvers
//! agree, heuristics are bounded, the refined heuristics never regress,
//! and the heterogeneous solver is sane.

use proptest::collection::vec;
use proptest::prelude::*;
use rectpart_onedim::{
    direct_cut, direct_cut_refined, dp_optimal, hetero_optimal, nicol, parametric_optimal,
    probe_feasible, probe_feasible_sliced, recursive_bisection, IntervalCost, PrefixCosts,
};

fn arb_loads() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..300, 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn three_optimal_solvers_agree(loads in arb_loads(), m in 1usize..10) {
        let c = PrefixCosts::from_loads(&loads);
        let a = nicol(&c, m).bottleneck;
        let b = dp_optimal(&c, m).bottleneck;
        let d = parametric_optimal(&c, m).bottleneck;
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, d);
    }

    #[test]
    fn refined_dc_between_dc_and_optimal(loads in arb_loads(), m in 1usize..10) {
        let c = PrefixCosts::from_loads(&loads);
        let dc = direct_cut(&c, m).bottleneck(&c);
        let h2 = direct_cut_refined(&c, m).bottleneck(&c);
        let opt = nicol(&c, m).bottleneck;
        prop_assert!(h2 <= dc);
        prop_assert!(h2 >= opt);
    }

    #[test]
    fn sliced_probe_agrees_with_plain(loads in arb_loads(), m in 1usize..8) {
        let c = PrefixCosts::from_loads(&loads);
        let opt = nicol(&c, m).bottleneck;
        for budget in [opt.saturating_sub(1), opt, opt + 7] {
            prop_assert_eq!(
                probe_feasible_sliced(&c, m, budget),
                probe_feasible(&c, m, budget)
            );
        }
    }

    #[test]
    fn rb_guarantee(loads in arb_loads(), m in 1usize..10) {
        let c = PrefixCosts::from_loads(&loads);
        let rb = recursive_bisection(&c, m).bottleneck(&c);
        prop_assert!(rb <= c.total() / m as u64 + c.max_unit_cost() + 1);
    }

    #[test]
    fn hetero_generalizes_homogeneous(loads in arb_loads(), m in 1usize..6) {
        let c = PrefixCosts::from_loads(&loads);
        let homo = nicol(&c, m).bottleneck as f64;
        let het = hetero_optimal(&c, &vec![1.0; m]).makespan;
        prop_assert!((het - homo).abs() <= 1e-6 * homo.max(1.0));
    }

    #[test]
    fn hetero_makespan_monotone_in_speed(loads in arb_loads()) {
        let c = PrefixCosts::from_loads(&loads);
        let slow = hetero_optimal(&c, &[1.0, 1.0]).makespan;
        let fast = hetero_optimal(&c, &[2.0, 2.0]).makespan;
        prop_assert!(fast <= slow + 1e-9);
    }
}
