//! The remaining 3D generalizations: iterative rectilinear refinement
//! (`RECT-NICOL-3D`) and the relaxed hierarchical heuristic
//! (`HIER-RELAXED-3D`).
//!
//! Both are direct lifts of their 2D counterparts. The rectilinear
//! refinement showcases the generic-interval-cost design: fixing the cut
//! sets of two axes, the third axis is re-partitioned *optimally* by
//! Nicol's algorithm under the max-over-tubes interval cost — exactly the
//! paper's §3.1 refinement with one more dimension in the maximum.

use rectpart_onedim::{nicol, Cuts, FnCost};

use crate::geometry::{Axis3, Box3};
use crate::prefix::PrefixSum3D;
use crate::solution::{Partition3, Partitioner3};

/// `RECT-NICOL-3D`: iterative refinement of a P×Q×R grid. Each round
/// re-partitions one axis optimally against the max-over-tubes cost of
/// the other two axes' fixed cuts, cycling through the axes until the
/// grid bottleneck stops improving.
#[derive(Clone, Debug)]
pub struct RectNicol3 {
    /// Explicit grid; defaults to the most cubic factorization of `m`.
    pub grid: Option<(usize, usize, usize)>,
    /// Cap on full refinement rounds (one round = all three axes).
    pub max_iters: usize,
}

impl Default for RectNicol3 {
    fn default() -> Self {
        Self {
            grid: None,
            max_iters: 10,
        }
    }
}

impl Partitioner3 for RectNicol3 {
    fn name(&self) -> String {
        "RECT-NICOL-3D".into()
    }

    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3 {
        assert!(m >= 1);
        let (p, q, r) = self
            .grid
            .unwrap_or_else(|| crate::algorithms::cubic_dims(m));
        assert!(p * q * r <= m);
        let (nx, ny, nz) = pfx.dims();
        let mut cuts = [
            Cuts::uniform(nx, p),
            Cuts::uniform(ny, q),
            Cuts::uniform(nz, r),
        ];
        let parts = [p, q, r];
        let mut best = grid_lmax3(pfx, &cuts);
        for _ in 0..self.max_iters {
            let mut next = cuts.clone();
            for (ai, axis) in Axis3::ALL.into_iter().enumerate() {
                next[ai] = refine_axis(pfx, &next, axis, parts[ai]);
            }
            let lmax = grid_lmax3(pfx, &next);
            if lmax >= best {
                break;
            }
            best = lmax;
            cuts = next;
        }
        let mut boxes = Vec::with_capacity(p * q * r);
        for (x0, x1) in cuts[0].intervals() {
            for (y0, y1) in cuts[1].intervals() {
                for (z0, z1) in cuts[2].intervals() {
                    boxes.push(Box3::new(x0, x1, y0, y1, z0, z1));
                }
            }
        }
        Partition3::with_parts(boxes, m)
    }
}

/// Optimal 1D re-partition of `axis` under the max-over-tubes cost of
/// the other two axes' cuts.
fn refine_axis(pfx: &PrefixSum3D, cuts: &[Cuts; 3], axis: Axis3, parts: usize) -> Cuts {
    let (a1, a2) = axis.others();
    let (i1, i2) = (axis_index(a1), axis_index(a2));
    let tubes: Vec<((usize, usize), (usize, usize))> = cuts[i1]
        .intervals()
        .flat_map(|u| cuts[i2].intervals().map(move |v| (u, v)))
        .collect();
    let n = axis_len(pfx, axis);
    let cost = FnCost::new(n, move |lo, hi| {
        tubes
            .iter()
            .map(|&((u0, u1), (v0, v1))| tube_load(pfx, axis, lo, hi, u0, u1, v0, v1))
            .max()
            .unwrap_or(0)
    });
    nicol(&cost, parts).cuts
}

fn axis_index(axis: Axis3) -> usize {
    match axis {
        Axis3::X => 0,
        Axis3::Y => 1,
        Axis3::Z => 2,
    }
}

fn axis_len(pfx: &PrefixSum3D, axis: Axis3) -> usize {
    let (nx, ny, nz) = pfx.dims();
    match axis {
        Axis3::X => nx,
        Axis3::Y => ny,
        Axis3::Z => nz,
    }
}

/// Load of the box spanning `[lo, hi)` on `axis` and the given intervals
/// on its two other axes (in `Axis3::others` order).
#[allow(clippy::too_many_arguments)]
fn tube_load(
    pfx: &PrefixSum3D,
    axis: Axis3,
    lo: usize,
    hi: usize,
    u0: usize,
    u1: usize,
    v0: usize,
    v1: usize,
) -> u64 {
    match axis {
        Axis3::X => pfx.load6(lo, hi, u0, u1, v0, v1),
        Axis3::Y => pfx.load6(u0, u1, lo, hi, v0, v1),
        Axis3::Z => pfx.load6(u0, u1, v0, v1, lo, hi),
    }
}

fn grid_lmax3(pfx: &PrefixSum3D, cuts: &[Cuts; 3]) -> u64 {
    let mut best = 0;
    for (x0, x1) in cuts[0].intervals() {
        for (y0, y1) in cuts[1].intervals() {
            for (z0, z1) in cuts[2].intervals() {
                best = best.max(pfx.load6(x0, x1, y0, y1, z0, z1));
            }
        }
    }
    best
}

/// `HIER-RELAXED-3D`: at every node choose the axis, the cut position and
/// the processor split minimizing `max(L1/j, L2/(m−j))`, with the same
/// balanced-outward tie stabilization as the 2D implementation.
#[derive(Clone, Debug)]
pub struct HierRelaxed3 {
    /// Relative improvement a less balanced split must show (see the 2D
    /// `HierRelaxed::balance_bias`).
    pub balance_bias: f64,
}

impl Default for HierRelaxed3 {
    fn default() -> Self {
        Self { balance_bias: 1e-3 }
    }
}

impl Partitioner3 for HierRelaxed3 {
    fn name(&self) -> String {
        "HIER-RELAXED-3D-LOAD".into()
    }

    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3 {
        assert!(m >= 1);
        let (nx, ny, nz) = pfx.dims();
        let mut boxes = Vec::with_capacity(m);
        self.recurse(pfx, Box3::new(0, nx, 0, ny, 0, nz), m, &mut boxes);
        debug_assert_eq!(boxes.len(), m);
        Partition3::new(boxes)
    }
}

impl HierRelaxed3 {
    fn recurse(&self, pfx: &PrefixSum3D, cuboid: Box3, m: usize, out: &mut Vec<Box3>) {
        if m == 1 {
            out.push(cuboid);
            return;
        }
        let candidates: Vec<Axis3> = Axis3::ALL
            .into_iter()
            .filter(|&a| {
                let (lo, hi) = cuboid.extent(a);
                hi - lo >= 2
            })
            .collect();
        if candidates.is_empty() {
            out.push(cuboid);
            out.extend(std::iter::repeat_n(Box3::EMPTY, m - 1));
            return;
        }
        let mut best: Option<(f64, Axis3, usize, usize)> = None;
        for &axis in &candidates {
            let (lo, hi) = cuboid.extent(axis);
            for step in 0..m - 1 {
                let half = m / 2;
                let j = if step % 2 == 0 {
                    half - step / 2
                } else {
                    half + step.div_ceil(2)
                };
                if j == 0 || j >= m {
                    continue;
                }
                let (mut a, mut b) = (lo, hi);
                while a < b {
                    let mid = a + (b - a) / 2;
                    let (first, second) = cuboid.split(axis, mid);
                    if pfx.load(&first) as u128 * (m - j) as u128
                        >= pfx.load(&second) as u128 * j as u128
                    {
                        b = mid;
                    } else {
                        a = mid + 1;
                    }
                }
                for at in [a, a.saturating_sub(1).max(lo)] {
                    let (first, second) = cuboid.split(axis, at);
                    let key = (pfx.load(&first) as f64 / j as f64)
                        .max(pfx.load(&second) as f64 / (m - j) as f64);
                    if best.is_none_or(|(bk, ..)| key < bk * (1.0 - self.balance_bias)) {
                        best = Some((key, axis, at, j));
                    }
                }
            }
        }
        let (_, axis, at, j) = best.unwrap();
        let (first, second) = cuboid.split(axis, at);
        self.recurse(pfx, first, j, out);
        self.recurse(pfx, second, m - j, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::RectUniform3;
    use crate::synthetic::{peak3, uniform3};
    use crate::volume::LoadVolume;

    #[test]
    fn rect_nicol3_tiles_and_beats_uniform() {
        let v = peak3(14, 12, 10, 3);
        let pfx = PrefixSum3D::new(&v);
        for m in [8, 12, 27] {
            let refined = RectNicol3::default().partition(&pfx, m);
            assert!(refined.validate(&pfx).is_ok(), "m={m}");
            let grid = RectUniform3::default().partition(&pfx, m);
            assert!(
                refined.lmax(&pfx) <= grid.lmax(&pfx),
                "m={m}: refinement must not lose to the uniform grid"
            );
        }
    }

    #[test]
    fn hier_relaxed3_tiles_and_balances() {
        let v = peak3(12, 12, 12, 7);
        let pfx = PrefixSum3D::new(&v);
        for m in [1, 3, 7, 16, 27] {
            let p = HierRelaxed3::default().partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok(), "m={m}");
            assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
        }
    }

    #[test]
    fn relaxed3_perfect_on_uniform_cube() {
        let v = uniform3(8, 8, 8, 1.0, 1);
        let pfx = PrefixSum3D::new(&v);
        let p = HierRelaxed3::default().partition(&pfx, 8);
        assert_eq!(p.lmax(&pfx), pfx.total() / 8);
    }

    #[test]
    fn degenerate_volume_dimensions() {
        // A 1-cell-thick slab reduces the problem to 2D; both algorithms
        // must still tile it.
        let v = LoadVolume::from_fn(1, 16, 16, |_, y, z| (y * z) as u32 + 1);
        let pfx = PrefixSum3D::new(&v);
        for m in [4, 9] {
            assert!(RectNicol3::default()
                .partition(&pfx, m)
                .validate(&pfx)
                .is_ok());
            assert!(HierRelaxed3::default()
                .partition(&pfx, m)
                .validate(&pfx)
                .is_ok());
        }
    }

    #[test]
    fn explicit_grid() {
        let v = uniform3(9, 9, 9, 1.4, 2);
        let pfx = PrefixSum3D::new(&v);
        let algo = RectNicol3 {
            grid: Some((1, 2, 3)),
            ..RectNicol3::default()
        };
        let p = algo.partition(&pfx, 6);
        assert!(p.validate(&pfx).is_ok());
        assert_eq!(p.active_parts(), 6);
    }
}
