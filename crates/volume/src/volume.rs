//! Dense 3D load volumes.

use rectpart_core::LoadMatrix;

use crate::geometry::{Axis3, Box3};

/// A dense `nx × ny × nz` volume of non-negative cell loads, `x` slowest.
///
/// ```
/// use rectpart_volume::{Axis3, LoadVolume};
///
/// let v = LoadVolume::from_fn(2, 3, 4, |_, _, _| 1);
/// assert_eq!(v.total(), 24);
/// // The paper's PIC-MAG preprocessing: accumulate one dimension away.
/// let m = v.flatten(Axis3::Z);
/// assert_eq!((m.rows(), m.cols()), (2, 3));
/// assert_eq!(m.get(0, 0), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadVolume {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<u32>,
}

impl LoadVolume {
    /// Builds a volume from `x`-major data.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == nx * ny * nz`.
    pub fn from_vec(nx: usize, ny: usize, nz: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "volume data length mismatch");
        Self { nx, ny, nz, data }
    }

    /// Builds a volume by evaluating `f(x, y, z)` on every cell.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> u32,
    ) -> Self {
        let mut data = Vec::with_capacity(nx * ny * nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    data.push(f(x, y, z));
                }
            }
        }
        Self { nx, ny, nz, data }
    }

    /// Dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Extent along an axis.
    pub fn len(&self, axis: Axis3) -> usize {
        match axis {
            Axis3::X => self.nx,
            Axis3::Y => self.ny,
            Axis3::Z => self.nz,
        }
    }

    /// Cell load at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> u32 {
        self.data[(x * self.ny + y) * self.nz + z]
    }

    /// Sum of all cell loads.
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| v as u64).sum()
    }

    /// Largest cell load.
    pub fn max_cell(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Naive O(volume) box load — the test oracle for
    /// [`crate::PrefixSum3D`].
    pub fn load_naive(&self, b: &Box3) -> u64 {
        let mut sum = 0u64;
        for x in b.x0..b.x1 {
            for y in b.y0..b.y1 {
                for z in b.z0..b.z1 {
                    sum += self.get(x, y, z) as u64;
                }
            }
        }
        sum
    }

    /// Accumulates the volume along `axis` into a 2D matrix — exactly the
    /// paper's PIC-MAG preprocessing ("the number of particles are
    /// accumulated among one dimension to get a 2D instance", §4.1). The
    /// remaining axes map to (rows, cols) in [`Axis3::others`] order.
    ///
    /// # Panics
    ///
    /// Panics if a column's accumulated load exceeds `u32::MAX`.
    pub fn flatten(&self, axis: Axis3) -> LoadMatrix {
        self.flatten_range(axis, 0, self.len(axis))
    }

    /// [`LoadVolume::flatten`] restricted to the slab `[lo, hi)` along
    /// `axis` — the per-slab projection used by the 3D jagged
    /// partitioner.
    pub fn flatten_range(&self, axis: Axis3, lo: usize, hi: usize) -> LoadMatrix {
        assert!(lo <= hi && hi <= self.len(axis));
        let (row_axis, col_axis) = axis.others();
        let rows = self.len(row_axis);
        let cols = self.len(col_axis);
        LoadMatrix::from_fn(rows, cols, |r, c| {
            let mut sum = 0u64;
            for d in lo..hi {
                let (x, y, z) = arrange(axis, d, row_axis, r, col_axis, c);
                sum += self.get(x, y, z) as u64;
            }
            u32::try_from(sum).expect("accumulated column exceeds u32")
        })
    }
}

/// Reassembles `(x, y, z)` from per-axis coordinates.
fn arrange(
    a1: Axis3,
    v1: usize,
    a2: Axis3,
    v2: usize,
    a3: Axis3,
    v3: usize,
) -> (usize, usize, usize) {
    let mut coords = [0usize; 3];
    for (axis, v) in [(a1, v1), (a2, v2), (a3, v3)] {
        let idx = match axis {
            Axis3::X => 0,
            Axis3::Y => 1,
            Axis3::Z => 2,
        };
        coords[idx] = v;
    }
    (coords[0], coords[1], coords[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = LoadVolume::from_fn(2, 3, 4, |x, y, z| (x * 100 + y * 10 + z) as u32);
        assert_eq!(v.dims(), (2, 3, 4));
        assert_eq!(v.get(1, 2, 3), 123);
        assert_eq!(v.len(Axis3::Y), 3);
    }

    #[test]
    fn flatten_sums_along_each_axis() {
        let v = LoadVolume::from_fn(2, 3, 4, |_, _, _| 1);
        let fx = v.flatten(Axis3::X);
        assert_eq!((fx.rows(), fx.cols()), (3, 4));
        assert!(fx.data().iter().all(|&c| c == 2));
        let fy = v.flatten(Axis3::Y);
        assert_eq!((fy.rows(), fy.cols()), (2, 4));
        assert!(fy.data().iter().all(|&c| c == 3));
        let fz = v.flatten(Axis3::Z);
        assert_eq!((fz.rows(), fz.cols()), (2, 3));
        assert!(fz.data().iter().all(|&c| c == 4));
    }

    #[test]
    fn flatten_preserves_total() {
        let v = LoadVolume::from_fn(3, 4, 5, |x, y, z| (x + 2 * y + 3 * z) as u32);
        for axis in Axis3::ALL {
            assert_eq!(v.flatten(axis).total(), v.total());
        }
    }

    #[test]
    fn naive_box_load() {
        let v = LoadVolume::from_fn(3, 3, 3, |x, y, z| (x + y + z) as u32);
        assert_eq!(v.load_naive(&Box3::new(0, 3, 0, 3, 0, 3)), v.total());
        assert_eq!(v.load_naive(&Box3::new(1, 2, 1, 2, 1, 2)), 3);
        assert_eq!(v.load_naive(&Box3::EMPTY), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_length() {
        let _ = LoadVolume::from_vec(2, 2, 2, vec![0; 7]);
    }
}
