#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Three-dimensional extension of `rectpart`.
//!
//! The paper's problem statement covers "discrete, two or
//! three-dimensional space" (§1), and its PIC-MAG instances are in fact
//! 3D simulation data *accumulated along one dimension* into matrices
//! (§4.1). This crate supplies the 3D side of that story:
//!
//! * [`LoadVolume`] — a dense 3D load array, with
//!   [`LoadVolume::flatten`] reproducing the paper's accumulation
//!   preprocessing;
//! * [`PrefixSum3D`] — the 3D Γ array: any axis-aligned box load in O(1)
//!   (8-term inclusion–exclusion);
//! * [`Partition3`] / [`Partitioner3`] — cuboid-per-processor solutions
//!   with the same validation and imbalance metrics as 2D;
//! * three partitioners generalizing the paper's families to 3D:
//!   [`RectUniform3`] (P×Q×R grid), [`JagMHeur3`] (m-way jagged slabs,
//!   each slab partitioned by the 2D `JAG-M-HEUR`), and [`HierRb3`]
//!   (recursive bisection over the best of three axes).

mod algorithms;
mod geometry;
mod prefix;
mod refine3;
mod solution;
mod synthetic;
mod volume;

pub use algorithms::{HierRb3, JagMHeur3, RectUniform3};
pub use geometry::{Axis3, Box3};
pub use prefix::PrefixSum3D;
pub use refine3::{HierRelaxed3, RectNicol3};
pub use solution::{Partition3, Partitioner3};
pub use synthetic::{peak3, uniform3};
pub use volume::LoadVolume;
