//! Cuboid-per-processor partitions of a volume.

use std::fmt;

use crate::geometry::Box3;
use crate::prefix::PrefixSum3D;

/// Why a candidate 3D partition is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Partition3Error {
    /// A box sticks out of the volume.
    OutOfBounds { index: usize, cuboid: Box3 },
    /// Two boxes share a cell.
    Overlap { a: usize, b: usize },
    /// The boxes do not cover every cell.
    Uncovered { covered: usize, expected: usize },
}

impl fmt::Display for Partition3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partition3Error::OutOfBounds { index, cuboid } => {
                write!(f, "box {index} out of bounds: {cuboid:?}")
            }
            Partition3Error::Overlap { a, b } => write!(f, "boxes {a} and {b} overlap"),
            Partition3Error::Uncovered { covered, expected } => {
                write!(f, "only {covered} of {expected} cells covered")
            }
        }
    }
}

impl std::error::Error for Partition3Error {}

/// A cuboid-per-processor partition; idle processors hold
/// [`Box3::EMPTY`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition3 {
    boxes: Vec<Box3>,
}

impl Partition3 {
    /// Wraps boxes into a partition of `boxes.len()` processors.
    pub fn new(boxes: Vec<Box3>) -> Self {
        assert!(!boxes.is_empty());
        Self { boxes }
    }

    /// Wraps boxes, padding with [`Box3::EMPTY`] up to `m`.
    pub fn with_parts(mut boxes: Vec<Box3>, m: usize) -> Self {
        assert!(
            boxes.len() <= m,
            "{} boxes exceed {m} processors",
            boxes.len()
        );
        boxes.resize(m, Box3::EMPTY);
        Self { boxes }
    }

    /// Number of processors.
    pub fn parts(&self) -> usize {
        self.boxes.len()
    }

    /// The boxes, one per processor.
    pub fn boxes(&self) -> &[Box3] {
        &self.boxes
    }

    /// Non-empty boxes.
    pub fn active_parts(&self) -> usize {
        self.boxes.iter().filter(|b| !b.is_empty()).count()
    }

    /// Per-processor loads.
    pub fn loads(&self, pfx: &PrefixSum3D) -> Vec<u64> {
        self.boxes.iter().map(|b| pfx.load(b)).collect()
    }

    /// Load of the most loaded processor.
    pub fn lmax(&self, pfx: &PrefixSum3D) -> u64 {
        self.boxes.iter().map(|b| pfx.load(b)).max().unwrap_or(0)
    }

    /// `Lmax / Lavg − 1`.
    pub fn load_imbalance(&self, pfx: &PrefixSum3D) -> f64 {
        let lavg = pfx.average_load(self.parts());
        if lavg == 0.0 {
            return 0.0;
        }
        self.lmax(pfx) as f64 / lavg - 1.0
    }

    /// Checks the boxes tile the volume exactly (pairwise disjointness +
    /// volume count, as in 2D).
    pub fn validate(&self, pfx: &PrefixSum3D) -> Result<(), Partition3Error> {
        let (nx, ny, nz) = pfx.dims();
        let mut covered = 0usize;
        for (i, b) in self.boxes.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            if b.x1 > nx || b.y1 > ny || b.z1 > nz {
                return Err(Partition3Error::OutOfBounds {
                    index: i,
                    cuboid: *b,
                });
            }
            covered += b.volume();
        }
        for i in 0..self.boxes.len() {
            for j in i + 1..self.boxes.len() {
                if self.boxes[i].intersects(&self.boxes[j]) {
                    return Err(Partition3Error::Overlap { a: i, b: j });
                }
            }
        }
        let expected = nx * ny * nz;
        if covered != expected {
            return Err(Partition3Error::Uncovered { covered, expected });
        }
        Ok(())
    }
}

/// A 3D cuboid-partitioning algorithm.
pub trait Partitioner3: Sync {
    /// Algorithm name, following the 2D naming convention with a `-3D`
    /// suffix.
    fn name(&self) -> String;

    /// Partitions the volume behind `pfx` into `m` cuboids.
    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::LoadVolume;

    fn pfx() -> PrefixSum3D {
        PrefixSum3D::new(&LoadVolume::from_fn(4, 4, 4, |x, y, z| {
            (x + y + z) as u32 + 1
        }))
    }

    #[test]
    fn octants_are_valid() {
        let mut boxes = Vec::new();
        for x in [0, 2] {
            for y in [0, 2] {
                for z in [0, 2] {
                    boxes.push(Box3::new(x, x + 2, y, y + 2, z, z + 2));
                }
            }
        }
        let p = Partition3::new(boxes);
        let g = pfx();
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.loads(&g).iter().sum::<u64>(), g.total());
        assert!(p.load_imbalance(&g) >= 0.0);
    }

    #[test]
    fn detects_overlap_and_gaps() {
        let g = pfx();
        let overlap = Partition3::new(vec![
            Box3::new(0, 3, 0, 4, 0, 4),
            Box3::new(2, 4, 0, 4, 0, 4),
        ]);
        assert!(matches!(
            overlap.validate(&g),
            Err(Partition3Error::Overlap { .. })
        ));
        let gap = Partition3::new(vec![Box3::new(0, 3, 0, 4, 0, 4)]);
        assert!(matches!(
            gap.validate(&g),
            Err(Partition3Error::Uncovered { .. })
        ));
        let oob = Partition3::new(vec![Box3::new(0, 5, 0, 4, 0, 4)]);
        assert!(matches!(
            oob.validate(&g),
            Err(Partition3Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn padding_with_empty_boxes() {
        let g = pfx();
        let p = Partition3::with_parts(vec![Box3::new(0, 4, 0, 4, 0, 4)], 5);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.parts(), 5);
        assert_eq!(p.active_parts(), 1);
    }
}
