//! 3D generalizations of the paper's partitioning families.

use rectpart_core::{allocate_processors, JagMHeur, Partitioner, PrefixSum2D};
use rectpart_onedim::{nicol, FnCost};

use crate::geometry::{Axis3, Box3};
use crate::prefix::PrefixSum3D;
use crate::solution::{Partition3, Partitioner3};
use crate::volume::LoadVolume;

/// `RECT-UNIFORM-3D`: a P×Q×R grid of near-equal-*size* slabs (the 3D
/// `MPI_Cart` baseline).
#[derive(Clone, Debug, Default)]
pub struct RectUniform3 {
    /// Explicit grid; defaults to the most cubic factorization of `m`.
    pub grid: Option<(usize, usize, usize)>,
}

impl Partitioner3 for RectUniform3 {
    fn name(&self) -> String {
        "RECT-UNIFORM-3D".into()
    }

    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3 {
        assert!(m >= 1);
        let (p, q, r) = self.grid.unwrap_or_else(|| cubic_dims(m));
        assert!(p * q * r <= m);
        let (nx, ny, nz) = pfx.dims();
        let cut = |n: usize, k: usize, i: usize| i * n / k;
        let mut boxes = Vec::with_capacity(p * q * r);
        for i in 0..p {
            for j in 0..q {
                for k in 0..r {
                    boxes.push(Box3::new(
                        cut(nx, p, i),
                        cut(nx, p, i + 1),
                        cut(ny, q, j),
                        cut(ny, q, j + 1),
                        cut(nz, r, k),
                        cut(nz, r, k + 1),
                    ));
                }
            }
        }
        Partition3::with_parts(boxes, m)
    }
}

/// The factorization `m = p·q·r` minimizing the spread `max/min` of the
/// factors (most cubic grid).
pub(crate) fn cubic_dims(m: usize) -> (usize, usize, usize) {
    assert!(m >= 1);
    let mut best = (1, 1, m);
    let mut best_spread = m;
    for p in 1..=m {
        if p * p * p > m {
            break;
        }
        if !m.is_multiple_of(p) {
            continue;
        }
        let rest = m / p;
        let mut q = (rest as f64).sqrt() as usize;
        while !rest.is_multiple_of(q) {
            q -= 1;
        }
        let r = rest / q;
        let spread = r.max(q).max(p) / p.min(q).min(r);
        if spread < best_spread {
            best_spread = spread;
            best = (p, q, r);
        }
    }
    best
}

/// `JAG-M-HEUR-3D`: the natural 3D lift of the paper's m-way jagged
/// heuristic. The main axis is split into `P ≈ ∛m·…` slabs with the
/// optimal 1D algorithm on the axis projection; every slab receives a
/// processor count proportional to its load (the §3.2.2 allocation) and
/// is then partitioned by the 2D `JAG-M-HEUR` on its accumulated
/// cross-section.
///
/// Requires the underlying [`LoadVolume`] (for per-slab accumulation), so
/// it is constructed with [`JagMHeur3::new`] rather than from the prefix
/// sums alone. Per-slab accumulated loads must fit `u32`.
#[derive(Clone, Debug)]
pub struct JagMHeur3<'a> {
    volume: &'a LoadVolume,
    /// Main (slab) axis.
    pub main: Axis3,
    /// Slab count; defaults to `⌊m^(1/3)⌋`.
    pub slabs: Option<usize>,
}

impl<'a> JagMHeur3<'a> {
    /// Creates the partitioner for a volume, slicing along `main`.
    pub fn new(volume: &'a LoadVolume, main: Axis3) -> Self {
        Self {
            volume,
            main,
            slabs: None,
        }
    }
}

impl Partitioner3 for JagMHeur3<'_> {
    fn name(&self) -> String {
        "JAG-M-HEUR-3D".into()
    }

    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3 {
        assert!(m >= 1);
        assert_eq!(
            pfx.dims(),
            self.volume.dims(),
            "prefix sums must describe the constructing volume"
        );
        let n_main = self.volume.len(self.main);
        let p = self
            .slabs
            .unwrap_or_else(|| (m as f64).cbrt().floor() as usize)
            .clamp(1, m.min(n_main.max(1)));
        // Optimal 1D slab cuts on the main-axis projection.
        let slab_load = |a: usize, b: usize| -> u64 {
            let (nx, ny, nz) = pfx.dims();
            match self.main {
                Axis3::X => pfx.load6(a, b, 0, ny, 0, nz),
                Axis3::Y => pfx.load6(0, nx, a, b, 0, nz),
                Axis3::Z => pfx.load6(0, nx, 0, ny, a, b),
            }
        };
        let cost = FnCost::additive(n_main, &slab_load);
        let cuts = nicol(&cost, p).cuts;
        let slabs: Vec<(usize, usize)> = cuts.intervals().filter(|(a, b)| a < b).collect();
        let loads: Vec<u64> = slabs.iter().map(|&(a, b)| slab_load(a, b)).collect();
        let procs = allocate_processors(&loads, m, p.min(m));
        let mut boxes = Vec::with_capacity(m);
        for (&(a, b), &qs) in slabs.iter().zip(&procs) {
            // 2D sub-problem on the slab's accumulated cross-section.
            let matrix = self.volume.flatten_range(self.main, a, b);
            // Cannot overflow: the slab's total is bounded by the volume
            // total, which fit u64 when the 3D prefix sums were built.
            let pfx2 = PrefixSum2D::try_new(&matrix).expect("slab total exceeds volume total");
            let part2 = JagMHeur::best().partition(&pfx2, qs);
            for rect in part2.rects().iter().filter(|r| !r.is_empty()) {
                boxes.push(embed(self.main, a, b, rect.r0, rect.r1, rect.c0, rect.c1));
            }
        }
        Partition3::with_parts(boxes, m)
    }
}

/// Maps a 2D rectangle of the cross-section (rows, cols =
/// `main.others()`) back into the slab `[a, b)` of the volume.
fn embed(main: Axis3, a: usize, b: usize, r0: usize, r1: usize, c0: usize, c1: usize) -> Box3 {
    match main {
        Axis3::X => Box3::new(a, b, r0, r1, c0, c1),
        Axis3::Y => Box3::new(r0, r1, a, b, c0, c1),
        Axis3::Z => Box3::new(r0, r1, c0, c1, a, b),
    }
}

/// `HIER-RB-3D`: recursive bisection choosing, at every node, the best
/// balanced split over all three axes (the `-LOAD` policy in 3D).
#[derive(Clone, Debug, Default)]
pub struct HierRb3;

impl Partitioner3 for HierRb3 {
    fn name(&self) -> String {
        "HIER-RB-3D-LOAD".into()
    }

    fn partition(&self, pfx: &PrefixSum3D, m: usize) -> Partition3 {
        assert!(m >= 1);
        let (nx, ny, nz) = pfx.dims();
        let mut boxes = Vec::with_capacity(m);
        recurse(pfx, Box3::new(0, nx, 0, ny, 0, nz), m, &mut boxes);
        debug_assert_eq!(boxes.len(), m);
        Partition3::new(boxes)
    }
}

fn recurse(pfx: &PrefixSum3D, cuboid: Box3, m: usize, out: &mut Vec<Box3>) {
    if m == 1 {
        out.push(cuboid);
        return;
    }
    let candidates: Vec<Axis3> = Axis3::ALL
        .into_iter()
        .filter(|&a| {
            let (lo, hi) = cuboid.extent(a);
            hi - lo >= 2
        })
        .collect();
    if candidates.is_empty() {
        out.push(cuboid);
        out.extend(std::iter::repeat_n(Box3::EMPTY, m - 1));
        return;
    }
    let m1 = m / 2;
    let m2 = m - m1;
    let mut best: Option<(u128, Axis3, usize, usize)> = None;
    let assignments: &[(usize, usize)] = if m1 == m2 {
        &[(m1, m2)]
    } else {
        &[(m1, m2), (m2, m1)]
    };
    for &axis in &candidates {
        for &(ma, mb) in assignments {
            let (lo, hi) = cuboid.extent(axis);
            let (mut a, mut b) = (lo, hi);
            while a < b {
                let mid = a + (b - a) / 2;
                let (first, second) = cuboid.split(axis, mid);
                if pfx.load(&first) as u128 * mb as u128 >= pfx.load(&second) as u128 * ma as u128 {
                    b = mid;
                } else {
                    a = mid + 1;
                }
            }
            for at in [a, a.saturating_sub(1).max(lo)] {
                let (first, second) = cuboid.split(axis, at);
                let key = (pfx.load(&first) as u128 * mb as u128)
                    .max(pfx.load(&second) as u128 * ma as u128);
                if best.is_none_or(|(bk, ..)| key < bk) {
                    best = Some((key, axis, at, ma));
                }
            }
        }
    }
    let (_, axis, at, ma) = best.unwrap();
    let (first, second) = cuboid.split(axis, at);
    recurse(pfx, first, ma, out);
    recurse(pfx, second, m - ma, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_volume(nx: usize, ny: usize, nz: usize, seed: u64) -> LoadVolume {
        let mut rng = StdRng::seed_from_u64(seed);
        LoadVolume::from_fn(nx, ny, nz, |_, _, _| rng.gen_range(1..50))
    }

    #[test]
    fn cubic_dims_properties() {
        assert_eq!(cubic_dims(8), (2, 2, 2));
        assert_eq!(cubic_dims(27), (3, 3, 3));
        assert_eq!(cubic_dims(12), (2, 2, 3));
        assert_eq!(cubic_dims(7), (1, 1, 7));
        for m in 1..=64 {
            let (p, q, r) = cubic_dims(m);
            assert_eq!(p * q * r, m);
        }
    }

    #[test]
    fn uniform3_tiles_the_volume() {
        let v = random_volume(9, 7, 11, 1);
        let pfx = PrefixSum3D::new(&v);
        for m in [1, 4, 8, 12, 27] {
            let p = RectUniform3::default().partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok(), "m={m}: {:?}", p.validate(&pfx));
        }
    }

    #[test]
    fn hier_rb3_tiles_and_balances() {
        let v = random_volume(12, 10, 8, 2);
        let pfx = PrefixSum3D::new(&v);
        for m in [1, 2, 5, 8, 16, 31] {
            let p = HierRb3.partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok(), "m={m}");
            assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
        }
        // On a uniform volume and a power-of-two m, bisection is perfect.
        let u = LoadVolume::from_fn(8, 8, 8, |_, _, _| 3);
        let pu = PrefixSum3D::new(&u);
        let p = HierRb3.partition(&pu, 8);
        assert_eq!(p.lmax(&pu), pu.total() / 8);
    }

    #[test]
    fn jag_m_heur3_tiles_and_balances() {
        let v = random_volume(10, 12, 9, 3);
        let pfx = PrefixSum3D::new(&v);
        for axis in Axis3::ALL {
            for m in [1, 4, 9, 20] {
                let algo = JagMHeur3::new(&v, axis);
                let p = algo.partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "axis={axis:?} m={m}");
                assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
            }
        }
    }

    #[test]
    fn jagged3_beats_uniform_grid_on_skewed_volumes() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = LoadVolume::from_fn(12, 12, 12, |x, y, z| {
            let d =
                ((x as f64 - 6.0).powi(2) + (y as f64 - 6.0).powi(2) + (z as f64 - 6.0).powi(2))
                    .sqrt();
            (500.0 / (d + 0.5)) as u32 + rng.gen_range(1u32..5)
        });
        let pfx = PrefixSum3D::new(&v);
        let m = 27;
        let grid = RectUniform3::default()
            .partition(&pfx, m)
            .load_imbalance(&pfx);
        let jag = JagMHeur3::new(&v, Axis3::X)
            .partition(&pfx, m)
            .load_imbalance(&pfx);
        assert!(
            jag < grid,
            "jagged ({jag:.3}) must beat the uniform grid ({grid:.3}) on a peaked volume"
        );
    }

    #[test]
    fn explicit_slab_count() {
        let v = random_volume(16, 8, 8, 5);
        let pfx = PrefixSum3D::new(&v);
        let mut algo = JagMHeur3::new(&v, Axis3::X);
        algo.slabs = Some(4);
        let p = algo.partition(&pfx, 16);
        assert!(p.validate(&pfx).is_ok());
    }
}
