//! 3D prefix sums: any box load in O(1).

use crate::geometry::Box3;
use crate::volume::LoadVolume;

/// The 3D Γ array: `g[x][y][z] = Σ_{x'<x, y'<y, z'<z} A[x'][y'][z']`
/// with zero borders, so a box load is eight lookups (3D
/// inclusion–exclusion).
#[derive(Clone, Debug)]
pub struct PrefixSum3D {
    nx: usize,
    ny: usize,
    nz: usize,
    g: Vec<u64>,
    total: u64,
    max_cell: u32,
}

impl PrefixSum3D {
    /// Builds Γ in one pass.
    pub fn new(v: &LoadVolume) -> Self {
        let (nx, ny, nz) = v.dims();
        let (sy, sz) = ((ny + 1) * (nz + 1), nz + 1);
        let idx = |x: usize, y: usize, z: usize| x * sy + y * sz + z;
        let mut g = vec![0u64; (nx + 1) * sy];
        let mut max_cell = 0u32;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let cell = v.get(x, y, z);
                    max_cell = max_cell.max(cell);
                    // Standard 3D prefix recurrence.
                    g[idx(x + 1, y + 1, z + 1)] = cell as u64
                        + g[idx(x, y + 1, z + 1)]
                        + g[idx(x + 1, y, z + 1)]
                        + g[idx(x + 1, y + 1, z)]
                        - g[idx(x, y, z + 1)]
                        - g[idx(x, y + 1, z)]
                        - g[idx(x + 1, y, z)]
                        + g[idx(x, y, z)];
                }
            }
        }
        let total = g[idx(nx, ny, nz)];
        Self {
            nx,
            ny,
            nz,
            g,
            total,
            max_cell,
        }
    }

    /// Dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total load.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest cell load.
    pub fn max_cell(&self) -> u32 {
        self.max_cell
    }

    /// Load of a box in O(1).
    pub fn load(&self, b: &Box3) -> u64 {
        self.load6(b.x0, b.x1, b.y0, b.y1, b.z0, b.z1)
    }

    /// Load of `[x0,x1) × [y0,y1) × [z0,z1)` in O(1).
    #[allow(clippy::too_many_arguments)]
    pub fn load6(&self, x0: usize, x1: usize, y0: usize, y1: usize, z0: usize, z1: usize) -> u64 {
        debug_assert!(x0 <= x1 && x1 <= self.nx);
        debug_assert!(y0 <= y1 && y1 <= self.ny);
        debug_assert!(z0 <= z1 && z1 <= self.nz);
        let (sy, sz) = ((self.ny + 1) * (self.nz + 1), self.nz + 1);
        let idx = |x: usize, y: usize, z: usize| x * sy + y * sz + z;
        let g = &self.g;
        // Inclusion–exclusion; grouped to keep intermediate sums
        // non-negative in unsigned arithmetic.
        (g[idx(x1, y1, z1)] + g[idx(x0, y0, z1)] + g[idx(x0, y1, z0)] + g[idx(x1, y0, z0)])
            - (g[idx(x0, y1, z1)] + g[idx(x1, y0, z1)] + g[idx(x1, y1, z0)] + g[idx(x0, y0, z0)])
    }

    /// The classical lower bounds on any m-way cuboid bottleneck.
    pub fn lower_bound(&self, m: usize) -> u64 {
        assert!(m >= 1);
        self.total.div_ceil(m as u64).max(self.max_cell as u64)
    }

    /// Average per-processor load.
    pub fn average_load(&self, m: usize) -> f64 {
        self.total as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_naive_on_random_volumes() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = LoadVolume::from_fn(6, 7, 5, |_, _, _| rng.gen_range(0..50));
        let p = PrefixSum3D::new(&v);
        assert_eq!(p.total(), v.total());
        assert_eq!(p.max_cell(), v.max_cell());
        for _ in 0..300 {
            let x0 = rng.gen_range(0..=6);
            let x1 = rng.gen_range(x0..=6);
            let y0 = rng.gen_range(0..=7);
            let y1 = rng.gen_range(y0..=7);
            let z0 = rng.gen_range(0..=5);
            let z1 = rng.gen_range(z0..=5);
            let b = Box3::new(x0, x1, y0, y1, z0, z1);
            assert_eq!(p.load(&b), v.load_naive(&b), "{b:?}");
        }
    }

    #[test]
    fn lower_bound_semantics() {
        let v = LoadVolume::from_fn(2, 2, 2, |x, _, _| if x == 0 { 10 } else { 1 });
        let p = PrefixSum3D::new(&v);
        assert_eq!(p.lower_bound(1), p.total());
        assert_eq!(p.lower_bound(44), 10);
    }

    #[test]
    fn degenerate_dimensions() {
        let v = LoadVolume::from_fn(1, 1, 4, |_, _, z| z as u32);
        let p = PrefixSum3D::new(&v);
        assert_eq!(p.load6(0, 1, 0, 1, 1, 3), 3);
    }
}
