//! Synthetic 3D load volumes (uniform and peaked), mirroring the 2D
//! classes for the 3D algorithms' tests and examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::volume::LoadVolume;

/// Uniform volume with heterogeneity Δ: cells drawn from
/// `[1000, 1000·Δ]`.
pub fn uniform3(nx: usize, ny: usize, nz: usize, delta: f64, seed: u64) -> LoadVolume {
    assert!(delta >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let hi = (1000.0 * delta).round() as u32;
    LoadVolume::from_fn(nx, ny, nz, |_, _, _| rng.gen_range(1000..=hi.max(1000)))
}

/// Single random load peak: a uniform draw divided by the distance to a
/// random reference point (the 2D peak recipe lifted to 3D).
pub fn peak3(nx: usize, ny: usize, nz: usize, seed: u64) -> LoadVolume {
    let mut rng = StdRng::seed_from_u64(seed);
    let (px, py, pz) = (
        rng.gen_range(0..nx) as f64,
        rng.gen_range(0..ny) as f64,
        rng.gen_range(0..nz) as f64,
    );
    let ncells = (nx * ny * nz) as u64;
    LoadVolume::from_fn(nx, ny, nz, |x, y, z| {
        let d =
            ((x as f64 - px).powi(2) + (y as f64 - py).powi(2) + (z as f64 - pz).powi(2)).sqrt();
        (rng.gen_range(0..ncells) as f64 / (d + 0.1)) as u32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Axis3;

    #[test]
    fn uniform3_range() {
        let v = uniform3(8, 8, 8, 1.5, 1);
        assert!(v.max_cell() <= 1500);
        assert!(v.total() >= 1000 * 512);
    }

    #[test]
    fn peak3_concentrates() {
        let v = peak3(16, 16, 16, 2);
        // The peak cell dwarfs the average cell...
        let mean = v.total() as f64 / 4096.0;
        assert!(v.max_cell() as f64 > 10.0 * mean);
        // ...and survives accumulation as a visible 2D hotspot.
        let flat = v.flatten(Axis3::Z);
        let avg = flat.total() as f64 / 256.0;
        assert!(flat.max_cell() as f64 > 1.5 * avg);
    }

    #[test]
    fn deterministic() {
        assert_eq!(peak3(8, 8, 8, 7), peak3(8, 8, 8, 7));
        assert_ne!(peak3(8, 8, 8, 7), peak3(8, 8, 8, 8));
    }
}
