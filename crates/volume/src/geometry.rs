//! Cuboids and axis selection in three dimensions.

/// One of the three dimensions of a load volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis3 {
    /// First (slowest-varying) dimension.
    X,
    /// Second dimension.
    Y,
    /// Third (fastest-varying) dimension.
    Z,
}

impl Axis3 {
    /// All three axes.
    pub const ALL: [Axis3; 3] = [Axis3::X, Axis3::Y, Axis3::Z];

    /// The two axes orthogonal to this one, in (row, col) order of the
    /// flattened matrix.
    pub fn others(self) -> (Axis3, Axis3) {
        match self {
            Axis3::X => (Axis3::Y, Axis3::Z),
            Axis3::Y => (Axis3::X, Axis3::Z),
            Axis3::Z => (Axis3::X, Axis3::Y),
        }
    }
}

/// An axis-aligned box of cells: `[x0, x1) × [y0, y1) × [z0, z1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Box3 {
    /// First x (inclusive).
    pub x0: usize,
    /// Past-the-end x.
    pub x1: usize,
    /// First y (inclusive).
    pub y0: usize,
    /// Past-the-end y.
    pub y1: usize,
    /// First z (inclusive).
    pub z0: usize,
    /// Past-the-end z.
    pub z1: usize,
}

impl Box3 {
    /// A box covering no cell.
    pub const EMPTY: Box3 = Box3 {
        x0: 0,
        x1: 0,
        y0: 0,
        y1: 0,
        z0: 0,
        z1: 0,
    };

    /// Creates a box; panics on inverted bounds.
    pub fn new(x0: usize, x1: usize, y0: usize, y1: usize, z0: usize, z1: usize) -> Box3 {
        assert!(x0 <= x1 && y0 <= y1 && z0 <= z1, "inverted box bounds");
        Box3 {
            x0,
            x1,
            y0,
            y1,
            z0,
            z1,
        }
    }

    /// Number of cells covered.
    pub fn volume(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)
    }

    /// `true` when no cell is covered.
    pub fn is_empty(&self) -> bool {
        self.x0 == self.x1 || self.y0 == self.y1 || self.z0 == self.z1
    }

    /// Extent `[lo, hi)` along `axis`.
    pub fn extent(&self, axis: Axis3) -> (usize, usize) {
        match axis {
            Axis3::X => (self.x0, self.x1),
            Axis3::Y => (self.y0, self.y1),
            Axis3::Z => (self.z0, self.z1),
        }
    }

    /// Splits at `at` along `axis` (must lie within the extent).
    pub fn split(&self, axis: Axis3, at: usize) -> (Box3, Box3) {
        let (lo, hi) = self.extent(axis);
        assert!(lo <= at && at <= hi);
        let mut a = *self;
        let mut b = *self;
        match axis {
            Axis3::X => {
                a.x1 = at;
                b.x0 = at;
            }
            Axis3::Y => {
                a.y1 = at;
                b.y0 = at;
            }
            Axis3::Z => {
                a.z1 = at;
                b.z0 = at;
            }
        }
        (a, b)
    }

    /// `true` if the boxes share at least one cell.
    pub fn intersects(&self, other: &Box3) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x0 < other.x1
            && other.x0 < self.x1
            && self.y0 < other.y1
            && other.y0 < self.y1
            && self.z0 < other.z1
            && other.z0 < self.z1
    }

    /// `true` if the cell lies inside.
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        self.x0 <= x && x < self.x1 && self.y0 <= y && y < self.y1 && self.z0 <= z && z < self.z1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_emptiness() {
        let b = Box3::new(0, 2, 1, 4, 2, 5);
        assert_eq!(b.volume(), 2 * 3 * 3);
        assert!(!b.is_empty());
        assert!(Box3::EMPTY.is_empty());
        assert!(Box3::new(1, 1, 0, 4, 0, 4).is_empty());
    }

    #[test]
    fn split_along_each_axis() {
        let b = Box3::new(0, 4, 0, 6, 0, 8);
        let (lo, hi) = b.split(Axis3::Y, 2);
        assert_eq!(lo.extent(Axis3::Y), (0, 2));
        assert_eq!(hi.extent(Axis3::Y), (2, 6));
        assert_eq!(lo.extent(Axis3::X), (0, 4));
        let (a, c) = b.split(Axis3::Z, 8);
        assert_eq!(a, b);
        assert!(c.is_empty());
    }

    #[test]
    fn intersection_and_containment() {
        let a = Box3::new(0, 4, 0, 4, 0, 4);
        assert!(a.intersects(&Box3::new(3, 5, 3, 5, 3, 5)));
        assert!(!a.intersects(&Box3::new(4, 6, 0, 4, 0, 4)));
        assert!(a.contains(3, 3, 3));
        assert!(!a.contains(4, 0, 0));
    }

    #[test]
    fn axis_others() {
        assert_eq!(Axis3::X.others(), (Axis3::Y, Axis3::Z));
        assert_eq!(Axis3::Y.others(), (Axis3::X, Axis3::Z));
        assert_eq!(Axis3::Z.others(), (Axis3::X, Axis3::Y));
    }
}
