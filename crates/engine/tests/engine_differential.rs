//! Differential test for the resident engine's bit-identity contract:
//! a warm engine — delta-patched Γ, warm stripe memo, warm-start seeded
//! solves — must return **exactly** the partitions a cold solve produces
//! on the patched matrix, for both Γ backends and at any thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::{
    algorithm_by_name, GammaMode, LoadMatrix, Partition, Partitioner, PrefixSum2D, RowUpdate,
};
use rectpart_engine::{Engine, EngineConfig, Query, RebalancePolicy};
use rectpart_parallel::with_threads;

const ALGOS: [&str; 4] = [
    "JAG-M-OPT-BEST",
    "JAG-PQ-OPT-BEST",
    "JAG-M-HEUR-BEST",
    "HIER-RB-LOAD",
];
const M: usize = 7;
const ROWS: usize = 22;
const COLS: usize = 26;

/// Base matrix plus a short drift series (a few rows rewritten per
/// step), with enough zeros that the sparse backend engages its run
/// encoding.
fn scenario(seed: u64) -> (LoadMatrix, Vec<Vec<RowUpdate>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = LoadMatrix::from_fn(ROWS, COLS, |_, _| {
        if rng.gen_bool(0.4) {
            0
        } else {
            rng.gen_range(1..60)
        }
    });
    let deltas = (0..3)
        .map(|_| {
            (0..3)
                .map(|_| RowUpdate {
                    row: rng.gen_range(0..ROWS),
                    cells: (0..COLS)
                        .map(|_| {
                            if rng.gen_bool(0.4) {
                                0
                            } else {
                                rng.gen_range(1..60)
                            }
                        })
                        .collect(),
                })
                .collect()
        })
        .collect();
    (base, deltas)
}

/// The warm path: one resident engine across the whole series.
fn run_warm(mode: GammaMode, threads: usize) -> Vec<Partition> {
    let (base, deltas) = scenario(42);
    with_threads(threads, || {
        let cfg = EngineConfig {
            gamma_mode: mode,
            rebalance: RebalancePolicy::EverySnapshot,
            budget: None,
        };
        let mut engine = Engine::with_config(base, cfg).expect("engine build");
        let mut out = Vec::new();
        for algo in ALGOS {
            out.push(engine.solve(&Query::new(algo, M)).expect(algo).partition);
        }
        for delta in &deltas {
            engine.apply_delta(delta).expect("delta");
            for algo in ALGOS {
                let got = engine.solve(&Query::new(algo, M)).expect(algo);
                assert!(!got.warm_hit, "{algo} must re-solve after a delta");
                out.push(got.partition);
            }
        }
        out
    })
}

/// The cold oracle: fresh Γ and fresh solver state at every step.
fn run_cold(mode: GammaMode, threads: usize) -> Vec<Partition> {
    let (base, deltas) = scenario(42);
    with_threads(threads, || {
        let mut matrix = base;
        let mut out = Vec::new();
        let solve_all = |matrix: &LoadMatrix, out: &mut Vec<Partition>| {
            let pfx = PrefixSum2D::try_new_with(matrix, mode).expect("gamma");
            for algo in ALGOS {
                let solver = algorithm_by_name(algo).expect(algo);
                out.push(solver.partition(&pfx, M));
            }
        };
        solve_all(&matrix, &mut out);
        for delta in &deltas {
            for u in delta {
                matrix.data_mut()[u.row * COLS..(u.row + 1) * COLS].copy_from_slice(&u.cells);
            }
            solve_all(&matrix, &mut out);
        }
        out
    })
}

#[test]
fn warm_engine_is_bit_identical_to_cold_solves_at_any_thread_count() {
    let reference = run_cold(GammaMode::Dense, 1);
    for mode in [GammaMode::Dense, GammaMode::Sparse] {
        for threads in [1, 2, 4, 7] {
            let cold = run_cold(mode, threads);
            assert_eq!(
                cold, reference,
                "cold solves must not depend on backend or threads ({mode:?}, {threads} threads)"
            );
            let warm = run_warm(mode, threads);
            assert_eq!(
                warm, reference,
                "warm engine diverged from cold oracle ({mode:?}, {threads} threads)"
            );
        }
    }
}
