#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Resident partitioning engine for `rectpart`.
//!
//! The batch entry points of the workspace (`Partitioner::partition`,
//! `SolverDriver::try_solve`) rebuild the Γ prefix-sum array and start
//! every solve from scratch. For the dynamic workloads of §6 of the
//! IPDPS 2011 paper — a particle-in-cell load that drifts a little at
//! every snapshot — that throws away almost everything the previous
//! iteration computed. [`Engine`] is the long-lived alternative:
//!
//! * the load matrix is loaded **once** and Γ is built **once** via the
//!   configured [`GammaBackend`](rectpart_core::GammaBackend) mode;
//! * [`Engine::apply_delta`] patches the resident Γ row-incrementally
//!   (`O(changed_rows × n)` for the column pass instead of a full
//!   rebuild) with the same bit-identity guarantee as a cold rebuild,
//!   for both the dense and the sparse backend;
//! * repeated queries are answered from a solution cache
//!   ([`Counter::EngineWarmHits`]), and the shared
//!   [`StripeCache`] stays warm across every `JAG-PQ-OPT` query on an
//!   unchanged matrix;
//! * after a delta, re-solves are **warm-started**: the previous
//!   solution seeds Nicol's bisection incumbent (`JAG-PQ-OPT`) or the
//!   parametric-search probe (`JAG-M-OPT`,
//!   [`Counter::WarmStartProbesSkipped`]), saving probes while staying
//!   bit-identical to a cold solve on the patched matrix;
//! * the [`RebalancePolicy`] of `rectpart-simexec`'s dynamic runner
//!   decides when drift is small enough to keep serving the stale
//!   partition without any solve at all.
//!
//! # Example
//!
//! ```
//! use rectpart_core::{LoadMatrix, RowUpdate};
//! use rectpart_engine::{Engine, Query};
//!
//! let matrix = LoadMatrix::from_fn(32, 32, |r, c| ((r * 7 + c) % 13) as u32);
//! let mut engine = Engine::new(matrix).unwrap();
//! let q = Query::new("JAG-M-OPT-BEST", 8);
//! let cold = engine.solve(&q).unwrap();
//! let warm = engine.solve(&q).unwrap();            // served from cache
//! assert!(warm.warm_hit && !cold.warm_hit);
//! assert_eq!(cold.partition, warm.partition);
//!
//! engine
//!     .apply_delta(&[RowUpdate { row: 3, cells: vec![9; 32] }])
//!     .unwrap();
//! let resolved = engine.solve(&q).unwrap();        // warm-started re-solve
//! assert!(!resolved.warm_hit);
//! ```

use std::collections::HashMap;

use rectpart_core::{
    algorithm_by_name, GammaMode, JagMOpt, JagPqOpt, JaggedVariant, LoadMatrix, Partition,
    Partitioner, PrefixSum2D, Rect, RectpartError, RowExtrema, RowUpdate, StripeCache,
};
use rectpart_obs::Counter;
use rectpart_robust::SolverDriver;
pub use rectpart_simexec::RebalancePolicy;

/// Configuration of a resident [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Γ backend selection for the resident prefix sum and for every
    /// per-region prefix sum the engine builds.
    pub gamma_mode: GammaMode,
    /// When a cached solution is *stale* (the matrix changed since it
    /// was computed), this policy decides whether it may still be
    /// served: [`RebalancePolicy::EverySnapshot`] always re-solves
    /// (the bit-identity default), while
    /// [`RebalancePolicy::Threshold`]`(t)` keeps serving the stale
    /// partition while its load imbalance on the *current* matrix stays
    /// at or below `t` — the same trigger `rectpart_simexec::dynamic_run`
    /// uses.
    pub rebalance: RebalancePolicy,
    /// Default per-query work budget, in deterministic
    /// `rectpart_obs::work` units. A query's own budget overrides this.
    /// Any budget routes the query through the fault-tolerant
    /// [`SolverDriver`] instead of the warm direct path.
    pub budget: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            gamma_mode: GammaMode::Auto,
            rebalance: RebalancePolicy::EverySnapshot,
            budget: None,
        }
    }
}

/// Engine-local tallies, mirroring the process-wide
/// [`Counter`] values the engine charges but scoped to one engine so a
/// serving process can report per-engine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Solve queries served (cache hits included).
    pub queries: u64,
    /// Queries answered from the solution cache without running any
    /// solver (same-epoch hits plus threshold-policy stale reuse).
    pub warm_hits: u64,
    /// Distinct matrix rows rewritten by [`Engine::apply_delta`],
    /// whether the Γ table was patched row-incrementally or rebuilt.
    pub delta_rows_patched: u64,
    /// Bisection probes the `JAG-M-OPT` parametric search skipped
    /// because a warm-start hint collapsed the search range.
    pub warm_start_probes_skipped: u64,
}

/// One partition request against the resident matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Registry name of the algorithm (case-insensitive), e.g.
    /// `JAG-M-OPT-BEST`.
    pub algorithm: String,
    /// Number of processors.
    pub m: usize,
    /// Partition only this sub-rectangle of the resident matrix; the
    /// returned rectangles are in full-matrix coordinates. `None`
    /// partitions the whole matrix.
    pub region: Option<Rect>,
    /// Work budget for this query, overriding
    /// [`EngineConfig::budget`]. Routes the query through the
    /// [`SolverDriver`].
    pub budget: Option<u64>,
    /// Fallback ladder tried (in order) after `algorithm` fails or
    /// exceeds the budget. Non-empty ladders route the query through
    /// the [`SolverDriver`].
    pub fallback: Vec<String>,
}

impl Query {
    /// A plain whole-matrix query with no budget and no fallback.
    pub fn new(algorithm: impl Into<String>, m: usize) -> Query {
        Query {
            algorithm: algorithm.into(),
            m,
            region: None,
            budget: None,
            fallback: Vec::new(),
        }
    }
}

/// The engine's answer to one [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The partition, in full-matrix coordinates (region queries are
    /// translated back).
    pub partition: Partition,
    /// Whether the answer came from the solution cache (no solver ran).
    pub warm_hit: bool,
    /// Name of the algorithm that produced the partition — for
    /// budget/fallback queries this is the ladder rung that answered.
    pub answered_by: String,
}

/// One step of a serving batch: either a solve or a matrix delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Answer a partition query.
    Solve(Query),
    /// Patch matrix rows, then invalidate what the patch made stale.
    Delta(Vec<RowUpdate>),
}

/// The engine's answer to one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to a [`Request::Solve`].
    Solved(QueryOutcome),
    /// Answer to a [`Request::Delta`]: distinct rows rewritten.
    Patched(u64),
}

/// Key of one cached solution. Budget and fallback participate so a
/// budgeted query never serves (or seeds) an unbudgeted one's answer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct QueryKey {
    algorithm: String,
    m: usize,
    region: Option<Rect>,
    budget: Option<u64>,
    fallback: Vec<String>,
}

/// A cached solution. `partition` is in region-local coordinates for
/// region queries so it can seed warm re-solves of the same region
/// directly; translation to full-matrix coordinates happens at response
/// time.
#[derive(Clone, Debug)]
struct CacheEntry {
    epoch: u64,
    partition: Partition,
    answered_by: String,
}

/// A long-lived partitioning engine: resident matrix, resident Γ, warm
/// stripe memo, and a warm solution cache.
///
/// See the [crate docs](crate) for the serving model and the
/// bit-identity contract.
#[derive(Debug)]
pub struct Engine {
    matrix: LoadMatrix,
    pfx: PrefixSum2D,
    extrema: RowExtrema,
    stripes: StripeCache,
    solutions: HashMap<QueryKey, CacheEntry>,
    epoch: u64,
    config: EngineConfig,
    stats: EngineStats,
}

impl Engine {
    /// Builds an engine with the default [`EngineConfig`], constructing
    /// Γ once.
    pub fn new(matrix: LoadMatrix) -> Result<Engine, RectpartError> {
        Engine::with_config(matrix, EngineConfig::default())
    }

    /// Builds an engine with an explicit configuration, constructing Γ
    /// once with the configured backend.
    pub fn with_config(matrix: LoadMatrix, config: EngineConfig) -> Result<Engine, RectpartError> {
        let pfx = PrefixSum2D::try_new_with(&matrix, config.gamma_mode)?;
        let extrema = RowExtrema::new(&matrix);
        Ok(Engine {
            matrix,
            pfx,
            extrema,
            stripes: StripeCache::new(),
            solutions: HashMap::new(),
            epoch: 0,
            config,
            stats: EngineStats::default(),
        })
    }

    /// The resident load matrix (current contents, deltas applied).
    pub fn matrix(&self) -> &LoadMatrix {
        &self.matrix
    }

    /// The resident Γ prefix sum.
    pub fn prefix(&self) -> &PrefixSum2D {
        &self.pfx
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Engine-local statistics since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The matrix epoch: bumped by every successful
    /// [`apply_delta`](Engine::apply_delta). Cached solutions from
    /// older epochs are *stale*.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of memoized stripe solutions currently warm.
    pub fn stripe_entries(&self) -> usize {
        self.stripes.len()
    }

    /// Number of cached solutions (any epoch).
    pub fn cached_solutions(&self) -> usize {
        self.solutions.len()
    }

    /// Answers one query.
    ///
    /// Resolution order:
    /// 1. a cached solution from the current epoch is returned as-is
    ///    ([`Counter::EngineWarmHits`]);
    /// 2. a stale cached solution is still served if the
    ///    [`RebalancePolicy::Threshold`] drift check passes;
    /// 3. queries with a budget or a fallback ladder run through the
    ///    fault-tolerant [`SolverDriver`];
    /// 4. everything else runs the named algorithm directly, warm-started
    ///    from the stale cached solution when one exists — bit-identical
    ///    to a cold solve on the current matrix.
    pub fn solve(&mut self, q: &Query) -> Result<QueryOutcome, RectpartError> {
        rectpart_obs::incr(Counter::EngineQueries);
        self.stats.queries += 1;
        let name = q.algorithm.to_ascii_uppercase();
        if let Some(r) = q.region {
            self.check_region(r)?;
        }
        let budget = q.budget.or(self.config.budget);
        let key = QueryKey {
            algorithm: name.clone(),
            m: q.m,
            region: q.region,
            budget,
            fallback: q.fallback.iter().map(|s| s.to_ascii_uppercase()).collect(),
        };

        // 1. Same-epoch cache hit: no solver work at all.
        if let Some(entry) = self.solutions.get(&key) {
            if entry.epoch == self.epoch {
                rectpart_obs::incr(Counter::EngineWarmHits);
                self.stats.warm_hits += 1;
                return Ok(QueryOutcome {
                    partition: globalize(q.region, &entry.partition),
                    warm_hit: true,
                    answered_by: entry.answered_by.clone(),
                });
            }
        }

        // Miss or stale: materialize the target instance (the resident
        // Γ for whole-matrix queries, a one-off sub-matrix Γ otherwise).
        let sub = match q.region {
            Some(r) => Some(self.region_instance(r)?),
            None => None,
        };
        let pfx = match &sub {
            Some((_, p)) => p,
            None => &self.pfx,
        };

        // 2. Stale reuse under a drift threshold — the same trigger as
        // `rectpart_simexec::dynamic_run`. The entry's epoch is left
        // stale on purpose: every later query re-checks drift against
        // the then-current load.
        let prior = self.solutions.get(&key).map(|e| e.partition.clone());
        if let (Some(prev), RebalancePolicy::Threshold(t)) = (&prior, self.config.rebalance) {
            if prev.load_imbalance(pfx) <= t {
                rectpart_obs::incr(Counter::EngineWarmHits);
                self.stats.warm_hits += 1;
                return Ok(QueryOutcome {
                    partition: globalize(q.region, prev),
                    warm_hit: true,
                    answered_by: name,
                });
            }
        }

        RectpartError::check_problem(pfx.rows(), pfx.cols(), q.m)?;

        let (partition, answered_by) = if budget.is_some() || !key.fallback.is_empty() {
            // 3. Budget / fallback: the fault-tolerant driver owns the
            // admission decision and the ladder walk.
            let mut ladder = Vec::with_capacity(1 + key.fallback.len());
            ladder.push(name.clone());
            ladder.extend(key.fallback.iter().cloned());
            let mut driver = SolverDriver::new().with_ladder(ladder);
            if let Some(b) = budget {
                driver = driver.with_budget(b);
            }
            let matrix = match &sub {
                Some((m, _)) => m,
                None => &self.matrix,
            };
            let outcome = driver.try_solve(matrix, q.m).map_err(|f| f.error)?;
            let by = outcome.report.answered_by.unwrap_or_else(|| name.clone());
            (outcome.partition, by)
        } else {
            // 4. Direct warm path.
            let (p, skipped) =
                self.warm_partition(pfx, q.m, &name, prior.as_ref(), q.region.is_none())?;
            self.stats.warm_start_probes_skipped += skipped;
            (p, name.clone())
        };

        let response = globalize(q.region, &partition);
        self.solutions.insert(
            key,
            CacheEntry {
                epoch: self.epoch,
                partition,
                answered_by: answered_by.clone(),
            },
        );
        Ok(QueryOutcome {
            partition: response,
            warm_hit: false,
            answered_by,
        })
    }

    /// Rewrites whole matrix rows and brings Γ up to date, preferring a
    /// row-incremental patch of the resident prefix sums over a rebuild
    /// when few rows changed.
    ///
    /// Returns the number of *distinct* rows rewritten (later updates to
    /// the same row win) and charges it to [`Counter::DeltaRowsPatched`].
    /// On any error nothing is modified. A successful delta bumps the
    /// [`epoch`](Engine::epoch) — cached solutions become stale (but
    /// survive as warm-start seeds) and the stripe memo is dropped,
    /// since its entries are keyed by interval only and would
    /// otherwise alias loads of the pre-delta matrix.
    pub fn apply_delta(&mut self, updates: &[RowUpdate]) -> Result<u64, RectpartError> {
        if updates.is_empty() {
            return Ok(0);
        }
        let (rows, cols) = (self.matrix.rows(), self.matrix.cols());
        let mut seen = vec![false; rows];
        let mut changed = 0usize;
        for u in updates {
            if u.row >= rows {
                return Err(RectpartError::RowOutOfRange { row: u.row, rows });
            }
            if u.cells.len() != cols {
                return Err(RectpartError::RaggedRow {
                    row: u.row,
                    expected: cols,
                    got: u.cells.len(),
                });
            }
            // lint:allow(panic-reach) -- u.row < rows was checked above
            if !std::mem::replace(&mut seen[u.row], true) {
                changed += 1;
            }
        }
        let k = if 2 * changed <= rows {
            // Few rows changed: patch the resident Γ in place. The core
            // patch charges `DeltaRowsPatched` itself.
            self.pfx
                .apply_row_updates(&mut self.matrix, updates, &mut self.extrema)?
        } else {
            // Most rows changed: a full rebuild is cheaper than the
            // patch's splice work.
            self.rebuild_with(updates, changed as u64)?
        };
        self.stats.delta_rows_patched += k;
        self.epoch += 1;
        self.stripes = StripeCache::new();
        Ok(k)
    }

    /// Serves a batch of requests in order, stopping at the first error.
    pub fn run(&mut self, requests: &[Request]) -> Result<Vec<Response>, RectpartError> {
        let mut out = Vec::with_capacity(requests.len());
        for req in requests {
            out.push(match req {
                Request::Solve(q) => Response::Solved(self.solve(q)?),
                Request::Delta(rows) => Response::Patched(self.apply_delta(rows)?),
            });
        }
        Ok(out)
    }

    /// Delta path for large updates: rewrite the rows, rebuild Γ.
    /// Validation already ran; only `Overflow` can still fail, and the
    /// saved rows roll the matrix back in that case.
    fn rebuild_with(&mut self, updates: &[RowUpdate], changed: u64) -> Result<u64, RectpartError> {
        let (rows, cols) = (self.matrix.rows(), self.matrix.cols());
        let mut backup: Vec<(usize, Vec<u32>)> = Vec::with_capacity(changed as usize);
        let mut seen = vec![false; rows];
        for u in updates {
            // lint:allow(panic-reach) -- apply_delta validated u.row < rows
            if !std::mem::replace(&mut seen[u.row], true) {
                backup.push((u.row, self.matrix.row(u.row).to_vec()));
            }
            // lint:allow(panic-reach) -- row bounds validated; cells.len()
            // == cols validated, so both slices have length `cols`
            self.matrix.data_mut()[u.row * cols..(u.row + 1) * cols].copy_from_slice(&u.cells);
        }
        match PrefixSum2D::try_new_with(&self.matrix, self.config.gamma_mode) {
            Ok(pfx) => {
                self.pfx = pfx;
                self.extrema = RowExtrema::new(&self.matrix);
                // The patch path charges this inside the core; the
                // rebuild path is the engine's own policy, so the engine
                // charges it to keep the counter's meaning uniform.
                rectpart_obs::add(Counter::DeltaRowsPatched, changed);
                Ok(changed)
            }
            Err(e) => {
                for (r, cells) in backup {
                    // lint:allow(panic-reach) -- r < rows and cells was
                    // copied out of this very row, so lengths match
                    self.matrix.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&cells);
                }
                Err(e)
            }
        }
    }

    /// Rejects empty or out-of-bounds regions.
    fn check_region(&self, r: Rect) -> Result<(), RectpartError> {
        let (rows, cols) = (self.matrix.rows(), self.matrix.cols());
        if r.r0 >= r.r1 || r.c0 >= r.c1 || r.r1 > rows || r.c1 > cols {
            return Err(RectpartError::RegionOutOfRange {
                region: r,
                rows,
                cols,
            });
        }
        Ok(())
    }

    /// Copies a region out of the resident matrix and builds its Γ with
    /// the configured backend.
    fn region_instance(&self, r: Rect) -> Result<(LoadMatrix, PrefixSum2D), RectpartError> {
        let sub = LoadMatrix::from_fn(r.r1 - r.r0, r.c1 - r.c0, |rr, cc| {
            self.matrix.get(r.r0 + rr, r.c0 + cc)
        });
        let pfx = PrefixSum2D::try_new_with(&sub, self.config.gamma_mode)?;
        Ok((sub, pfx))
    }

    /// Runs the named algorithm, warm-started where the algorithm
    /// supports it. Returns the partition and the number of parametric
    /// probes the warm start skipped.
    ///
    /// `resident` is true for whole-matrix queries, which may share the
    /// engine's stripe memo; region queries get a throwaway memo because
    /// [`rectpart_core::StripeKey`] is interval-keyed and entries from a
    /// different (sub-)matrix would alias.
    fn warm_partition(
        &self,
        pfx: &PrefixSum2D,
        m: usize,
        name: &str,
        prior: Option<&Partition>,
        resident: bool,
    ) -> Result<(Partition, u64), RectpartError> {
        if let Some(variant) = name.strip_prefix("JAG-M-OPT-").and_then(parse_variant) {
            // Any hint is exactness-preserving: a feasible hint tightens
            // the upper bound, an infeasible one raises the lower bound,
            // and the search converges to the same optimum either way.
            let hint = prior.map(|p| p.lmax(pfx));
            return JagMOpt { variant }.try_partition_seeded(pfx, m, hint);
        }
        if let Some(variant) = name.strip_prefix("JAG-PQ-OPT-").and_then(parse_variant) {
            let algo = JagPqOpt {
                variant,
                grid: None,
            };
            let local = StripeCache::new();
            let cache = if resident { &self.stripes } else { &local };
            return Ok((algo.partition_warm(pfx, m, cache, prior), 0));
        }
        let algo = algorithm_by_name(name)
            .ok_or_else(|| RectpartError::UnknownAlgorithm(name.to_string()))?;
        Ok((algo.partition(pfx, m), 0))
    }
}

/// Translates a region-local partition back to full-matrix coordinates.
fn globalize(region: Option<Rect>, local: &Partition) -> Partition {
    match region {
        None => local.clone(),
        Some(reg) => {
            let rects = local
                .rects()
                .iter()
                .map(|t| Rect {
                    r0: t.r0 + reg.r0,
                    r1: t.r1 + reg.r0,
                    c0: t.c0 + reg.c0,
                    c1: t.c1 + reg.c0,
                })
                .collect();
            Partition::with_parts(rects, local.parts())
        }
    }
}

/// Parses the orientation suffix of a `JAG-*-OPT-*` registry name.
fn parse_variant(s: &str) -> Option<JaggedVariant> {
    match s {
        "HOR" => Some(JaggedVariant::Hor),
        "VER" => Some(JaggedVariant::Ver),
        "BEST" => Some(JaggedVariant::Best),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> LoadMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0..100))
    }

    fn updates(rows: usize, cols: usize, k: usize, seed: u64) -> Vec<RowUpdate> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| RowUpdate {
                row: rng.gen_range(0..rows),
                cells: (0..cols).map(|_| rng.gen_range(0..100)).collect(),
            })
            .collect()
    }

    #[test]
    fn repeat_query_is_a_warm_hit() {
        let mut engine = Engine::new(test_matrix(24, 24, 1)).unwrap();
        let q = Query::new("jag-m-opt-best", 6);
        let cold = engine.solve(&q).unwrap();
        let warm = engine.solve(&q).unwrap();
        assert!(!cold.warm_hit);
        assert!(warm.warm_hit);
        assert_eq!(cold.partition, warm.partition);
        assert_eq!(cold.answered_by, "JAG-M-OPT-BEST");
        let s = engine.stats();
        assert_eq!((s.queries, s.warm_hits), (2, 1));
    }

    #[test]
    fn delta_then_resolve_is_bit_identical_to_cold() {
        for mode in [GammaMode::Dense, GammaMode::Sparse] {
            let matrix = test_matrix(20, 28, 2);
            let cfg = EngineConfig {
                gamma_mode: mode,
                ..EngineConfig::default()
            };
            let mut engine = Engine::with_config(matrix.clone(), cfg).unwrap();
            for algo in ["JAG-M-OPT-BEST", "JAG-PQ-OPT-BEST", "HIER-RB-LOAD"] {
                engine.solve(&Query::new(algo, 7)).unwrap();
            }
            let delta = updates(20, 28, 4, 3);
            engine.apply_delta(&delta).unwrap();

            // A cold engine over the already-patched matrix is the oracle.
            let mut patched = matrix;
            for u in &delta {
                patched.data_mut()[u.row * 28..(u.row + 1) * 28].copy_from_slice(&u.cells);
            }
            let cfg = EngineConfig {
                gamma_mode: mode,
                ..EngineConfig::default()
            };
            let mut cold = Engine::with_config(patched, cfg).unwrap();
            for algo in ["JAG-M-OPT-BEST", "JAG-PQ-OPT-BEST", "HIER-RB-LOAD"] {
                let q = Query::new(algo, 7);
                let warm = engine.solve(&q).unwrap();
                assert!(!warm.warm_hit, "{algo} must re-solve after the delta");
                assert_eq!(
                    warm.partition,
                    cold.solve(&q).unwrap().partition,
                    "{algo} warm re-solve diverged from cold ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn patch_and_rebuild_paths_agree_with_fresh_gamma() {
        for (k, label) in [(2, "patch"), (18, "rebuild")] {
            let matrix = test_matrix(20, 16, 4);
            let mut engine = Engine::new(matrix.clone()).unwrap();
            let delta = updates(20, 16, k, 5 + k as u64);
            engine.apply_delta(&delta).unwrap();

            let mut patched = matrix;
            for u in &delta {
                patched.data_mut()[u.row * 16..(u.row + 1) * 16].copy_from_slice(&u.cells);
            }
            let fresh = PrefixSum2D::try_new_with(&patched, GammaMode::Auto).unwrap();
            assert_eq!(engine.prefix().total(), fresh.total(), "{label}");
            assert_eq!(engine.prefix().max_cell(), fresh.max_cell(), "{label}");
            assert_eq!(engine.prefix().min_cell(), fresh.min_cell(), "{label}");
            assert_eq!(engine.matrix().data(), patched.data(), "{label}");
            for (r0, r1, c0, c1) in [(0, 20, 0, 16), (3, 9, 2, 14), (11, 12, 0, 1)] {
                assert_eq!(
                    engine.prefix().load4(r0, r1, c0, c1),
                    fresh.load4(r0, r1, c0, c1),
                    "{label} load {r0}..{r1} {c0}..{c1}"
                );
            }
            assert_eq!(engine.epoch(), 1);
        }
    }

    #[test]
    fn delta_validation_is_atomic() {
        let matrix = test_matrix(10, 10, 6);
        let mut engine = Engine::new(matrix.clone()).unwrap();
        let bad = vec![
            RowUpdate {
                row: 0,
                cells: vec![1; 10],
            },
            RowUpdate {
                row: 10,
                cells: vec![1; 10],
            },
        ];
        assert_eq!(
            engine.apply_delta(&bad),
            Err(RectpartError::RowOutOfRange { row: 10, rows: 10 })
        );
        let ragged = vec![RowUpdate {
            row: 0,
            cells: vec![1; 9],
        }];
        assert!(matches!(
            engine.apply_delta(&ragged),
            Err(RectpartError::RaggedRow { row: 0, .. })
        ));
        assert_eq!(engine.matrix().data(), matrix.data());
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.stats().delta_rows_patched, 0);
    }

    #[test]
    fn region_query_matches_cold_submatrix_solve() {
        let matrix = test_matrix(30, 26, 7);
        let mut engine = Engine::new(matrix.clone()).unwrap();
        let region = Rect::new(4, 20, 3, 23);
        let q = Query {
            region: Some(region),
            ..Query::new("JAG-M-OPT-BEST", 5)
        };
        let got = engine.solve(&q).unwrap();
        let sub = LoadMatrix::from_fn(16, 20, |r, c| matrix.get(4 + r, 3 + c));
        let pfx = PrefixSum2D::new(&sub);
        let oracle = JagMOpt::default().partition(&pfx, 5);
        for (g, o) in got.partition.rects().iter().zip(oracle.rects()) {
            assert_eq!(
                (g.r0, g.r1, g.c0, g.c1),
                (o.r0 + 4, o.r1 + 4, o.c0 + 3, o.c1 + 3)
            );
        }
        // Repeat is a warm hit with identical coordinates.
        let again = engine.solve(&q).unwrap();
        assert!(again.warm_hit);
        assert_eq!(again.partition, got.partition);
    }

    #[test]
    fn bad_regions_are_rejected() {
        let mut engine = Engine::new(test_matrix(8, 8, 8)).unwrap();
        for bad in [
            Rect::new(2, 2, 0, 4), // empty rows
            Rect::new(0, 4, 3, 3), // empty cols
            Rect::new(0, 9, 0, 4), // rows out of range
            Rect::new(0, 4, 0, 9), // cols out of range
        ] {
            let q = Query {
                region: Some(bad),
                ..Query::new("RECT-UNIFORM", 2)
            };
            assert!(matches!(
                engine.solve(&q),
                Err(RectpartError::RegionOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn threshold_policy_serves_stale_partitions() {
        let matrix = test_matrix(16, 16, 9);
        let lazy_cfg = EngineConfig {
            rebalance: RebalancePolicy::Threshold(f64::INFINITY),
            ..EngineConfig::default()
        };
        let mut lazy = Engine::with_config(matrix.clone(), lazy_cfg).unwrap();
        let mut eager = Engine::new(matrix).unwrap();
        let q = Query::new("JAG-M-HEUR-BEST", 4);
        let before = lazy.solve(&q).unwrap();
        eager.solve(&q).unwrap();
        let delta = updates(16, 16, 2, 10);
        lazy.apply_delta(&delta).unwrap();
        eager.apply_delta(&delta).unwrap();

        let stale = lazy.solve(&q).unwrap();
        assert!(
            stale.warm_hit,
            "infinite threshold must reuse the stale cut"
        );
        assert_eq!(stale.partition, before.partition);

        let fresh = eager.solve(&q).unwrap();
        assert!(!fresh.warm_hit, "EverySnapshot must re-solve after a delta");
    }

    #[test]
    fn budget_queries_run_through_the_driver() {
        let mut engine = Engine::new(test_matrix(12, 12, 11)).unwrap();
        let q = Query {
            budget: Some(2),
            fallback: vec!["RECT-UNIFORM".into()],
            ..Query::new("JAG-M-OPT-BEST", 4)
        };
        // A 2-unit budget cannot even admit Γ construction for the
        // optimal rung; the driver reports whichever rung answered.
        match engine.solve(&q) {
            Ok(out) => assert!(!out.answered_by.is_empty()),
            Err(e) => assert!(matches!(e, RectpartError::BudgetExhausted { .. })),
        }
        // An unbudgeted ladder answers with the head rung.
        let q = Query {
            fallback: vec!["RECT-UNIFORM".into()],
            ..Query::new("JAG-M-HEUR-BEST", 4)
        };
        let out = engine.solve(&q).unwrap();
        assert_eq!(out.answered_by, "JAG-M-HEUR-BEST");
        // And is cached like any other query.
        assert!(engine.solve(&q).unwrap().warm_hit);
    }

    #[test]
    fn unknown_algorithms_and_zero_parts_error() {
        let mut engine = Engine::new(test_matrix(6, 6, 12)).unwrap();
        assert!(matches!(
            engine.solve(&Query::new("NOPE", 2)),
            Err(RectpartError::UnknownAlgorithm(_))
        ));
        assert_eq!(
            engine.solve(&Query::new("RECT-UNIFORM", 0)),
            Err(RectpartError::ZeroParts)
        );
        assert!(matches!(
            engine.solve(&Query::new("RECT-UNIFORM", 37)),
            Err(RectpartError::TooManyParts { .. })
        ));
    }

    #[test]
    fn batch_run_interleaves_solves_and_deltas() {
        let mut engine = Engine::new(test_matrix(14, 14, 13)).unwrap();
        let q = Query::new("JAG-PQ-OPT-BEST", 4);
        let batch = vec![
            Request::Solve(q.clone()),
            Request::Solve(q.clone()),
            Request::Delta(updates(14, 14, 3, 14)),
            Request::Solve(q.clone()),
        ];
        let responses = engine.run(&batch).unwrap();
        assert_eq!(responses.len(), 4);
        match (&responses[1], &responses[2]) {
            (Response::Solved(out), Response::Patched(k)) => {
                assert!(out.warm_hit);
                assert!(*k >= 1);
            }
            other => panic!("unexpected responses: {other:?}"),
        }
        let s = engine.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.warm_hits, 1);
        assert!(s.delta_rows_patched >= 1);
    }
}
