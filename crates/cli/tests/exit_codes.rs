//! End-to-end exit-code contract of the `rectpart` binary: scripts and
//! batch drivers distinguish usage errors (2) from invalid input (3)
//! from budget exhaustion (4) from internal failures (1).

use std::path::PathBuf;
use std::process::{Command, Output};

fn rectpart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rectpart"))
        .args(args)
        .output()
        .expect("spawn rectpart binary")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rectpart-exit-{}-{name}", std::process::id()))
}

#[test]
fn help_and_success_exit_zero() {
    let out = rectpart(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let out = rectpart(&["algos"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("JAG-M-OPT-BEST"));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["frobnicate"][..],
        &["partition", "--input", "a.csv"][..], // missing -m
        &["partition", "--input", "a.csv", "-m", "nope"][..],
        &["generate", "--class", "peak", "--rows", "4"][..], // missing cols/out
    ] {
        let out = rectpart(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn invalid_input_exits_three() {
    // Nonexistent file.
    let out = rectpart(&["partition", "--input", "/nonexistent/x.csv", "-m", "4"]);
    assert_eq!(out.status.code(), Some(3));
    // Ragged CSV.
    let ragged = tmp("ragged.csv");
    std::fs::write(&ragged, "1,2,3\n4,5\n").unwrap();
    let out = rectpart(&["partition", "--input", ragged.to_str().unwrap(), "-m", "2"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Infeasible m (more parts than cells).
    let tiny = tmp("tiny.csv");
    std::fs::write(&tiny, "1,2\n3,4\n").unwrap();
    let out = rectpart(&["partition", "--input", tiny.to_str().unwrap(), "-m", "9"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = rectpart(&["partition", "--input", tiny.to_str().unwrap(), "-m", "0"]);
    assert_eq!(out.status.code(), Some(3));
    std::fs::remove_file(&ragged).ok();
    std::fs::remove_file(&tiny).ok();
}

#[test]
fn exhausted_budget_exits_four_and_reports_the_ladder() {
    let input = tmp("budget.csv");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--budget",
        "2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget"), "{stderr}");
    assert!(stderr.contains("skipped"), "{stderr}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn budgeted_run_that_fits_exits_zero_with_fallback_report() {
    let input = tmp("fallback.csv");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--budget",
        "1000000",
        "--fallback",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fallback:"), "{stdout}");
    assert!(stdout.contains("answered"), "{stdout}");
    std::fs::remove_file(&input).ok();
}
