//! End-to-end exit-code contract of the `rectpart` binary: scripts and
//! batch drivers distinguish usage errors (2) from invalid input (3)
//! from budget exhaustion (4) from unusable snapshots (5) from internal
//! failures (1).

use std::path::PathBuf;
use std::process::{Command, Output};

fn rectpart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rectpart"))
        .args(args)
        .output()
        .expect("spawn rectpart binary")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rectpart-exit-{}-{name}", std::process::id()))
}

#[test]
fn help_and_success_exit_zero() {
    let out = rectpart(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let out = rectpart(&["algos"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("JAG-M-OPT-BEST"));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["frobnicate"][..],
        &["partition", "--input", "a.csv"][..], // missing -m
        &["partition", "--input", "a.csv", "-m", "nope"][..],
        &["generate", "--class", "peak", "--rows", "4"][..], // missing cols/out
    ] {
        let out = rectpart(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn invalid_input_exits_three() {
    // Nonexistent file.
    let out = rectpart(&["partition", "--input", "/nonexistent/x.csv", "-m", "4"]);
    assert_eq!(out.status.code(), Some(3));
    // Ragged CSV.
    let ragged = tmp("ragged.csv");
    std::fs::write(&ragged, "1,2,3\n4,5\n").unwrap();
    let out = rectpart(&["partition", "--input", ragged.to_str().unwrap(), "-m", "2"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Infeasible m (more parts than cells).
    let tiny = tmp("tiny.csv");
    std::fs::write(&tiny, "1,2\n3,4\n").unwrap();
    let out = rectpart(&["partition", "--input", tiny.to_str().unwrap(), "-m", "9"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = rectpart(&["partition", "--input", tiny.to_str().unwrap(), "-m", "0"]);
    assert_eq!(out.status.code(), Some(3));
    std::fs::remove_file(&ragged).ok();
    std::fs::remove_file(&tiny).ok();
}

#[test]
fn exhausted_budget_exits_four_and_reports_the_ladder() {
    let input = tmp("budget.csv");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--budget",
        "2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget"), "{stderr}");
    assert!(stderr.contains("skipped"), "{stderr}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn budgeted_run_that_fits_exits_zero_with_fallback_report() {
    let input = tmp("fallback.csv");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--budget",
        "1000000",
        "--fallback",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fallback:"), "{stdout}");
    assert!(stdout.contains("answered"), "{stdout}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn checkpointed_run_resumes_with_exit_zero_and_identical_report() {
    let input = tmp("resume.csv");
    let snap = tmp("resume.snap");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--checkpoint",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let watched = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(watched.contains("checkpoint    ->"), "{watched}");
    assert!(snap.exists(), "checkpoint file must be left behind");
    // Resume from the snapshot in a fresh process: exit 0 and the same
    // partition-quality report (everything before the checkpoint line).
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--resume",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let resumed = String::from_utf8_lossy(&out.stdout).to_string();
    let quality = |s: &str| {
        s.lines()
            .take_while(|l| !l.contains("checkpoint") && !l.starts_with("fallback:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(quality(&resumed), quality(&watched));
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn corrupt_or_mismatched_snapshots_exit_five() {
    let input = tmp("snap5.csv");
    let snap = tmp("snap5.snap");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    // Write a genuine checkpoint first.
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--checkpoint",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let pristine = std::fs::read_to_string(&snap).unwrap();

    // Torn write: a strict prefix of the file.
    std::fs::write(&snap, &pristine[..pristine.len() / 2]).unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--resume",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("snapshot"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Checksum corruption: one flipped payload byte under an intact
    // footer.
    let mut evil = pristine.clone().into_bytes();
    evil[10] ^= 0x01;
    std::fs::write(&snap, &evil).unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--resume",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(5));

    // A pristine snapshot resumed against the wrong instance.
    std::fs::write(&snap, &pristine).unwrap();
    let other = tmp("snap5-other.csv");
    std::fs::write(&other, "16,15,14,13\n12,11,10,9\n8,7,6,5\n4,3,2,1\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        other.to_str().unwrap(),
        "-m",
        "4",
        "--resume",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&other).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn stats_json_reports_budget_and_fallback_ladder() {
    let input = tmp("stats.csv");
    let stats = tmp("stats.json");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--budget",
        "1000000",
        "--fallback",
        "--stats",
        stats.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = rectpart_json::parse(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    assert_eq!(json.get("budget").and_then(|j| j.as_u64()), Some(1_000_000));
    let ladder = json
        .get("fallback")
        .and_then(|j| j.as_array())
        .expect("fallback rung-name array");
    let names: Vec<&str> = ladder.iter().filter_map(|j| j.as_str()).collect();
    assert_eq!(
        names,
        vec!["JAG-M-HEUR-BEST", "JAG-M-OPT-BEST", "RECT-UNIFORM"]
    );
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&stats).ok();
}
