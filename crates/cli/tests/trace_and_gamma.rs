//! End-to-end checks that need their own process: the `--gamma` policy
//! lives in a process-global, and span traces are process-global too, so
//! these run the `rectpart` binary instead of calling `run()` in-process.
//!
//! Covers:
//! * `--gamma auto` backend selection straddling the 75% zero-density
//!   threshold, observed through the stats JSON `gamma_backend` field;
//! * the stats JSON environment fields (`gamma_mode`, `gamma_backend`,
//!   `host_cores`);
//! * `--trace-out`: the emitted Chrome trace-event JSON parses with
//!   `rectpart-json` and round-trips through it bit-identically, and the
//!   `.folded` variant emits collapsed stacks.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rectpart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rectpart"))
        .args(args)
        .output()
        .expect("spawn rectpart binary")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rectpart-tg-{}-{name}", std::process::id()))
}

/// Runs `partition --gamma auto --stats FILE` on `csv` and returns the
/// parsed stats JSON.
fn stats_for(csv: &str, name: &str) -> rectpart_json::Json {
    let input = tmp(&format!("{name}.csv"));
    let stats = tmp(&format!("{name}.json"));
    std::fs::write(&input, csv).unwrap();
    let out = rectpart(&[
        "partition",
        "--gamma",
        "auto",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "2",
        "--algo",
        "RECT-UNIFORM",
        "--stats",
        stats.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = rectpart_json::parse(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&stats).ok();
    json
}

#[test]
fn gamma_auto_straddles_the_zero_density_threshold() {
    // 4x4 = 16 cells; the auto policy takes the sparse backend at >= 75%
    // zeros (12 of 16) and stays dense one zero below (11 of 16).
    let sparse = stats_for("1,0,0,0\n0,2,0,0\n0,0,3,0\n0,0,0,4\n", "sparse12");
    assert_eq!(
        sparse.get("gamma_backend").and_then(|j| j.as_str()),
        Some("sparse"),
        "12/16 zeros must select the sparse backend"
    );
    let dense = stats_for("1,0,0,0\n0,2,0,0\n0,0,3,0\n0,0,5,4\n", "dense11");
    assert_eq!(
        dense.get("gamma_backend").and_then(|j| j.as_str()),
        Some("dense"),
        "11/16 zeros must stay on the dense backend"
    );
    // Both runs report the policy that was in effect and the host shape.
    for json in [&sparse, &dense] {
        assert_eq!(
            json.get("gamma_mode").and_then(|j| j.as_str()),
            Some("auto")
        );
        let cores = json
            .get("host_cores")
            .and_then(|j| j.as_u64())
            .expect("host_cores present");
        assert!(cores >= 1);
    }
}

#[test]
fn trace_out_emits_parseable_roundtripping_chrome_json() {
    let input = tmp("trace.csv");
    let trace = tmp("trace.json");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--algo",
        "HIER-RB-LOAD",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace         ->"));
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = rectpart_json::parse(&text).expect("trace must be valid JSON");
    // Round-trip: re-serializing and re-parsing reproduces the document.
    let reparsed = rectpart_json::parse(&doc.to_string_pretty()).unwrap();
    assert_eq!(doc.to_string_pretty(), reparsed.to_string_pretty());
    let events = doc.get("traceEvents").expect("traceEvents array");
    let rectpart_json::Json::Arr(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("format"))
            .and_then(|j| j.as_str()),
        Some("rectpart-span-trace")
    );
    if cfg!(feature = "obs") {
        assert!(!events.is_empty(), "obs build must record span events");
        assert!(
            text.contains("cli.partition"),
            "root partition span expected in the trace"
        );
    } else {
        assert!(events.is_empty(), "without obs the trace is empty");
    }
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_out_folded_emits_collapsed_stacks() {
    let input = tmp("folded.csv");
    let trace = tmp("trace.folded");
    std::fs::write(&input, "1,2,3,4\n5,6,7,8\n9,10,11,12\n13,14,15,16\n").unwrap();
    let out = rectpart(&[
        "partition",
        "--input",
        input.to_str().unwrap(),
        "-m",
        "4",
        "--algo",
        "JAG-M-HEUR-BEST",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    if cfg!(feature = "obs") {
        // Every line is "stack <count>" with the rectpart root frame.
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with("rectpart"), "bad folded line: {line}");
            let (_, count) = line.rsplit_once(' ').expect("space-separated count");
            count.parse::<u64>().expect("numeric leaf value");
        }
        assert!(
            text.contains("rectpart;cli.partition"),
            "partition span missing:\n{text}"
        );
    } else {
        assert!(text.is_empty(), "without obs the folded output is empty");
    }
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_out_requires_a_file_value() {
    let out = rectpart(&["partition", "--input", "a.csv", "-m", "2", "--trace-out"]);
    assert_eq!(out.status.code(), Some(2));
}
