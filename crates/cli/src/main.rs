//! Thin entry point for the `rectpart` CLI; all logic lives in the
//! library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match rectpart_cli::apply_global_threads(&args)
        .and_then(|rest| rectpart_cli::apply_global_gamma(&rest))
    {
        Ok(rest) => rest,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", rectpart_cli::usage());
            std::process::exit(2);
        }
    };
    match rectpart_cli::parse(&args) {
        Err(e) => {
            eprintln!("error: {e}\n\n{}", rectpart_cli::usage());
            std::process::exit(2);
        }
        Ok(cmd) => match rectpart_cli::run(cmd) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        },
    }
}
