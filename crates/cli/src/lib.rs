#![warn(missing_docs)]

//! Implementation of the `rectpart` command-line tool.
//!
//! Three subcommands:
//!
//! * `generate` — write one of the paper's instance classes as CSV;
//! * `partition` — partition a CSV load matrix with any algorithm, print
//!   the quality report, optionally write the cell→processor owner map;
//! * `evaluate` — additionally price the partition under the BSP
//!   communication model.
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is a
//! thin wrapper.

mod registry;

pub use registry::{algorithm_by_name, algorithm_names};

use std::path::PathBuf;

use rectpart_core::{LoadMatrix, PartitionStats, PrefixSum2D};
use rectpart_simexec::{CommModel, Simulator};
use rectpart_workloads::io::{read_csv, write_csv};
use rectpart_workloads::{diagonal, multi_peak, peak, slac_like, uniform};

/// A parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `rectpart generate --class C --rows R --cols C --seed S [--delta D] --out F`
    Generate {
        /// Instance class name.
        class: String,
        /// Output rows.
        rows: usize,
        /// Output columns.
        cols: usize,
        /// RNG seed.
        seed: u64,
        /// Heterogeneity for the uniform class.
        delta: f64,
        /// CSV destination.
        out: PathBuf,
    },
    /// `rectpart partition --input F --algo A -m M [--owners F] [--save F]`
    Partition {
        /// CSV load matrix to read.
        input: PathBuf,
        /// Algorithm name (see `rectpart algos`).
        algo: String,
        /// Processor count.
        m: usize,
        /// Optional owner-map CSV destination.
        owners: Option<PathBuf>,
        /// Optional partition JSON destination.
        save: Option<PathBuf>,
    },
    /// `rectpart evaluate --input F --algo A -m M`
    Evaluate {
        /// CSV load matrix to read.
        input: PathBuf,
        /// Algorithm name (see `rectpart algos`).
        algo: String,
        /// Processor count.
        m: usize,
    },
    /// `rectpart algos`
    Algos,
    /// `rectpart --help`
    Help,
}

/// Errors surfaced to the user with exit code 2.
#[derive(Debug, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, UsageError> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| UsageError(format!("invalid value for {name}: {v:?}"))),
    }
}

fn require<T>(v: Option<T>, name: &str) -> Result<T, UsageError> {
    v.ok_or_else(|| UsageError(format!("missing required option {name}")))
}

/// Extracts the global `--threads N` option, installs it as the
/// process-wide worker-thread budget for the parallel execution layer
/// (`0`/absent = auto-detect; `1` = serial), and returns the remaining
/// arguments for [`parse`]. Valid in any position with every
/// subcommand; if given more than once the last occurrence wins.
pub fn apply_global_threads(args: &[String]) -> Result<Vec<String>, UsageError> {
    let mut rest = args.to_vec();
    while let Some(i) = rest.iter().position(|a| a == "--threads") {
        let Some(v) = rest.get(i + 1) else {
            return Err(UsageError("--threads requires a value".into()));
        };
        let n: usize = v
            .parse()
            .map_err(|_| UsageError(format!("invalid value for --threads: {v:?}")))?;
        rectpart_parallel::set_global_threads(n);
        rest.drain(i..=i + 1);
    }
    Ok(rest)
}

/// Parses a full argument vector (excluding the binary name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "algos" => Ok(Command::Algos),
        "generate" => Ok(Command::Generate {
            class: require(flag(args, "--class").map(str::to_string), "--class")?,
            rows: require(parse_flag(args, "--rows")?, "--rows")?,
            cols: require(parse_flag(args, "--cols")?, "--cols")?,
            seed: parse_flag(args, "--seed")?.unwrap_or(0),
            delta: parse_flag(args, "--delta")?.unwrap_or(1.2),
            out: require(flag(args, "--out").map(PathBuf::from), "--out")?,
        }),
        "partition" => Ok(Command::Partition {
            input: require(flag(args, "--input").map(PathBuf::from), "--input")?,
            algo: flag(args, "--algo")
                .unwrap_or("JAG-M-HEUR-BEST")
                .to_string(),
            m: require(parse_flag(args, "-m")?, "-m")?,
            owners: flag(args, "--owners").map(PathBuf::from),
            save: flag(args, "--save").map(PathBuf::from),
        }),
        "evaluate" => Ok(Command::Evaluate {
            input: require(flag(args, "--input").map(PathBuf::from), "--input")?,
            algo: flag(args, "--algo")
                .unwrap_or("JAG-M-HEUR-BEST")
                .to_string(),
            m: require(parse_flag(args, "-m")?, "-m")?,
        }),
        other => Err(UsageError(format!("unknown subcommand {other:?}"))),
    }
}

/// Generates an instance of the named class.
pub fn generate_matrix(
    class: &str,
    rows: usize,
    cols: usize,
    seed: u64,
    delta: f64,
) -> Result<LoadMatrix, UsageError> {
    match class {
        "uniform" => Ok(uniform(rows, cols, seed).delta(delta).build()),
        "diagonal" => Ok(diagonal(rows, cols, seed).build()),
        "peak" => Ok(peak(rows, cols, seed).build()),
        "multi-peak" => Ok(multi_peak(rows, cols, seed).build()),
        "mesh" => Ok(slac_like()),
        other => Err(UsageError(format!(
            "unknown class {other:?} (uniform, diagonal, peak, multi-peak, mesh)"
        ))),
    }
}

/// Executes a parsed command; returns the text to print.
pub fn run(cmd: Command) -> Result<String, Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::Algos => Ok(algorithm_names().join("\n")),
        Command::Generate {
            class,
            rows,
            cols,
            seed,
            delta,
            out,
        } => {
            let m = generate_matrix(&class, rows, cols, seed, delta)?;
            write_csv(&m, &out)?;
            Ok(format!(
                "wrote {}x{} {class} instance (total load {}) to {}",
                m.rows(),
                m.cols(),
                m.total(),
                out.display()
            ))
        }
        Command::Partition {
            input,
            algo,
            m,
            owners,
            save,
        } => {
            let matrix = read_csv(&input)?;
            let pfx = PrefixSum2D::new(&matrix);
            let algorithm = algorithm_by_name(&algo).ok_or_else(|| {
                UsageError(format!("unknown algorithm {algo:?}; see `rectpart algos`")).0
            })?;
            let part = algorithm.partition(&pfx, m);
            part.validate(&pfx)?;
            let stats = PartitionStats::compute(&pfx, &part);
            let mut out = format!(
                "{algo} on {}x{} with m={m}:\n  Lmax          = {}\n  lower bound   = {}\n  imbalance     = {:.4}\n  active parts  = {}\n  loads         = {}..{} (sd {:.1})\n  max aspect    = {:.2}\n  perimeter     = {}",
                matrix.rows(),
                matrix.cols(),
                part.lmax(&pfx),
                pfx.lower_bound(m),
                part.load_imbalance(&pfx),
                part.active_parts(),
                stats.lmin,
                stats.lmax,
                stats.stddev,
                stats.max_aspect,
                stats.total_perimeter,
            );
            if let Some(path) = owners {
                let owner_matrix = LoadMatrix::from_vec(
                    matrix.rows(),
                    matrix.cols(),
                    part.owner_map(matrix.rows(), matrix.cols()),
                );
                write_csv(&owner_matrix, &path)?;
                out.push_str(&format!("\n  owners        -> {}", path.display()));
            }
            if let Some(path) = save {
                std::fs::write(&path, rectpart_json::to_string_pretty(&part))?;
                out.push_str(&format!("\n  partition     -> {}", path.display()));
            }
            Ok(out)
        }
        Command::Evaluate { input, algo, m } => {
            let matrix = read_csv(&input)?;
            let pfx = PrefixSum2D::new(&matrix);
            let algorithm = algorithm_by_name(&algo).ok_or_else(|| {
                UsageError(format!("unknown algorithm {algo:?}; see `rectpart algos`")).0
            })?;
            let part = algorithm.partition(&pfx, m);
            part.validate(&pfx)?;
            let rep = Simulator::new(CommModel::default()).evaluate(&pfx, &part);
            Ok(format!(
                "{algo} on {}x{} with m={m}:\n  imbalance     = {:.4}\n  makespan      = {:.1}\n  halo volume   = {}\n  max neighbors = {}\n  speedup       = {:.2}\n  efficiency    = {:.1}%",
                matrix.rows(),
                matrix.cols(),
                part.load_imbalance(&pfx),
                rep.makespan,
                rep.comm_volume_total,
                rep.max_neighbors,
                rep.speedup,
                100.0 * rep.efficiency,
            ))
        }
    }
}

/// The usage text.
pub fn usage() -> String {
    "rectpart — rectangle partitioning of spatially located computations (IPDPS 2011)

USAGE:
  rectpart generate --class <uniform|diagonal|peak|multi-peak|mesh>
                    --rows N --cols N [--seed S] [--delta D] --out FILE.csv
  rectpart partition --input FILE.csv -m N [--algo NAME] [--owners OUT.csv]
                     [--save PARTITION.json]
  rectpart evaluate  --input FILE.csv -m N [--algo NAME]
  rectpart algos

GLOBAL OPTIONS:
  --threads N    worker threads for the parallel execution layer
                 (default: auto-detect; 1 = fully serial; results are
                 identical at any thread count)
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv(
            "generate --class peak --rows 32 --cols 48 --seed 7 --out /tmp/x.csv",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                class: "peak".into(),
                rows: 32,
                cols: 48,
                seed: 7,
                delta: 1.2,
                out: PathBuf::from("/tmp/x.csv"),
            }
        );
    }

    #[test]
    fn parses_partition_with_defaults() {
        let cmd = parse(&argv("partition --input a.csv -m 16")).unwrap();
        assert_eq!(
            cmd,
            Command::Partition {
                input: PathBuf::from("a.csv"),
                algo: "JAG-M-HEUR-BEST".into(),
                m: 16,
                owners: None,
                save: None,
            }
        );
    }

    #[test]
    fn rejects_missing_and_bad_options() {
        assert!(parse(&argv("generate --class peak --rows 2 --out x")).is_err());
        assert!(parse(&argv("partition --input a.csv -m nope")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("algos")).unwrap(), Command::Algos);
    }

    #[test]
    fn generate_matrix_classes() {
        for class in ["uniform", "diagonal", "peak", "multi-peak"] {
            let m = generate_matrix(class, 8, 8, 1, 1.5).unwrap();
            assert_eq!((m.rows(), m.cols()), (8, 8));
        }
        assert!(generate_matrix("nope", 8, 8, 1, 1.5).is_err());
    }

    #[test]
    fn end_to_end_generate_partition_evaluate() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-{}.csv", std::process::id()));
        let owners = dir.join(format!("rectpart-cli-owners-{}.csv", std::process::id()));
        let msg = run(Command::Generate {
            class: "multi-peak".into(),
            rows: 24,
            cols: 24,
            seed: 3,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        assert!(msg.contains("multi-peak"));
        let msg = run(Command::Partition {
            input: input.clone(),
            algo: "HIER-RELAXED-LOAD".into(),
            m: 9,
            owners: Some(owners.clone()),
            save: None,
        })
        .unwrap();
        assert!(msg.contains("imbalance"));
        assert!(owners.exists());
        let msg = run(Command::Evaluate {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 9,
        })
        .unwrap();
        assert!(msg.contains("speedup"));
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&owners).ok();
    }

    #[test]
    fn save_writes_roundtrippable_partition_json() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-save-in-{}.csv", std::process::id()));
        let saved = dir.join(format!("rectpart-cli-save-{}.json", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 16,
            cols: 16,
            seed: 1,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: Some(saved.clone()),
        })
        .unwrap();
        let json = std::fs::read_to_string(&saved).unwrap();
        let part: rectpart_core::Partition = rectpart_json::from_str(&json).unwrap();
        assert_eq!(part.parts(), 4);
        assert!(part.validate_dims(16, 16).is_ok());
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&saved).ok();
    }

    #[test]
    fn unknown_algorithm_is_reported() {
        let input =
            std::env::temp_dir().join(format!("rectpart-cli-unknown-{}.csv", std::process::id()));
        std::fs::write(&input, "1,2\n3,4\n").unwrap();
        let err = run(Command::Partition {
            input: input.clone(),
            algo: "NOT-AN-ALGO".into(),
            m: 2,
            owners: None,
            save: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown algorithm"));
        std::fs::remove_file(&input).ok();
    }
}
