#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Implementation of the `rectpart` command-line tool.
//!
//! Three subcommands:
//!
//! * `generate` — write one of the paper's instance classes as CSV;
//! * `partition` — partition a CSV load matrix with any algorithm, print
//!   the quality report, optionally write the cell→processor owner map;
//! * `evaluate` — additionally price the partition under the BSP
//!   communication model.
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is a
//! thin wrapper.

// The name → algorithm registry lives in rectpart-core (shared with the
// fault-tolerant driver); re-exported here for backwards compatibility.
pub use rectpart_core::{algorithm_by_name, algorithm_names};

use std::path::PathBuf;

use rectpart_core::{
    GammaMode, LoadMatrix, PartitionError, PartitionStats, PrefixSum2D, Rect, RectpartError,
    RowUpdate,
};
use rectpart_engine::{Engine, EngineConfig, EngineStats, Query, RebalancePolicy, Request};
use rectpart_robust::{DriverFailure, SolverDriver, DEFAULT_LADDER};
use rectpart_simexec::{CommModel, Simulator};
use rectpart_workloads::io::{read_csv, write_csv};
use rectpart_workloads::{diagonal, multi_peak, peak, slac_like, uniform};

/// A parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `rectpart generate --class C --rows R --cols C --seed S [--delta D] --out F`
    Generate {
        /// Instance class name.
        class: String,
        /// Output rows.
        rows: usize,
        /// Output columns.
        cols: usize,
        /// RNG seed.
        seed: u64,
        /// Heterogeneity for the uniform class.
        delta: f64,
        /// CSV destination.
        out: PathBuf,
    },
    /// `rectpart partition --input F --algo A -m M [--owners F] [--save F]
    /// [--stats [F]]`
    Partition {
        /// CSV load matrix to read.
        input: PathBuf,
        /// Algorithm name (see `rectpart algos`).
        algo: String,
        /// Processor count.
        m: usize,
        /// Optional owner-map CSV destination.
        owners: Option<PathBuf>,
        /// Optional partition JSON destination.
        save: Option<PathBuf>,
        /// Optional stats JSON destination (`-` = append to stdout
        /// output). `None` falls back to the `RECTPART_STATS` env var.
        stats: Option<String>,
        /// Optional span-trace destination: Chrome trace-event JSON, or
        /// collapsed stacks when the filename ends in `.folded`. `None`
        /// falls back to the `RECTPART_TRACE` env var.
        trace: Option<String>,
        /// Deterministic work budget for the fault-tolerant driver.
        budget: Option<u64>,
        /// Fallback ladder: `Some("-")` = default ladder, otherwise a
        /// comma-separated algorithm list. `None` = direct solve.
        fallback: Option<String>,
        /// Checksummed progress-snapshot destination; written at every
        /// ladder rung boundary and on cancellation.
        checkpoint: Option<PathBuf>,
        /// Minimum work units between routine snapshots (0 = every
        /// rung boundary).
        checkpoint_interval: Option<u64>,
        /// Snapshot file to resume a previous run from; the ladder and
        /// budget recorded in the snapshot are used.
        resume: Option<PathBuf>,
    },
    /// `rectpart evaluate --input F --algo A -m M [--stats [F]]`
    Evaluate {
        /// CSV load matrix to read.
        input: PathBuf,
        /// Algorithm name (see `rectpart algos`).
        algo: String,
        /// Processor count.
        m: usize,
        /// Optional stats JSON destination (see `Partition::stats`).
        stats: Option<String>,
        /// Optional span-trace destination (see `Partition::trace`).
        trace: Option<String>,
    },
    /// `rectpart serve --input F --queries Q.json [--out R.json]
    /// [--rebalance-threshold T] [--budget UNITS] [--stats [F]]`
    Serve {
        /// CSV load matrix the engine stays resident on.
        input: PathBuf,
        /// JSON request batch (see the usage text for the format).
        queries: PathBuf,
        /// Optional per-request results JSON destination.
        out: Option<PathBuf>,
        /// Stale partitions keep serving while their imbalance on the
        /// current (delta-patched) matrix stays at or below this, the
        /// `simexec::dynamic` rebalance trigger. `None` re-solves after
        /// every delta (the bit-identity default).
        rebalance_threshold: Option<f64>,
        /// Default per-query work budget; routes queries through the
        /// fault-tolerant driver.
        budget: Option<u64>,
        /// Optional stats JSON destination (see `Partition::stats`).
        stats: Option<String>,
        /// Optional span-trace destination (see `Partition::trace`).
        trace: Option<String>,
    },
    /// `rectpart algos`
    Algos,
    /// `rectpart --help`
    Help,
}

/// Errors surfaced to the user with exit code 2.
#[derive(Debug, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// A classified command failure; each class maps to a distinct nonzero
/// exit code so scripts can tell a bad invocation from bad data from an
/// exhausted budget (see [`CliError::exit_code`]).
#[derive(Debug)]
pub enum CliError {
    /// Malformed command line (exit 2).
    Usage(UsageError),
    /// Well-formed command, unusable data: unreadable/ragged CSV,
    /// degenerate matrix, infeasible `m` (exit 3).
    Input(String),
    /// The work budget ran out before any ladder rung could be
    /// admitted (exit 4).
    Budget(String),
    /// A `--resume` snapshot that cannot be trusted: torn or corrupt
    /// file, or a snapshot of a different instance (exit 5).
    Snapshot(String),
    /// Everything else — an algorithm bug or environment failure
    /// (exit 1).
    Internal(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Budget(_) => 4,
            CliError::Snapshot(_) => 5,
            CliError::Internal(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Input(m)
            | CliError::Budget(m)
            | CliError::Snapshot(m)
            | CliError::Internal(m) => {
                write!(f, "{m}")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        // Every path the CLI reads or writes was named by the user.
        CliError::Input(e.to_string())
    }
}

impl From<PartitionError> for CliError {
    fn from(e: PartitionError) -> Self {
        CliError::Internal(format!("algorithm produced an invalid partition: {e}"))
    }
}

impl From<RectpartError> for CliError {
    fn from(e: RectpartError) -> Self {
        if e.is_input_error() {
            CliError::Input(e.to_string())
        } else if matches!(e, RectpartError::BudgetExhausted { .. }) {
            CliError::Budget(e.to_string())
        } else if matches!(e, RectpartError::SnapshotCorrupt { .. }) {
            CliError::Snapshot(e.to_string())
        } else {
            CliError::Internal(e.to_string())
        }
    }
}

impl From<DriverFailure> for CliError {
    fn from(f: DriverFailure) -> Self {
        // Attach the degradation report so the user sees how far the
        // ladder got before classifying the terminal error.
        let detail = format!("{}\n{}", f.error, f.report);
        match &f.error {
            e if e.is_input_error() => CliError::Input(detail),
            RectpartError::BudgetExhausted { .. } => CliError::Budget(detail),
            RectpartError::SnapshotCorrupt { .. } => CliError::Snapshot(detail),
            _ => CliError::Internal(detail),
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, UsageError> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| UsageError(format!("invalid value for {name}: {v:?}"))),
    }
}

fn require<T>(v: Option<T>, name: &str) -> Result<T, UsageError> {
    v.ok_or_else(|| UsageError(format!("missing required option {name}")))
}

/// A flag whose value is optional: `--stats` alone (or followed by
/// another option) means stdout (`"-"`); `--stats FILE` names a file.
fn optional_value_flag(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1).map(String::as_str) {
        Some(v) if v == "-" || !v.starts_with('-') => Some(v.to_string()),
        _ => Some("-".to_string()),
    }
}

/// Extracts the global `--threads N` option, installs it as the
/// process-wide worker-thread budget for the parallel execution layer
/// (`0`/absent = auto-detect; `1` = serial), and returns the remaining
/// arguments for [`parse`]. Valid in any position with every
/// subcommand; if given more than once the last occurrence wins.
pub fn apply_global_threads(args: &[String]) -> Result<Vec<String>, UsageError> {
    let mut rest = args.to_vec();
    while let Some(i) = rest.iter().position(|a| a == "--threads") {
        let Some(v) = rest.get(i + 1) else {
            return Err(UsageError("--threads requires a value".into()));
        };
        let n: usize = v
            .parse()
            .map_err(|_| UsageError(format!("invalid value for --threads: {v:?}")))?;
        rectpart_parallel::set_global_threads(n);
        rest.drain(i..=i + 1);
    }
    Ok(rest)
}

/// Process-wide Γ backend choice from `--gamma`; `u8::MAX` = flag not
/// given (fall back to the `RECTPART_GAMMA` env var, then `auto`).
static GAMMA_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(u8::MAX);

fn gamma_mode_to_u8(mode: GammaMode) -> u8 {
    match mode {
        GammaMode::Dense => 0,
        GammaMode::Sparse => 1,
        GammaMode::Auto => 2,
    }
}

/// The Γ backend policy in effect: the `--gamma` flag if given, else the
/// `RECTPART_GAMMA` environment variable, else automatic selection.
pub fn gamma_mode() -> GammaMode {
    match GAMMA_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => GammaMode::Dense,
        1 => GammaMode::Sparse,
        2 => GammaMode::Auto,
        _ => GammaMode::from_env().unwrap_or(GammaMode::Auto),
    }
}

/// Extracts the global `--gamma dense|sparse|auto` option, installs it
/// as the process-wide Γ backend policy, and returns the remaining
/// arguments for [`parse`]. Valid in any position with every
/// subcommand; if given more than once the last occurrence wins.
pub fn apply_global_gamma(args: &[String]) -> Result<Vec<String>, UsageError> {
    let mut rest = args.to_vec();
    while let Some(i) = rest.iter().position(|a| a == "--gamma") {
        let Some(v) = rest.get(i + 1) else {
            return Err(UsageError(
                "--gamma requires a value (dense|sparse|auto)".into(),
            ));
        };
        let mode = GammaMode::parse(v).ok_or_else(|| {
            UsageError(format!(
                "invalid value for --gamma: {v:?} (dense|sparse|auto)"
            ))
        })?;
        GAMMA_MODE.store(gamma_mode_to_u8(mode), std::sync::atomic::Ordering::Relaxed);
        rest.drain(i..=i + 1);
    }
    Ok(rest)
}

/// Parses a full argument vector (excluding the binary name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "algos" => Ok(Command::Algos),
        "generate" => Ok(Command::Generate {
            class: require(flag(args, "--class").map(str::to_string), "--class")?,
            rows: require(parse_flag(args, "--rows")?, "--rows")?,
            cols: require(parse_flag(args, "--cols")?, "--cols")?,
            seed: parse_flag(args, "--seed")?.unwrap_or(0),
            delta: parse_flag(args, "--delta")?.unwrap_or(1.2),
            out: require(flag(args, "--out").map(PathBuf::from), "--out")?,
        }),
        "partition" => Ok(Command::Partition {
            input: require(flag(args, "--input").map(PathBuf::from), "--input")?,
            algo: flag(args, "--algo")
                .unwrap_or("JAG-M-HEUR-BEST")
                .to_string(),
            m: require(parse_flag(args, "-m")?, "-m")?,
            owners: flag(args, "--owners").map(PathBuf::from),
            save: flag(args, "--save").map(PathBuf::from),
            stats: optional_value_flag(args, "--stats"),
            trace: trace_out_flag(args)?,
            budget: parse_flag(args, "--budget")?,
            fallback: optional_value_flag(args, "--fallback"),
            checkpoint: flag(args, "--checkpoint").map(PathBuf::from),
            checkpoint_interval: parse_flag(args, "--checkpoint-interval")?,
            resume: flag(args, "--resume").map(PathBuf::from),
        }),
        "evaluate" => Ok(Command::Evaluate {
            input: require(flag(args, "--input").map(PathBuf::from), "--input")?,
            algo: flag(args, "--algo")
                .unwrap_or("JAG-M-HEUR-BEST")
                .to_string(),
            m: require(parse_flag(args, "-m")?, "-m")?,
            stats: optional_value_flag(args, "--stats"),
            trace: trace_out_flag(args)?,
        }),
        "serve" => Ok(Command::Serve {
            input: require(flag(args, "--input").map(PathBuf::from), "--input")?,
            queries: require(flag(args, "--queries").map(PathBuf::from), "--queries")?,
            out: flag(args, "--out").map(PathBuf::from),
            rebalance_threshold: parse_flag(args, "--rebalance-threshold")?,
            budget: parse_flag(args, "--budget")?,
            stats: optional_value_flag(args, "--stats"),
            trace: trace_out_flag(args)?,
        }),
        other => Err(UsageError(format!("unknown subcommand {other:?}"))),
    }
}

/// Resolves where the stats report should go: the `--stats` flag wins,
/// otherwise the `RECTPART_STATS` environment variable (non-empty) is
/// honoured so instrumented runs need no command-line changes.
fn stats_target(cli: Option<String>) -> Option<String> {
    cli.or_else(|| {
        std::env::var("RECTPART_STATS")
            .ok()
            .filter(|s| !s.is_empty())
    })
}

/// `--trace-out FILE` — unlike `--stats` the value is mandatory (traces
/// are too large for stdout).
fn trace_out_flag(args: &[String]) -> Result<Option<String>, UsageError> {
    match args.iter().position(|a| a == "--trace-out") {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with('-') => Ok(Some(v.to_string())),
            _ => Err(UsageError("--trace-out requires a FILE value".into())),
        },
    }
}

/// Resolves where the span trace should go: the `--trace-out` flag wins,
/// otherwise the `RECTPART_TRACE` environment variable (non-empty).
fn trace_target(cli: Option<String>) -> Option<String> {
    cli.or_else(|| {
        std::env::var("RECTPART_TRACE")
            .ok()
            .filter(|s| !s.is_empty())
    })
}

/// Writes the span trace to `target` and appends a pointer line: the
/// collapsed-stack text format when the filename ends in `.folded`
/// (ready for `flamegraph.pl` / speedscope), Chrome trace-event JSON
/// otherwise (load via Perfetto or `chrome://tracing`).
fn emit_trace(out: &mut String, target: &str) -> Result<(), std::io::Error> {
    let text = if target.ends_with(".folded") {
        rectpart_obs::flame::collapsed()
    } else {
        rectpart_obs::chrome::trace_json().to_string_pretty()
    };
    std::fs::write(target, text)?;
    out.push_str(&format!("\n  trace         -> {target}"));
    Ok(())
}

/// Builds the stats block: solution summary, the execution environment
/// (Γ policy and the backend it actually selected, host core count),
/// plus the recorder report.
/// The resident-engine block of the stats report. Batch commands
/// (`partition`, `evaluate`) never touch the engine, so theirs reports
/// zeros; `serve` reports the engine's real tallies.
fn engine_stats_json(s: &EngineStats) -> rectpart_json::Json {
    use rectpart_json::Json;
    Json::obj(vec![
        ("queries", Json::UInt(s.queries)),
        ("warm_hits", Json::UInt(s.warm_hits)),
        ("delta_rows_patched", Json::UInt(s.delta_rows_patched)),
        (
            "warm_start_probes_skipped",
            Json::UInt(s.warm_start_probes_skipped),
        ),
    ])
}

fn stats_json(
    algo: &str,
    m: usize,
    summary: &rectpart_core::Summary,
    pfx: &PrefixSum2D,
    budget: Option<u64>,
    degradation: Option<&rectpart_robust::DegradationReport>,
) -> rectpart_json::Json {
    use rectpart_json::Json;
    let report = rectpart_obs::Recorder::global().snapshot();
    // Driver runs expose their budget and the fallback ladder they
    // walked (rung names in ladder order); direct solves report null.
    let fallback = match degradation {
        Some(rep) => Json::Arr(
            rep.rungs
                .iter()
                .map(|r| Json::Str(r.name.clone()))
                .collect(),
        ),
        None => Json::Null,
    };
    Json::obj(vec![
        ("algorithm", Json::Str(algo.to_string())),
        ("m", Json::UInt(m as u64)),
        ("budget", budget.map(Json::UInt).unwrap_or(Json::Null)),
        ("fallback", fallback),
        ("gamma_mode", Json::Str(gamma_mode().as_str().to_string())),
        (
            "gamma_backend",
            Json::Str(pfx.backend().as_str().to_string()),
        ),
        (
            "host_cores",
            Json::UInt(rectpart_parallel::host_cores() as u64),
        ),
        (
            "summary",
            Json::obj(vec![
                ("lmax", Json::UInt(summary.lmax)),
                ("lavg", Json::Float(summary.lavg)),
                ("imbalance", Json::Float(summary.imbalance)),
                ("rect_count", Json::UInt(summary.rect_count as u64)),
            ]),
        ),
        ("engine", engine_stats_json(&EngineStats::default())),
        ("stats", report.to_json()),
    ])
}

/// Builds the `serve` stats block: execution environment, the resident
/// engine's tallies, and the recorder report.
fn serve_stats_json(pfx: &PrefixSum2D, engine: &EngineStats) -> rectpart_json::Json {
    use rectpart_json::Json;
    let report = rectpart_obs::Recorder::global().snapshot();
    Json::obj(vec![
        ("mode", Json::Str("serve".to_string())),
        ("gamma_mode", Json::Str(gamma_mode().as_str().to_string())),
        (
            "gamma_backend",
            Json::Str(pfx.backend().as_str().to_string()),
        ),
        (
            "host_cores",
            Json::UInt(rectpart_parallel::host_cores() as u64),
        ),
        ("engine", engine_stats_json(engine)),
        ("stats", report.to_json()),
    ])
}

/// Appends the stats block to the report text (`"-"`) or writes it to a
/// file and appends a pointer line.
fn emit_stats(
    out: &mut String,
    target: &str,
    json: &rectpart_json::Json,
) -> Result<(), std::io::Error> {
    let text = json.to_string_pretty();
    if target == "-" {
        out.push_str("\nstats:\n");
        out.push_str(&text);
    } else {
        std::fs::write(target, text)?;
        out.push_str(&format!("\n  stats         -> {target}"));
    }
    Ok(())
}

/// Generates an instance of the named class.
pub fn generate_matrix(
    class: &str,
    rows: usize,
    cols: usize,
    seed: u64,
    delta: f64,
) -> Result<LoadMatrix, UsageError> {
    match class {
        "uniform" => Ok(uniform(rows, cols, seed).delta(delta).build()),
        "diagonal" => Ok(diagonal(rows, cols, seed).build()),
        "peak" => Ok(peak(rows, cols, seed).build()),
        "multi-peak" => Ok(multi_peak(rows, cols, seed).build()),
        "mesh" => Ok(slac_like()),
        other => Err(UsageError(format!(
            "unknown class {other:?} (uniform, diagonal, peak, multi-peak, mesh)"
        ))),
    }
}

/// Parses a serve-mode request batch.
///
/// The file is a JSON object with a `queries` array; each element is
/// either a solve —
/// `{"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 8}` with optional
/// `"region": [r0, r1, c0, c1]` (half-open), `"budget": N` and
/// `"fallback": ["A", "B"]` — or a delta:
/// `{"op": "delta", "rows": [{"row": 3, "cells": [..]}, ..]}`. A
/// missing `op` means solve.
pub fn parse_serve_requests(text: &str) -> Result<Vec<Request>, String> {
    use rectpart_json::Json;
    let json = rectpart_json::parse(text).map_err(|e| e.to_string())?;
    let queries = json
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing \"queries\" array".to_string())?;
    let mut requests = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let op = match q.get("op") {
            None => "solve",
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("query {i}: \"op\" must be a string"))?,
        };
        match op {
            "solve" => {
                let algorithm = q
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("query {i}: missing \"algo\""))?
                    .to_string();
                let m = q
                    .get("m")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("query {i}: missing \"m\""))?;
                let region = match q.get("region") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let bounds: Vec<usize> = v
                            .as_array()
                            .map(|a| a.iter().filter_map(Json::as_usize).collect())
                            .unwrap_or_default();
                        match bounds.as_slice() {
                            [r0, r1, c0, c1] => Some(Rect {
                                r0: *r0,
                                r1: *r1,
                                c0: *c0,
                                c1: *c1,
                            }),
                            _ => {
                                return Err(format!(
                                    "query {i}: \"region\" must be [r0, r1, c0, c1]"
                                ))
                            }
                        }
                    }
                };
                let budget = q.get("budget").and_then(Json::as_u64);
                let fallback = match q.get("fallback") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_array()
                        .ok_or_else(|| format!("query {i}: \"fallback\" must be an array"))?
                        .iter()
                        .map(|s| {
                            s.as_str().map(str::to_string).ok_or_else(|| {
                                format!("query {i}: \"fallback\" entries must be strings")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                requests.push(Request::Solve(Query {
                    algorithm,
                    m,
                    region,
                    budget,
                    fallback,
                }));
            }
            "delta" => {
                let rows = q
                    .get("rows")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("query {i}: delta needs a \"rows\" array"))?;
                let mut updates = Vec::with_capacity(rows.len());
                for (j, entry) in rows.iter().enumerate() {
                    let row = entry
                        .get("row")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| format!("query {i} row {j}: missing \"row\""))?;
                    let cells = entry
                        .get("cells")
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("query {i} row {j}: missing \"cells\""))?
                        .iter()
                        .map(|c| {
                            c.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or_else(|| {
                                    format!("query {i} row {j}: cells must be u32 integers")
                                })
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    updates.push(RowUpdate { row, cells });
                }
                requests.push(Request::Delta(updates));
            }
            other => return Err(format!("query {i}: unknown op {other:?}")),
        }
    }
    Ok(requests)
}

/// Builds the fallback ladder for a driver run: an explicit
/// `--fallback a,b,c` list wins; otherwise the requested algorithm
/// followed by the default ladder (minus duplicates), so `--budget`
/// alone still tries the user's algorithm first.
fn ladder_from(algo: &str, fallback: Option<&str>) -> Vec<String> {
    match fallback {
        Some(spec) if spec != "-" => spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        _ => {
            let mut ladder = vec![algo.to_string()];
            for name in DEFAULT_LADDER {
                if !ladder.iter().any(|l| l.eq_ignore_ascii_case(name)) {
                    ladder.push(name.to_string());
                }
            }
            ladder
        }
    }
}

/// Executes a parsed command; returns the text to print.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::Algos => Ok(algorithm_names().join("\n")),
        Command::Generate {
            class,
            rows,
            cols,
            seed,
            delta,
            out,
        } => {
            let m = generate_matrix(&class, rows, cols, seed, delta)?;
            write_csv(&m, &out)?;
            Ok(format!(
                "wrote {}x{} {class} instance (total load {}) to {}",
                m.rows(),
                m.cols(),
                m.total(),
                out.display()
            ))
        }
        Command::Partition {
            input,
            algo,
            m,
            owners,
            save,
            stats,
            trace,
            budget,
            fallback,
            checkpoint,
            checkpoint_interval,
            resume,
        } => {
            let stats_dst = stats_target(stats);
            let trace_dst = trace_target(trace);
            // Reset only when a report was requested, so unrelated runs
            // in the same process cannot wipe an in-flight recording.
            if stats_dst.is_some() || trace_dst.is_some() {
                rectpart_obs::Recorder::global().reset();
            }
            let matrix = {
                let _io = rectpart_obs::phase(rectpart_obs::Phase::Io);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliIo);
                read_csv(&input)?
            };
            RectpartError::check_problem(matrix.rows(), matrix.cols(), m)?;
            let pfx = PrefixSum2D::try_new_with(&matrix, gamma_mode())?;
            let driver_run =
                budget.is_some() || fallback.is_some() || checkpoint.is_some() || resume.is_some();
            let (part, degradation, sink) = if driver_run {
                // Fault-tolerant path: walk the fallback ladder under
                // the (optional) deterministic work budget, snapshotting
                // rung-boundary progress when a checkpoint file is
                // named. A resumed run takes its ladder and budget from
                // the snapshot, not from the command line.
                let mut driver =
                    SolverDriver::new().with_ladder(ladder_from(&algo, fallback.as_deref()));
                if let Some(units) = budget {
                    driver = driver.with_budget(units);
                }
                let mut sink = checkpoint.as_ref().map(|path| {
                    rectpart_resume::FileCheckpointer::new(path, checkpoint_interval.unwrap_or(0))
                });
                let _p = rectpart_obs::phase(rectpart_obs::Phase::Partition);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliPartition);
                let outcome = match (&resume, &mut sink) {
                    (Some(snap), Some(s)) => {
                        let progress = rectpart_resume::load_snapshot(snap)?;
                        driver.resume_checkpointed(&progress, &matrix, m, s)?
                    }
                    (Some(snap), None) => {
                        let progress = rectpart_resume::load_snapshot(snap)?;
                        driver.resume_from(&progress, &matrix, m)?
                    }
                    (None, Some(s)) => driver.try_solve_checkpointed(&matrix, m, s)?,
                    (None, None) => driver.try_solve(&matrix, m)?,
                };
                (outcome.partition, Some(outcome.report), sink)
            } else {
                let algorithm = algorithm_by_name(&algo).ok_or_else(|| {
                    UsageError(format!("unknown algorithm {algo:?}; see `rectpart algos`"))
                })?;
                let part = {
                    let _p = rectpart_obs::phase(rectpart_obs::Phase::Partition);
                    let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliPartition);
                    algorithm.partition(&pfx, m)
                };
                {
                    let _v = rectpart_obs::phase(rectpart_obs::Phase::Validate);
                    let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliValidate);
                    part.validate(&pfx)?;
                }
                (part, None, None)
            };
            let algo = degradation
                .as_ref()
                .and_then(|r| r.answered_by.clone())
                .unwrap_or(algo);
            let summary = part.summary(&pfx);
            let detail = PartitionStats::compute(&pfx, &part);
            let mut out = format!(
                "{algo} on {}x{} with m={m}:\n  Lmax          = {}\n  lower bound   = {}\n  avg load      = {:.1}\n  imbalance     = {:.4}\n  active parts  = {}\n  loads         = {}..{} (sd {:.1})\n  max aspect    = {:.2}\n  perimeter     = {}",
                matrix.rows(),
                matrix.cols(),
                summary.lmax,
                pfx.lower_bound(m),
                summary.lavg,
                summary.imbalance,
                summary.rect_count,
                detail.lmin,
                detail.lmax,
                detail.stddev,
                detail.max_aspect,
                detail.total_perimeter,
            );
            if let Some(path) = owners {
                let owner_matrix = LoadMatrix::from_vec(
                    matrix.rows(),
                    matrix.cols(),
                    part.owner_map(matrix.rows(), matrix.cols()),
                );
                write_csv(&owner_matrix, &path)?;
                out.push_str(&format!("\n  owners        -> {}", path.display()));
            }
            if let Some(path) = save {
                std::fs::write(&path, rectpart_json::to_string_pretty(&part))?;
                out.push_str(&format!("\n  partition     -> {}", path.display()));
            }
            if let Some(s) = &sink {
                out.push_str(&format!(
                    "\n  checkpoint    -> {} ({} snapshots)",
                    s.path().display(),
                    s.writes()
                ));
                if let Some(e) = s.last_error() {
                    out.push_str(&format!("\n  warning: last snapshot write failed: {e}"));
                }
            }
            if let Some(report) = &degradation {
                out.push_str("\nfallback:\n");
                out.push_str(&report.to_string());
            }
            if let Some(dst) = stats_dst {
                // A resumed run's budget lives in the snapshot; the
                // degradation report carries the authoritative value.
                let effective_budget = degradation.as_ref().and_then(|r| r.budget).or(budget);
                emit_stats(
                    &mut out,
                    &dst,
                    &stats_json(
                        &algo,
                        m,
                        &summary,
                        &pfx,
                        effective_budget,
                        degradation.as_ref(),
                    ),
                )?;
            }
            if let Some(dst) = trace_dst {
                emit_trace(&mut out, &dst)?;
            }
            Ok(out)
        }
        Command::Evaluate {
            input,
            algo,
            m,
            stats,
            trace,
        } => {
            let stats_dst = stats_target(stats);
            let trace_dst = trace_target(trace);
            // Reset only when a report was requested, so unrelated runs
            // in the same process cannot wipe an in-flight recording.
            if stats_dst.is_some() || trace_dst.is_some() {
                rectpart_obs::Recorder::global().reset();
            }
            let matrix = {
                let _io = rectpart_obs::phase(rectpart_obs::Phase::Io);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliIo);
                read_csv(&input)?
            };
            RectpartError::check_problem(matrix.rows(), matrix.cols(), m)?;
            let pfx = PrefixSum2D::try_new_with(&matrix, gamma_mode())?;
            let algorithm = algorithm_by_name(&algo).ok_or_else(|| {
                UsageError(format!("unknown algorithm {algo:?}; see `rectpart algos`"))
            })?;
            let part = {
                let _p = rectpart_obs::phase(rectpart_obs::Phase::Partition);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliPartition);
                algorithm.partition(&pfx, m)
            };
            {
                let _v = rectpart_obs::phase(rectpart_obs::Phase::Validate);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliValidate);
                part.validate(&pfx)?;
            }
            let summary = part.summary(&pfx);
            let rep = Simulator::new(CommModel::default()).evaluate(&pfx, &part);
            let mut out = format!(
                "{algo} on {}x{} with m={m}:\n  imbalance     = {:.4}\n  makespan      = {:.1}\n  halo volume   = {}\n  max neighbors = {}\n  speedup       = {:.2}\n  efficiency    = {:.1}%",
                matrix.rows(),
                matrix.cols(),
                summary.imbalance,
                rep.makespan,
                rep.comm_volume_total,
                rep.max_neighbors,
                rep.speedup,
                100.0 * rep.efficiency,
            );
            if let Some(dst) = stats_dst {
                emit_stats(
                    &mut out,
                    &dst,
                    &stats_json(&algo, m, &summary, &pfx, None, None),
                )?;
            }
            if let Some(dst) = trace_dst {
                emit_trace(&mut out, &dst)?;
            }
            Ok(out)
        }
        Command::Serve {
            input,
            queries,
            out,
            rebalance_threshold,
            budget,
            stats,
            trace,
        } => {
            use rectpart_json::Json;
            let stats_dst = stats_target(stats);
            let trace_dst = trace_target(trace);
            // Reset only when a report was requested, so unrelated runs
            // in the same process cannot wipe an in-flight recording.
            if stats_dst.is_some() || trace_dst.is_some() {
                rectpart_obs::Recorder::global().reset();
            }
            let (matrix, requests) = {
                let _io = rectpart_obs::phase(rectpart_obs::Phase::Io);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliIo);
                let matrix = read_csv(&input)?;
                let text = std::fs::read_to_string(&queries)?;
                let requests = parse_serve_requests(&text)
                    .map_err(|e| CliError::Input(format!("{}: {e}", queries.display())))?;
                (matrix, requests)
            };
            let cfg = EngineConfig {
                gamma_mode: gamma_mode(),
                rebalance: match rebalance_threshold {
                    Some(t) => RebalancePolicy::Threshold(t),
                    None => RebalancePolicy::EverySnapshot,
                },
                budget,
            };
            let request_count = requests.len();
            let mut engine = Engine::with_config(matrix, cfg)?;
            let mut text = format!(
                "serving {} requests on {}x{} (Γ resident, backend {})",
                request_count,
                engine.matrix().rows(),
                engine.matrix().cols(),
                engine.prefix().backend().as_str(),
            );
            let mut results = Vec::with_capacity(request_count);
            {
                let _p = rectpart_obs::phase(rectpart_obs::Phase::Partition);
                let _s = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::CliPartition);
                for (i, req) in requests.iter().enumerate() {
                    match req {
                        Request::Solve(q) => {
                            let got =
                                engine
                                    .solve(q)
                                    .map_err(CliError::from)
                                    .map_err(|e| match e {
                                        CliError::Input(m) => {
                                            CliError::Input(format!("request {i}: {m}"))
                                        }
                                        other => other,
                                    })?;
                            let lmax = got.partition.lmax(engine.prefix());
                            text.push_str(&format!(
                                "\n  [{i}] solve {} m={}{}: Lmax={lmax}{}",
                                got.answered_by,
                                q.m,
                                match q.region {
                                    Some(r) =>
                                        format!(" region={}..{}x{}..{}", r.r0, r.r1, r.c0, r.c1),
                                    None => String::new(),
                                },
                                if got.warm_hit { " (warm)" } else { "" },
                            ));
                            results.push(Json::obj(vec![
                                ("op", Json::Str("solve".to_string())),
                                ("algorithm", Json::Str(q.algorithm.clone())),
                                ("answered_by", Json::Str(got.answered_by.clone())),
                                ("m", Json::UInt(q.m as u64)),
                                ("warm_hit", Json::Bool(got.warm_hit)),
                                ("lmax", Json::UInt(lmax)),
                                (
                                    "rects",
                                    Json::Arr(
                                        got.partition
                                            .rects()
                                            .iter()
                                            .map(|r| {
                                                Json::Arr(vec![
                                                    Json::UInt(r.r0 as u64),
                                                    Json::UInt(r.r1 as u64),
                                                    Json::UInt(r.c0 as u64),
                                                    Json::UInt(r.c1 as u64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]));
                        }
                        Request::Delta(rows) => {
                            let patched = engine
                                .apply_delta(rows)
                                .map_err(|e| CliError::Input(format!("request {i}: {e}")))?;
                            text.push_str(&format!("\n  [{i}] delta: {patched} rows patched"));
                            results.push(Json::obj(vec![
                                ("op", Json::Str("delta".to_string())),
                                ("rows_patched", Json::UInt(patched)),
                            ]));
                        }
                    }
                }
            }
            let s = engine.stats();
            text.push_str(&format!(
                "\nengine: {} queries, {} warm hits, {} delta rows, {} probes skipped",
                s.queries, s.warm_hits, s.delta_rows_patched, s.warm_start_probes_skipped
            ));
            if let Some(path) = out {
                let json = Json::obj(vec![("results", Json::Arr(results))]);
                std::fs::write(&path, json.to_string_pretty())?;
                text.push_str(&format!("\n  results       -> {}", path.display()));
            }
            if let Some(dst) = stats_dst {
                emit_stats(&mut text, &dst, &serve_stats_json(engine.prefix(), &s))?;
            }
            if let Some(dst) = trace_dst {
                emit_trace(&mut text, &dst)?;
            }
            Ok(text)
        }
    }
}

/// The usage text.
pub fn usage() -> String {
    "rectpart — rectangle partitioning of spatially located computations (IPDPS 2011)

USAGE:
  rectpart generate --class <uniform|diagonal|peak|multi-peak|mesh>
                    --rows N --cols N [--seed S] [--delta D] --out FILE.csv
  rectpart partition --input FILE.csv -m N [--algo NAME] [--owners OUT.csv]
                     [--save PARTITION.json] [--stats [OUT.json]]
                     [--trace-out TRACE.json] [--budget UNITS]
                     [--fallback [A,B,...]] [--checkpoint SNAP]
                     [--checkpoint-interval UNITS] [--resume SNAP]
  rectpart evaluate  --input FILE.csv -m N [--algo NAME] [--stats [OUT.json]]
                     [--trace-out TRACE.json]
  rectpart serve     --input FILE.csv --queries BATCH.json [--out OUT.json]
                     [--rebalance-threshold T] [--budget UNITS]
                     [--stats [OUT.json]] [--trace-out TRACE.json]
  rectpart algos

GLOBAL OPTIONS:
  --threads N    worker threads for the parallel execution layer
                 (default: auto-detect; 1 = fully serial; results are
                 identical at any thread count)
  --gamma MODE   prefix-sum (Γ) backend: dense, sparse, or auto
                 (default: the RECTPART_GAMMA env var, else auto).
                 auto picks the CSR-like sparse backend when at least
                 75% of the load matrix is zero; every backend returns
                 bit-identical answers, so this only affects memory
                 and speed
  --stats [F]    emit a JSON stats block (solution summary + counters,
                 phase timers, cache statistics, convergence traces).
                 With no FILE (or FILE = -) the block is appended to
                 stdout output; otherwise it is written to FILE. The
                 RECTPART_STATS env var names a default destination.
                 Counters need a build with `--features obs`; without
                 it the block reports {\"enabled\": false}.
  --trace-out F  write the hierarchical span trace of the run to F:
                 Chrome trace-event JSON (open in Perfetto or
                 chrome://tracing), or collapsed stacks when F ends in
                 .folded (pipe to flamegraph.pl / speedscope). The
                 work-anchored span tree is bit-identical at any thread
                 count; needs a build with `--features obs`. The
                 RECTPART_TRACE env var names a default destination.
  --budget N     run through the fault-tolerant driver under a
                 deterministic work budget of N units (not wall-clock
                 time: the same budget admits the same algorithms on
                 every machine and at every thread count). Rungs whose
                 a-priori estimate exceeds the remaining budget are
                 skipped; the degradation report is printed after the
                 partition report.
  --fallback [L] run the fallback ladder through the fault-tolerant
                 driver. With no value: the requested --algo followed by
                 JAG-M-OPT-BEST,JAG-M-HEUR-BEST,RECT-UNIFORM. With a
                 value: a comma-separated algorithm list, tried in
                 order; a rung that panics or returns an invalid cover
                 demotes to the next.
  --checkpoint SNAP
                 write a checksummed progress snapshot to SNAP at every
                 fallback-ladder rung boundary (and on cancellation), so
                 an interrupted run can be continued with --resume.
                 Snapshots are written atomically (tmp file + rename);
                 implies the fault-tolerant driver path.
  --checkpoint-interval UNITS
                 downsample routine snapshots: write one only after at
                 least UNITS work units since the last (default 0 =
                 every rung boundary)
SERVE MODE:
  `serve` loads the matrix once, builds the Γ prefix sum once, and keeps
  a resident engine warm across the whole request batch: repeated
  queries are answered from a solution cache, matrix deltas patch Γ
  row-incrementally instead of rebuilding it, and re-solves after a
  delta are warm-started from the previous cuts — every answer is
  bit-identical to a cold solve on the then-current matrix. The batch
  file is a JSON object {\"queries\": [...]} whose entries are either
    {\"op\": \"solve\", \"algo\": NAME, \"m\": N}
      with optional \"region\": [r0, r1, c0, c1] (half-open bounds),
      \"budget\": UNITS and \"fallback\": [NAME, ...] (both route the
      query through the fault-tolerant driver), or
    {\"op\": \"delta\", \"rows\": [{\"row\": R, \"cells\": [..]}, ...]}
      which rewrites whole matrix rows.
  --rebalance-threshold T keeps serving a stale partition while its
  imbalance on the current matrix stays at or below T (the dynamic
  rebalance trigger of the BSP simulator); without it every delta forces
  a re-solve.

  --resume SNAP  continue an interrupted run from the snapshot at SNAP.
                 The ladder and budget recorded in the snapshot are
                 used (--algo/--fallback/--budget are ignored); the
                 resumed outcome is bit-identical to an uninterrupted
                 run. A torn or corrupt snapshot, or one taken for a
                 different instance, exits 5.

EXIT CODES:
  0  success
  1  internal error (an algorithm bug or environment failure)
  2  usage error (malformed command line)
  3  invalid input (unreadable/ragged CSV, empty matrix, infeasible m)
  4  work budget exhausted before any algorithm could run
  5  unusable snapshot (torn/corrupt --resume file, or an instance or
     ladder mismatch)
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv(
            "generate --class peak --rows 32 --cols 48 --seed 7 --out /tmp/x.csv",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                class: "peak".into(),
                rows: 32,
                cols: 48,
                seed: 7,
                delta: 1.2,
                out: PathBuf::from("/tmp/x.csv"),
            }
        );
    }

    #[test]
    fn parses_partition_with_defaults() {
        let cmd = parse(&argv("partition --input a.csv -m 16")).unwrap();
        assert_eq!(
            cmd,
            Command::Partition {
                input: PathBuf::from("a.csv"),
                algo: "JAG-M-HEUR-BEST".into(),
                m: 16,
                owners: None,
                save: None,
                stats: None,
                trace: None,
                budget: None,
                fallback: None,
                checkpoint: None,
                checkpoint_interval: None,
                resume: None,
            }
        );
    }

    #[test]
    fn parses_budget_and_fallback() {
        let Command::Partition {
            budget, fallback, ..
        } = parse(&argv(
            "partition --input a.csv -m 4 --budget 5000 --fallback JAG-M-HEUR-BEST,RECT-UNIFORM",
        ))
        .unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!(budget, Some(5000));
        assert_eq!(fallback, Some("JAG-M-HEUR-BEST,RECT-UNIFORM".into()));
        // Bare --fallback (value position held by another option)
        // selects the default ladder.
        let Command::Partition {
            budget, fallback, ..
        } = parse(&argv("partition --input a.csv --fallback -m 4")).unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!((budget, fallback), (None, Some("-".into())));
        assert!(parse(&argv("partition --input a.csv -m 4 --budget lots")).is_err());
    }

    #[test]
    fn parses_checkpoint_and_resume_flags() {
        let Command::Partition {
            checkpoint,
            checkpoint_interval,
            resume,
            ..
        } = parse(&argv(
            "partition --input a.csv -m 4 --checkpoint s.snap --checkpoint-interval 500 --resume old.snap",
        ))
        .unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!(checkpoint, Some(PathBuf::from("s.snap")));
        assert_eq!(checkpoint_interval, Some(500));
        assert_eq!(resume, Some(PathBuf::from("old.snap")));
        assert!(parse(&argv(
            "partition --input a.csv -m 4 --checkpoint-interval soon"
        ))
        .is_err());
    }

    #[test]
    fn checkpoint_then_resume_matches_direct_run() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-ckpt-{}.csv", std::process::id()));
        let snap = dir.join(format!("rectpart-cli-ckpt-{}.snap", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 16,
            cols: 16,
            seed: 9,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        let base = |checkpoint: Option<PathBuf>, resume: Option<PathBuf>| Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint,
            checkpoint_interval: None,
            resume,
        };
        // --checkpoint alone selects the driver path and leaves a
        // loadable snapshot behind.
        let watched = run(base(Some(snap.clone()), None)).unwrap();
        assert!(watched.contains("checkpoint    ->"), "{watched}");
        assert!(watched.contains("fallback:"), "{watched}");
        assert!(snap.exists());
        rectpart_resume::load_snapshot(&snap).expect("checkpoint must be loadable");
        // Resuming from the final boundary snapshot reproduces the
        // uninterrupted answer (same Lmax line, same answering rung).
        let resumed = run(base(None, Some(snap.clone()))).unwrap();
        let lmax = |s: &str| {
            s.lines()
                .find(|l| l.contains("Lmax"))
                .map(str::to_string)
                .expect("report has an Lmax line")
        };
        assert_eq!(lmax(&resumed), lmax(&watched));
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn corrupt_resume_snapshot_exits_five() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-badsnap-{}.csv", std::process::id()));
        let snap = dir.join(format!("rectpart-cli-badsnap-{}.snap", std::process::id()));
        std::fs::write(&input, "1,2\n3,4\n").unwrap();
        std::fs::write(&snap, "definitely not a snapshot").unwrap();
        let err = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 2,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: Some(snap.clone()),
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("snapshot"), "{err}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn stats_block_reports_budget_and_fallback_ladder() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-statsb-{}.csv", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 12,
            cols: 12,
            seed: 4,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        let msg = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: Some("-".into()),
            trace: None,
            budget: Some(1_000_000),
            fallback: Some("-".into()),
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap();
        let (_, json_text) = msg.split_once("stats:\n").expect("stats block present");
        let json = rectpart_json::parse(json_text).unwrap();
        assert_eq!(json.get("budget").and_then(|j| j.as_u64()), Some(1_000_000));
        // Batch commands pin the resident-engine block at zero: the
        // schema is stable across modes, only `serve` accumulates.
        let engine = json.get("engine").expect("engine block present");
        for key in [
            "queries",
            "warm_hits",
            "delta_rows_patched",
            "warm_start_probes_skipped",
        ] {
            assert_eq!(
                engine.get(key).and_then(|j| j.as_u64()),
                Some(0),
                "engine.{key} must be pinned to 0 in batch mode"
            );
        }
        let rectpart_json::Json::Arr(ladder) = json.get("fallback").expect("fallback present")
        else {
            panic!("fallback must be an array of rung names");
        };
        let names: Vec<&str> = ladder.iter().filter_map(|j| j.as_str()).collect();
        assert_eq!(
            names,
            vec!["JAG-M-HEUR-BEST", "JAG-M-OPT-BEST", "RECT-UNIFORM"]
        );
        // A direct (non-driver) run reports null for both.
        let msg = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: Some("-".into()),
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap();
        let (_, json_text) = msg.split_once("stats:\n").expect("stats block present");
        let json = rectpart_json::parse(json_text).unwrap();
        assert!(matches!(
            json.get("budget"),
            Some(rectpart_json::Json::Null)
        ));
        assert!(matches!(
            json.get("fallback"),
            Some(rectpart_json::Json::Null)
        ));
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn ladder_construction_rules() {
        // --budget alone: the requested algorithm heads the default
        // ladder, duplicates removed.
        assert_eq!(
            ladder_from("JAG-M-OPT-BEST", None),
            vec!["JAG-M-OPT-BEST", "JAG-M-HEUR-BEST", "RECT-UNIFORM"]
        );
        assert_eq!(
            ladder_from("RECT-NICOL", Some("-")),
            vec![
                "RECT-NICOL",
                "JAG-M-OPT-BEST",
                "JAG-M-HEUR-BEST",
                "RECT-UNIFORM"
            ]
        );
        // Explicit list wins; whitespace and empty segments dropped.
        assert_eq!(ladder_from("X", Some("a, b ,,c")), vec!["a", "b", "c"]);
    }

    #[test]
    fn driver_path_prints_fallback_report_and_classifies_errors() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-driver-{}.csv", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 12,
            cols: 12,
            seed: 2,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        let base = Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: Some(1_000_000),
            fallback: Some("-".into()),
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        };
        let msg = run(base).unwrap();
        assert!(msg.contains("fallback:"), "{msg}");
        assert!(msg.contains("answered"), "{msg}");
        // A budget too small for Γ construction exhausts: exit code 4.
        let err = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: Some(3),
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("budget"), "{err}");
        // Infeasible m is an input error: exit code 3 (driver or not).
        let err = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 0,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Missing input file is an input error too.
        let err = run(Command::Partition {
            input: dir.join("rectpart-definitely-missing.csv"),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn parses_stats_flag_variants() {
        // Bare flag → stdout sentinel.
        let Command::Partition { stats, .. } =
            parse(&argv("partition --input a.csv -m 4 --stats")).unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!(stats, Some("-".into()));
        // Explicit "-" and a following option both mean stdout.
        let Command::Partition { stats, .. } =
            parse(&argv("partition --input a.csv --stats - -m 4")).unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!(stats, Some("-".into()));
        let Command::Partition { stats, m, .. } =
            parse(&argv("partition --input a.csv --stats -m 4")).unwrap()
        else {
            panic!("expected partition");
        };
        assert_eq!((stats, m), (Some("-".into()), 4));
        // A filename is captured.
        let Command::Evaluate { stats, .. } =
            parse(&argv("evaluate --input a.csv -m 4 --stats s.json")).unwrap()
        else {
            panic!("expected evaluate");
        };
        assert_eq!(stats, Some("s.json".into()));
    }

    #[test]
    fn gamma_flag_is_extracted_anywhere_and_validated() {
        // Valid flag (any position, any case) is removed from the argv and
        // installed; the last occurrence wins. Sparse and dense backends
        // return bit-identical answers, so other tests running concurrently
        // under a temporarily different mode still pass.
        let rest =
            apply_global_gamma(&argv("partition --gamma SPARSE --input a.csv -m 4")).unwrap();
        assert_eq!(rest, argv("partition --input a.csv -m 4"));
        assert_eq!(gamma_mode(), GammaMode::Sparse);
        let rest = apply_global_gamma(&argv("--gamma sparse evaluate --gamma auto")).unwrap();
        assert_eq!(rest, argv("evaluate"));
        assert_eq!(gamma_mode(), GammaMode::Auto);
        assert!(apply_global_gamma(&argv("partition --gamma")).is_err());
        assert!(apply_global_gamma(&argv("--gamma fast partition")).is_err());
        // Restore the unset sentinel so the env-var fallback stays testable.
        GAMMA_MODE.store(u8::MAX, std::sync::atomic::Ordering::Relaxed);
    }

    #[test]
    fn rejects_missing_and_bad_options() {
        assert!(parse(&argv("generate --class peak --rows 2 --out x")).is_err());
        assert!(parse(&argv("partition --input a.csv -m nope")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("algos")).unwrap(), Command::Algos);
    }

    #[test]
    fn generate_matrix_classes() {
        for class in ["uniform", "diagonal", "peak", "multi-peak"] {
            let m = generate_matrix(class, 8, 8, 1, 1.5).unwrap();
            assert_eq!((m.rows(), m.cols()), (8, 8));
        }
        assert!(generate_matrix("nope", 8, 8, 1, 1.5).is_err());
    }

    #[test]
    fn end_to_end_generate_partition_evaluate() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-{}.csv", std::process::id()));
        let owners = dir.join(format!("rectpart-cli-owners-{}.csv", std::process::id()));
        let msg = run(Command::Generate {
            class: "multi-peak".into(),
            rows: 24,
            cols: 24,
            seed: 3,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        assert!(msg.contains("multi-peak"));
        let msg = run(Command::Partition {
            input: input.clone(),
            algo: "HIER-RELAXED-LOAD".into(),
            m: 9,
            owners: Some(owners.clone()),
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap();
        assert!(msg.contains("imbalance"));
        assert!(owners.exists());
        let msg = run(Command::Evaluate {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 9,
            stats: None,
            trace: None,
        })
        .unwrap();
        assert!(msg.contains("speedup"));
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&owners).ok();
    }

    #[test]
    fn save_writes_roundtrippable_partition_json() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-save-in-{}.csv", std::process::id()));
        let saved = dir.join(format!("rectpart-cli-save-{}.json", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 16,
            cols: 16,
            seed: 1,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 4,
            owners: None,
            save: Some(saved.clone()),
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap();
        let json = std::fs::read_to_string(&saved).unwrap();
        let part: rectpart_core::Partition = rectpart_json::from_str(&json).unwrap();
        assert_eq!(part.parts(), 4);
        assert!(part.validate_dims(16, 16).is_ok());
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&saved).ok();
    }

    #[test]
    fn unknown_algorithm_is_reported() {
        let input =
            std::env::temp_dir().join(format!("rectpart-cli-unknown-{}.csv", std::process::id()));
        std::fs::write(&input, "1,2\n3,4\n").unwrap();
        let err = run(Command::Partition {
            input: input.clone(),
            algo: "NOT-AN-ALGO".into(),
            m: 2,
            owners: None,
            save: None,
            stats: None,
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown algorithm"));
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn stats_block_is_emitted_to_stdout_and_file() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("rectpart-cli-stats-in-{}.csv", std::process::id()));
        let stats_file = dir.join(format!("rectpart-cli-stats-{}.json", std::process::id()));
        run(Command::Generate {
            class: "peak".into(),
            rows: 20,
            cols: 20,
            seed: 5,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        // Stdout sentinel: the block rides along in the report text.
        let msg = run(Command::Partition {
            input: input.clone(),
            algo: "JAG-M-HEUR-BEST".into(),
            m: 6,
            owners: None,
            save: None,
            stats: Some("-".into()),
            trace: None,
            budget: None,
            fallback: None,
            checkpoint: None,
            checkpoint_interval: None,
            resume: None,
        })
        .unwrap();
        let (_, json_text) = msg.split_once("stats:\n").expect("stats block present");
        let json = rectpart_json::parse(json_text).unwrap();
        assert_eq!(
            json.get("algorithm").and_then(|j| j.as_str()),
            Some("JAG-M-HEUR-BEST")
        );
        assert!(json.get("summary").and_then(|s| s.get("lmax")).is_some());
        assert!(
            json.get("engine").and_then(|e| e.get("queries")).is_some(),
            "engine block present in the stats schema"
        );
        let recorder = json.get("stats").expect("recorder report present");
        let enabled = recorder
            .get("enabled")
            .and_then(|j| j.as_bool())
            .expect("enabled flag");
        assert_eq!(enabled, cfg!(feature = "obs"));
        if enabled {
            // Acceptance floor: at least 10 distinct counters in the block.
            let counters = recorder.get("counters").expect("counters present");
            let rectpart_json::Json::Obj(pairs) = counters else {
                panic!("counters must be an object");
            };
            assert!(pairs.len() >= 10, "only {} counters", pairs.len());
        }
        // File destination: same block written to disk.
        let msg = run(Command::Evaluate {
            input: input.clone(),
            algo: "RECT-NICOL".into(),
            m: 6,
            stats: Some(stats_file.display().to_string()),
            trace: None,
        })
        .unwrap();
        assert!(msg.contains("stats         ->"));
        let json = rectpart_json::parse(&std::fs::read_to_string(&stats_file).unwrap()).unwrap();
        assert_eq!(
            json.get("algorithm").and_then(|j| j.as_str()),
            Some("RECT-NICOL")
        );
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&stats_file).ok();
    }

    #[test]
    fn serve_parses_and_requires_its_flags() {
        let args: Vec<String> = [
            "serve",
            "--input",
            "m.csv",
            "--queries",
            "q.json",
            "--out",
            "r.json",
            "--rebalance-threshold",
            "0.25",
            "--budget",
            "500",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(
            parse(&args).unwrap(),
            Command::Serve {
                input: PathBuf::from("m.csv"),
                queries: PathBuf::from("q.json"),
                out: Some(PathBuf::from("r.json")),
                rebalance_threshold: Some(0.25),
                budget: Some(500),
                stats: None,
                trace: None,
            }
        );
        let args: Vec<String> = ["serve", "--input", "m.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse(&args).is_err(), "--queries is required");
    }

    #[test]
    fn serve_request_file_parsing() {
        let good = r#"{"queries": [
            {"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 4},
            {"algo": "RECT-UNIFORM", "m": 2,
             "region": [0, 4, 0, 4], "budget": 100, "fallback": ["RECT-UNIFORM"]},
            {"op": "delta", "rows": [{"row": 1, "cells": [1, 2, 3, 4]}]}
        ]}"#;
        let reqs = parse_serve_requests(good).unwrap();
        assert_eq!(reqs.len(), 3);
        let Request::Solve(q) = &reqs[1] else {
            panic!("second request must be a solve");
        };
        assert_eq!(q.region, Some(Rect::new(0, 4, 0, 4)));
        assert_eq!(q.budget, Some(100));
        assert_eq!(q.fallback, vec!["RECT-UNIFORM".to_string()]);
        let Request::Delta(rows) = &reqs[2] else {
            panic!("third request must be a delta");
        };
        assert_eq!(rows[0].cells, vec![1, 2, 3, 4]);

        for bad in [
            "not json",
            r#"{"no_queries": []}"#,
            r#"{"queries": [{"op": "solve", "m": 4}]}"#,
            r#"{"queries": [{"op": "solve", "algo": "X"}]}"#,
            r#"{"queries": [{"op": "warp", "algo": "X", "m": 1}]}"#,
            r#"{"queries": [{"op": "solve", "algo": "X", "m": 1, "region": [1, 2]}]}"#,
            r#"{"queries": [{"op": "delta"}]}"#,
            r#"{"queries": [{"op": "delta", "rows": [{"row": 0, "cells": [4294967296]}]}]}"#,
        ] {
            assert!(parse_serve_requests(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn serve_end_to_end_with_results_and_stats() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let input = dir.join(format!("rectpart-cli-serve-{pid}.csv"));
        let queries = dir.join(format!("rectpart-cli-serve-{pid}.q.json"));
        let results = dir.join(format!("rectpart-cli-serve-{pid}.r.json"));
        run(Command::Generate {
            class: "peak".into(),
            rows: 16,
            cols: 16,
            seed: 6,
            delta: 1.2,
            out: input.clone(),
        })
        .unwrap();
        let delta_cells: Vec<String> = (0..16).map(|c| (c % 7).to_string()).collect();
        std::fs::write(
            &queries,
            format!(
                r#"{{"queries": [
                    {{"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 4}},
                    {{"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 4}},
                    {{"op": "delta", "rows": [{{"row": 2, "cells": [{cells}]}}]}},
                    {{"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 4}},
                    {{"op": "solve", "algo": "JAG-M-OPT-BEST", "m": 4,
                      "region": [0, 8, 0, 8]}}
                ]}}"#,
                cells = delta_cells.join(", ")
            ),
        )
        .unwrap();
        let msg = run(Command::Serve {
            input: input.clone(),
            queries: queries.clone(),
            out: Some(results.clone()),
            rebalance_threshold: None,
            budget: None,
            stats: Some("-".into()),
            trace: None,
        })
        .unwrap();
        assert!(msg.contains("serving 5 requests"), "{msg}");
        assert!(msg.contains("(warm)"), "repeat query served warm: {msg}");
        assert!(msg.contains("1 rows patched"), "{msg}");
        assert!(msg.contains("engine: 4 queries, 1 warm hits"), "{msg}");

        // The results file reports every request in order.
        let json = rectpart_json::parse(&std::fs::read_to_string(&results).unwrap()).unwrap();
        let rectpart_json::Json::Arr(items) = json.get("results").expect("results") else {
            panic!("results must be an array");
        };
        assert_eq!(items.len(), 5);
        assert_eq!(
            items[1].get("warm_hit").and_then(|j| j.as_bool()),
            Some(true)
        );
        assert_eq!(
            items[3].get("warm_hit").and_then(|j| j.as_bool()),
            Some(false)
        );
        assert_eq!(
            items[2].get("rows_patched").and_then(|j| j.as_u64()),
            Some(1)
        );

        // The stats block reports the engine's real tallies.
        let (_, json_text) = msg.split_once("stats:\n").expect("stats block present");
        let stats = rectpart_json::parse(json_text).unwrap();
        assert_eq!(stats.get("mode").and_then(|j| j.as_str()), Some("serve"));
        let engine = stats.get("engine").expect("engine block");
        assert_eq!(engine.get("queries").and_then(|j| j.as_u64()), Some(4));
        assert_eq!(engine.get("warm_hits").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(
            engine.get("delta_rows_patched").and_then(|j| j.as_u64()),
            Some(1)
        );

        // A warm re-solve after the delta matches a cold partition run
        // on the patched matrix (bit-identity at the CLI boundary).
        let matrix = read_csv(&input).unwrap();
        let mut patched = matrix.clone();
        let row: Vec<u32> = (0..16u32).map(|c| c % 7).collect();
        patched.data_mut()[2 * 16..3 * 16].copy_from_slice(&row);
        let pfx = PrefixSum2D::new(&patched);
        use rectpart_core::Partitioner as _;
        let cold = rectpart_core::JagMOpt::default().partition(&pfx, 4);
        let got_rects: Vec<Vec<u64>> = match items[3].get("rects") {
            Some(rectpart_json::Json::Arr(rs)) => rs
                .iter()
                .map(|r| match r {
                    rectpart_json::Json::Arr(v) => v.iter().filter_map(|x| x.as_u64()).collect(),
                    _ => panic!("rect must be an array"),
                })
                .collect(),
            _ => panic!("rects must be an array"),
        };
        let want: Vec<Vec<u64>> = cold
            .rects()
            .iter()
            .map(|r| vec![r.r0 as u64, r.r1 as u64, r.c0 as u64, r.c1 as u64])
            .collect();
        assert_eq!(got_rects, want, "serve answer diverged from cold solve");

        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&queries).ok();
        std::fs::remove_file(&results).ok();
    }

    #[test]
    fn serve_maps_engine_errors_to_input_exit_code() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let input = dir.join(format!("rectpart-cli-serve-err-{pid}.csv"));
        let queries = dir.join(format!("rectpart-cli-serve-err-{pid}.q.json"));
        std::fs::write(&input, "1,2\n3,4\n").unwrap();
        std::fs::write(
            &queries,
            r#"{"queries": [{"op": "solve", "algo": "RECT-UNIFORM", "m": 1,
                "region": [0, 9, 0, 9]}]}"#,
        )
        .unwrap();
        let err = run(Command::Serve {
            input: input.clone(),
            queries: queries.clone(),
            out: None,
            rebalance_threshold: None,
            budget: None,
            stats: None,
            trace: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("region"), "{err}");
        // A malformed batch file is also an input error.
        std::fs::write(&queries, "{").unwrap();
        let err = run(Command::Serve {
            input: input.clone(),
            queries: queries.clone(),
            out: None,
            rebalance_threshold: None,
            budget: None,
            stats: None,
            trace: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&queries).ok();
    }
}
