//! Acceptance contract of the `benchdiff` binary: self-diff of a real
//! committed baseline exits 0; a +10% injected op-count regression
//! exits nonzero; garbage input exits 2.

use std::path::PathBuf;
use std::process::{Command, Output};

use rectpart_json::Json;

fn benchdiff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_benchdiff"))
        .args(args)
        .output()
        .expect("spawn benchdiff binary")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rectpart-benchdiff-{}-{name}", std::process::id()))
}

/// The committed substrate baseline at the workspace root.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_substrate.json")
}

/// The committed resident-engine baseline at the workspace root.
fn engine_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Multiplies every integer leaf of every `*_ops`/`*_ops`-like counter
/// by `pct` percent. Returns how many leaves were inflated.
fn inflate_ops(json: &mut Json, pct: u64) -> usize {
    match json {
        Json::Obj(fields) => {
            let mut n = 0;
            for (key, value) in fields.iter_mut() {
                if let Json::UInt(u) = value {
                    if key.ends_with("_ops") && !key.ends_with("_ns") {
                        *u += (*u * pct) / 100;
                        n += 1;
                    }
                } else {
                    n += inflate_ops(value, pct);
                }
            }
            n
        }
        Json::Arr(items) => items.iter_mut().map(|j| inflate_ops(j, pct)).sum(),
        _ => 0,
    }
}

#[test]
fn self_diff_of_committed_baseline_exits_zero() {
    let baseline = baseline_path();
    let out = benchdiff(&[
        baseline.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Multiplies every integer leaf under the named key by `pct` percent.
/// Returns how many leaves were inflated.
fn inflate_key(json: &mut Json, name: &str, pct: u64) -> usize {
    match json {
        Json::Obj(fields) => {
            let mut n = 0;
            for (key, value) in fields.iter_mut() {
                if let Json::UInt(u) = value {
                    if key == name {
                        *u += (*u * pct) / 100;
                        n += 1;
                    }
                } else {
                    n += inflate_key(value, name, pct);
                }
            }
            n
        }
        Json::Arr(items) => items.iter_mut().map(|j| inflate_key(j, name, pct)).sum(),
        _ => 0,
    }
}

#[test]
fn self_diff_of_committed_engine_baseline_exits_zero() {
    let baseline = engine_baseline_path();
    let out = benchdiff(&[
        baseline.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The engine report's warm/cold counter leaves participate in the
/// gate: more work units on the warm path than the committed baseline
/// is a perf regression of the resident engine.
#[test]
fn injected_engine_work_regression_exits_nonzero() {
    let baseline = engine_baseline_path();
    let mut doc = rectpart_json::parse(&std::fs::read_to_string(&baseline).unwrap()).unwrap();
    let inflated = inflate_key(&mut doc, "work_units", 10);
    assert!(
        inflated >= 4,
        "engine baseline must price work units for both paths of both series"
    );
    let regressed = tmp("engine-regressed.json");
    std::fs::write(&regressed, doc.to_string_pretty()).unwrap();
    let out = benchdiff(&[baseline.to_str().unwrap(), regressed.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("work_units"), "{stderr}");
    // An improvement in the same leaves is never a failure.
    let out = benchdiff(&[
        regressed.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_file(&regressed).ok();
}

#[test]
fn injected_ten_percent_op_regression_exits_nonzero() {
    let baseline = baseline_path();
    let mut doc = rectpart_json::parse(&std::fs::read_to_string(&baseline).unwrap()).unwrap();
    let inflated = inflate_ops(&mut doc, 10);
    assert!(inflated > 0, "baseline must contain *_ops counters");
    let regressed = tmp("regressed.json");
    std::fs::write(&regressed, doc.to_string_pretty()).unwrap();
    // +10% trips the default 2% gate ...
    let out = benchdiff(&[baseline.to_str().unwrap(), regressed.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regressed"), "{stderr}");
    assert!(stderr.contains("_ops"), "{stderr}");
    // ... and passes a gate slacker than the injection.
    let out = benchdiff(&[
        baseline.to_str().unwrap(),
        regressed.to_str().unwrap(),
        "--tolerance",
        "15",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The reverse direction (an improvement) is never a failure.
    let out = benchdiff(&[
        regressed.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_file(&regressed).ok();
}

#[test]
fn usage_and_io_errors_exit_two() {
    assert_eq!(benchdiff(&[]).status.code(), Some(2));
    assert_eq!(benchdiff(&["a.json"]).status.code(), Some(2));
    assert_eq!(
        benchdiff(&["/nonexistent/a.json", "/nonexistent/b.json"])
            .status
            .code(),
        Some(2)
    );
    let bad = tmp("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    let baseline = baseline_path();
    assert_eq!(
        benchdiff(&[baseline.to_str().unwrap(), bad.to_str().unwrap()])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        benchdiff(&[
            baseline.to_str().unwrap(),
            baseline.to_str().unwrap(),
            "--tolerance",
            "lots"
        ])
        .status
        .code(),
        Some(2)
    );
    std::fs::remove_file(&bad).ok();
}
