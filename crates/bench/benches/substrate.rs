//! Substrate speed benchmark: blocked vs per-cell-checked Γ
//! construction, dense vs CSR-like sparse backends, and scratch-arena
//! reuse in the DP hot loops, with a machine-readable export.
//!
//! Three questions, answered with deterministic obs counters (not wall
//! clock, so the numbers are comparable across machines):
//!
//! 1. How many checked-add operations does the blocked Γ build spend
//!    against the old per-cell reference build on a 4096×4096 dense
//!    instance? (The tiling hoists overflow checks to tile boundaries;
//!    the target is a ≥1.5× reduction, the measured one is ~2000×.)
//! 2. How much Γ memory does the sparse backend save on a ≥90%-zero
//!    instance? (`gamma_bytes` dense vs sparse; target ≥5×.)
//! 3. How many buffer allocations do the solver hot loops perform per
//!    solve, and how many are avoided by scratch reuse? (ScratchAllocs
//!    vs ScratchReuses for JAG-M-HEUR, JAG-M-OPT-BEST and RECT-NICOL
//!    on a dense and a sparse instance.)
//!
//! Wall-clock timings of the same builds ride along via criterion for
//! local before/after comparisons. Results land in
//! `BENCH_substrate.json` at the workspace root; counter fields require
//! `--features obs` (the uninstrumented run still writes timings and
//! memory figures, with `"instrumented": false`).

use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::{
    GammaMode, JagMHeur, JagMOpt, LoadMatrix, Partitioner, PrefixSum2D, RectNicol,
};
use rectpart_json::{Json, ToJson};
use rectpart_parallel::with_threads;
use rectpart_workloads::uniform;

/// Dense acceptance instance from the issue: 4096×4096, every cell set.
const DENSE_N: usize = 4096;
/// Sparse acceptance instance: same shape, ~92% zero cells.
const SPARSE_ZERO_PERCENT: u32 = 92;

fn dense_matrix(n: usize) -> LoadMatrix {
    uniform(n, n, 11).delta(1.2).build()
}

fn sparse_matrix(n: usize) -> LoadMatrix {
    let mut rng = StdRng::seed_from_u64(23);
    LoadMatrix::from_fn(n, n, |_, _| {
        if rng.gen_range(0u32..100) < SPARSE_ZERO_PERCENT {
            0
        } else {
            rng.gen_range(1..100)
        }
    })
}

/// Runs `f` once under a single-thread budget against a freshly reset
/// recorder and returns the counters named in `keys` (0 when absent or
/// uninstrumented). Single-threaded so the thread-budget-dependent
/// `core.gamma.checked_ops` exec stat is reproducible.
fn counted(keys: &[&str], f: &dyn Fn()) -> Vec<u64> {
    let rec = rectpart_obs::Recorder::global();
    rec.reset();
    with_threads(1, f);
    let report = rec.snapshot();
    keys.iter().map(|k| report.get(k).unwrap_or(0)).collect()
}

fn ratio(before: u64, after: u64) -> Json {
    if after == 0 {
        Json::Null
    } else {
        (before as f64 / after as f64).to_json()
    }
}

/// Γ build op counts: per-cell-checked reference vs blocked build.
fn gamma_ops(matrix: &LoadMatrix, label: &str) -> Json {
    const OPS: &str = "core.gamma.checked_ops";
    const SWEEPS: &str = "core.gamma.tile_sweeps";
    let reference = counted(&[OPS], &|| {
        drop(PrefixSum2D::try_new_reference(black_box(matrix)).unwrap())
    })[0];
    let blocked = counted(&[OPS, SWEEPS], &|| {
        drop(PrefixSum2D::try_new_with(black_box(matrix), GammaMode::Dense).unwrap())
    });
    Json::obj(vec![
        ("case", label.to_json()),
        ("cells", (matrix.rows() * matrix.cols()).to_json()),
        ("reference_checked_ops", reference.to_json()),
        ("blocked_checked_ops", blocked[0].to_json()),
        ("blocked_tile_sweeps", blocked[1].to_json()),
        ("checked_ops_reduction", ratio(reference, blocked[0])),
    ])
}

/// Γ memory: dense table bytes vs CSR-like sparse bytes on one matrix.
fn gamma_memory(matrix: &LoadMatrix, label: &str) -> Json {
    const RUNS: &str = "core.gamma.sparse_runs";
    let dense = PrefixSum2D::try_new_with(matrix, GammaMode::Dense).unwrap();
    let runs = counted(&[RUNS], &|| {
        drop(PrefixSum2D::try_new_with(black_box(matrix), GammaMode::Sparse).unwrap())
    })[0];
    let sparse = PrefixSum2D::try_new_with(matrix, GammaMode::Sparse).unwrap();
    let auto = PrefixSum2D::try_new_auto(matrix).unwrap();
    Json::obj(vec![
        ("case", label.to_json()),
        ("dense_gamma_bytes", dense.gamma_bytes().to_json()),
        ("sparse_gamma_bytes", sparse.gamma_bytes().to_json()),
        (
            "memory_reduction",
            ratio(dense.gamma_bytes() as u64, sparse.gamma_bytes() as u64),
        ),
        ("sparse_runs", runs.to_json()),
        ("auto_picked_sparse", auto.is_sparse().to_json()),
    ])
}

/// Scratch-arena accounting for one solver on one instance: allocations
/// and reuses per solve, plus total work-loop charges for context.
fn solver_allocs(algo: &dyn Partitioner, pfx: &PrefixSum2D, m: usize, label: &str) -> Json {
    const KEYS: &[&str] = &[
        "onedim.scratch.allocs",
        "onedim.scratch.reuses",
        "onedim.nicol_calls",
    ];
    let vals = counted(KEYS, &|| drop(algo.partition(black_box(pfx), m)));
    let (allocs, reuses, nicol_calls) = (vals[0], vals[1], vals[2]);
    Json::obj(vec![
        ("case", label.to_json()),
        ("algorithm", algo.name().to_json()),
        ("m", m.to_json()),
        ("scratch_allocs", allocs.to_json()),
        ("scratch_reuses", reuses.to_json()),
        ("nicol_calls", nicol_calls.to_json()),
        (
            "reuse_fraction",
            if allocs + reuses == 0 {
                Json::Null
            } else {
                (reuses as f64 / (allocs + reuses) as f64).to_json()
            },
        ),
    ])
}

/// Wall-clock timings of the three Γ builds at a single-thread budget.
fn bench_gamma_builds(c: &mut Criterion, dense: &LoadMatrix, sparse: &LoadMatrix) {
    let mut g = c.benchmark_group("substrate-gamma");
    g.sample_size(10);
    g.bench_function(format!("reference/{DENSE_N}x{DENSE_N}"), |b| {
        b.iter(|| {
            with_threads(1, || {
                PrefixSum2D::try_new_reference(black_box(dense)).unwrap()
            })
        })
    });
    g.bench_function(format!("blocked/{DENSE_N}x{DENSE_N}"), |b| {
        b.iter(|| {
            with_threads(1, || {
                PrefixSum2D::try_new_with(black_box(dense), GammaMode::Dense).unwrap()
            })
        })
    });
    g.bench_function(format!("sparse/{DENSE_N}x{DENSE_N}-92pct-zero"), |b| {
        b.iter(|| {
            with_threads(1, || {
                PrefixSum2D::try_new_with(black_box(sparse), GammaMode::Sparse).unwrap()
            })
        })
    });
    g.finish();
}

fn num_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let dense = dense_matrix(DENSE_N);
    let sparse = sparse_matrix(DENSE_N);
    bench_gamma_builds(&mut c, &dense, &sparse);

    let gamma_ops_entries = vec![
        gamma_ops(&dense, &format!("dense/{DENSE_N}x{DENSE_N}")),
        gamma_ops(&sparse, &format!("sparse/{DENSE_N}x{DENSE_N}-92pct-zero")),
    ];
    let gamma_memory_entries = vec![
        gamma_memory(&sparse, &format!("sparse/{DENSE_N}x{DENSE_N}-92pct-zero")),
        gamma_memory(&dense, &format!("dense/{DENSE_N}x{DENSE_N}")),
    ];

    // Solver instances are smaller: the point is allocations per solve,
    // not instance scaling, and JAG-M-OPT is exponential-ish in size.
    let solver_dense = PrefixSum2D::try_new(&dense_matrix(256)).unwrap();
    let solver_sparse = PrefixSum2D::try_new_with(&sparse_matrix(256), GammaMode::Sparse).unwrap();
    let algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(JagMHeur::best()),
        Box::new(JagMOpt::default()),
        Box::new(RectNicol::default()),
    ];
    let mut solver_entries = Vec::new();
    for algo in &algos {
        solver_entries.push(solver_allocs(
            algo.as_ref(),
            &solver_dense,
            64,
            "dense/256x256",
        ));
        solver_entries.push(solver_allocs(
            algo.as_ref(),
            &solver_sparse,
            64,
            "sparse/256x256-92pct-zero",
        ));
    }

    let timings: Vec<Json> = c
        .results()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", r.id.to_json()),
                ("mean_ns", r.mean_ns.to_json()),
            ])
        })
        .collect();

    let instrumented = rectpart_obs::Recorder::global().enabled();
    let doc = Json::obj(vec![
        ("benchmark", "substrate-speed".to_json()),
        ("host_cores", num_cores().to_json()),
        ("instrumented", instrumented.to_json()),
        (
            "note",
            "op counts and allocation tallies are deterministic obs counters \
             measured under a single-thread budget (identical on every host); \
             timings are wall clock and only comparable on the same machine — \
             on a single-core host read them against host_cores. Counter \
             fields are zero unless built with --features obs."
                .to_json(),
        ),
        ("gamma_build_ops", Json::Arr(gamma_ops_entries)),
        ("gamma_memory", Json::Arr(gamma_memory_entries)),
        ("solver_allocations_per_solve", Json::Arr(solver_entries)),
        ("timings", Json::Arr(timings)),
    ]);
    let path = format!("{}/../../BENCH_substrate.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, rectpart_json::to_string_pretty(&doc)).expect("write bench export");
    eprintln!("wrote {path}");
}
