//! Serial-vs-parallel benchmark of the parallel execution layer, with a
//! machine-readable export.
//!
//! Measures the 2D prefix-sum (Γ) construction at 512², 2048² and 4096²
//! and `JAG-M-HEUR-BEST` at m ∈ {16, 1000, 10000} on the paper's 512²
//! uniform instance, each under a forced single-thread budget and under
//! the auto-detected budget. Both configurations produce bit-identical
//! results (see `crates/core/tests/differential.rs`); only the wall
//! clock differs.
//!
//! Results land in `BENCH_parallel.json` at the workspace root together
//! with the machine's core count and the thread budget used — on a
//! single-core host the "parallel" numbers are expected to sit at parity
//! (the layer falls back to serial execution when fewer than two worker
//! threads are available), so speedups must always be read against the
//! recorded `host_cores`.

//! With `--features obs` the same benchmarks run instrumented: one
//! counter snapshot per workload (recorder reset → single run →
//! snapshot) is embedded under `"stats"` and the document is written to
//! `BENCH_obs.json` instead, preserving the uninstrumented baseline for
//! the zero-overhead comparison.

use criterion::{black_box, Criterion};
use rectpart_core::{JagMHeur, JagPqOpt, Partitioner, PrefixSum2D};
use rectpart_json::Json;
use rectpart_parallel::{current_threads, with_threads};
use rectpart_workloads::uniform;

fn bench_gamma(c: &mut Criterion) {
    for &n in &[512usize, 2048, 4096] {
        let matrix = uniform(n, n, 11).delta(1.2).build();
        let mut g = c.benchmark_group("gamma");
        g.sample_size(if n >= 4096 { 10 } else { 15 });
        g.bench_function(format!("serial/{n}x{n}"), |b| {
            b.iter(|| with_threads(1, || PrefixSum2D::new(black_box(&matrix))))
        });
        g.bench_function(format!("parallel/{n}x{n}"), |b| {
            b.iter(|| PrefixSum2D::new(black_box(&matrix)))
        });
        g.finish();
    }
}

fn bench_jag_m_heur(c: &mut Criterion) {
    let matrix = uniform(512, 512, 6).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let algo = JagMHeur::best();
    for &m in &[16usize, 1000, 10000] {
        let mut g = c.benchmark_group("jag-m-heur");
        g.sample_size(10);
        g.bench_function(format!("serial/512x512-m{m}"), |b| {
            b.iter(|| with_threads(1, || algo.partition(black_box(&pfx), m)))
        });
        g.bench_function(format!("parallel/512x512-m{m}"), |b| {
            b.iter(|| algo.partition(black_box(&pfx), m))
        });
        g.finish();
    }
}

fn bench_jag_pq_opt(c: &mut Criterion) {
    // Small enough for the optimal DP, large enough that the stripe
    // cache sees thousands of lookups (hit rate lands near 35–40%).
    let matrix = uniform(128, 128, 9).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let algo = JagPqOpt::default();
    let mut g = c.benchmark_group("jag-pq-opt");
    g.sample_size(10);
    g.bench_function("serial/128x128-m36", |b| {
        b.iter(|| with_threads(1, || algo.partition(black_box(&pfx), 36)))
    });
    g.bench_function("parallel/128x128-m36", |b| {
        b.iter(|| algo.partition(black_box(&pfx), 36))
    });
    g.finish();
}

/// One instrumented pass per workload, each against a freshly reset
/// recorder, so the exported counters describe exactly one run of each
/// case (criterion's warm-up iterations would otherwise multiply them).
fn counter_snapshots() -> Json {
    let rec = rectpart_obs::Recorder::global();
    let mut per_case = Vec::new();
    let mut snap = |case: &str, run: &dyn Fn()| {
        rec.reset();
        run();
        per_case.push((case.to_string(), rec.snapshot().to_json()));
    };
    let g512 = uniform(512, 512, 11).delta(1.2).build();
    snap("gamma/512x512", &|| drop(PrefixSum2D::new(&g512)));
    let matrix = uniform(512, 512, 6).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let heur = JagMHeur::best();
    snap("jag-m-heur/512x512-m1000", &|| {
        drop(heur.partition(&pfx, 1000))
    });
    let small = uniform(128, 128, 9).delta(1.2).build();
    let spfx = PrefixSum2D::new(&small);
    let opt = JagPqOpt::default();
    snap("jag-pq-opt/128x128-m36", &|| drop(opt.partition(&spfx, 36)));
    Json::obj(
        per_case
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect(),
    )
}

/// Splits `"<group>/serial/<case>"` into `(group, case)`; `None` for
/// non-serial ids so each pair is exported exactly once.
fn serial_case(id: &str) -> Option<(&str, &str)> {
    let mut parts = id.splitn(3, '/');
    let group = parts.next()?;
    let kind = parts.next()?;
    let case = parts.next()?;
    (kind == "serial").then_some((group, case))
}

/// Pairs `<group>/serial/<case>` with `<group>/parallel/<case>` and
/// emits one JSON record per case.
fn export(c: &Criterion, threads: usize) {
    let results = c.results();
    let mut entries = Vec::new();
    for r in results {
        let Some((group, case)) = serial_case(&r.id) else {
            continue;
        };
        let parallel_id = format!("{group}/parallel/{case}");
        let Some(p) = results.iter().find(|o| o.id == parallel_id) else {
            continue;
        };
        entries.push(Json::obj(vec![
            ("group", group.to_json()),
            ("case", case.to_json()),
            ("serial_ns", r.mean_ns.to_json()),
            ("parallel_ns", p.mean_ns.to_json()),
            ("speedup", (r.mean_ns / p.mean_ns).to_json()),
        ]));
    }
    let instrumented = rectpart_obs::Recorder::global().enabled();
    let doc = Json::obj(vec![
        ("benchmark", "parallel-execution-layer".to_json()),
        ("host_cores", num_cores().to_json()),
        ("parallel_threads", threads.to_json()),
        ("instrumented", instrumented.to_json()),
        (
            "note",
            "parallel results are bit-identical to serial; speedup is only \
             meaningful when host_cores > 1 (the layer falls back to serial \
             execution under a single-thread budget)"
                .to_json(),
        ),
        ("entries", Json::Arr(entries)),
        ("stats", counter_snapshots()),
    ]);
    // Instrumented runs get their own file so the uninstrumented timing
    // baseline survives for the zero-overhead comparison.
    let name = if instrumented {
        "BENCH_obs.json"
    } else {
        "BENCH_parallel.json"
    };
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, rectpart_json::to_string_pretty(&doc)).expect("write bench export");
    eprintln!("wrote {path}");
}

fn num_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

use rectpart_json::ToJson;

fn main() {
    let threads = current_threads();
    let mut c = Criterion::default().configure_from_args();
    bench_gamma(&mut c);
    bench_jag_m_heur(&mut c);
    bench_jag_pq_opt(&mut c);
    export(&c, threads);
}
