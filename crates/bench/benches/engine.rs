//! Resident-engine serving benchmark: cold re-solves vs a warm engine
//! over a drifting PIC-MAG time series, with a machine-readable export.
//!
//! The engine's pitch (DESIGN.md §17) is that a long-lived process
//! serving partition queries against a slowly drifting load matrix
//! should not pay for a full Γ rebuild and a cold bisection on every
//! snapshot. This benchmark prices that claim with deterministic obs
//! counters (not wall clock, so the numbers are comparable across
//! machines and provable on a single-core CI host):
//!
//! * **cold path** — every snapshot gets a fresh engine: one Γ build
//!   and one unseeded `JAG-M-OPT-BEST` solve per snapshot.
//! * **warm path** — one resident engine across the series: row deltas
//!   are applied through [`Engine::apply_delta`] (row-incremental Γ
//!   patching) and each re-solve is warm-started from the previous
//!   snapshot's incumbent.
//!
//! Both paths must produce **bit-identical** partitions (asserted
//! inline); the warm path must spend strictly fewer Γ builds and
//! strictly fewer work units (also asserted, when instrumented). Two
//! series run, one per Γ backend, so the dense sweep-patch and the
//! sparse row-splice are both priced. Wall-clock timings of the same
//! replays ride along via criterion and feed a derived requests/sec
//! figure. Results land in `BENCH_engine.json` at the workspace root;
//! counter fields require `--features obs` (the uninstrumented run
//! still writes timings, with `"instrumented": false`).

use criterion::{black_box, Criterion};
use rectpart_core::{GammaMode, LoadMatrix, Partition, RowUpdate};
use rectpart_engine::{Engine, EngineConfig, Query, RebalancePolicy};
use rectpart_json::{Json, ToJson};
use rectpart_parallel::with_threads;
use rectpart_workloads::{pic_trace, PicConfig, PicSnapshot};

/// Parts per query — large enough that JAG-M-OPT's bisection has a
/// real search range to shrink with a warm-start incumbent.
const M: usize = 12;
/// The algorithm served: the paper's best optimal class, and the one
/// the engine warm-starts (seeded incumbent + probe skipping).
const ALGO: &str = "JAG-M-OPT-BEST";

/// A drift series scaled so deltas stay row-sparse: few particles on a
/// 64×64 grid with a small time step, so consecutive snapshots differ
/// in well under half the rows and the engine's work model picks the
/// row-incremental patch over a rebuild.
fn series_config(base_load: u32, seed: u64) -> PicConfig {
    PicConfig {
        rows: 64,
        cols: 64,
        particles: 48,
        snapshots: 12,
        substeps_per_snapshot: 1,
        iterations_per_snapshot: 500,
        dt: 0.002,
        base_load,
        particle_weight: 9,
        seed,
    }
}

fn engine_config(mode: GammaMode) -> EngineConfig {
    EngineConfig {
        gamma_mode: mode,
        rebalance: RebalancePolicy::EverySnapshot,
        budget: None,
    }
}

/// Row-granular diff between two snapshots of the same shape.
fn row_deltas(prev: &LoadMatrix, next: &LoadMatrix) -> Vec<RowUpdate> {
    (0..prev.rows())
        .filter(|&r| prev.row(r) != next.row(r))
        .map(|r| RowUpdate {
            row: r,
            cells: next.row(r).to_vec(),
        })
        .collect()
}

/// Cold oracle: a fresh engine (fresh Γ, no incumbents) per snapshot.
fn run_cold(trace: &[PicSnapshot], mode: GammaMode) -> Vec<Partition> {
    trace
        .iter()
        .map(|snap| {
            let mut e = Engine::with_config(snap.matrix.clone(), engine_config(mode))
                .expect("engine build");
            e.solve(&Query::new(ALGO, M)).expect("cold solve").partition
        })
        .collect()
}

/// Warm path: one resident engine, row deltas patched in, re-solves
/// warm-started from the previous incumbent.
fn run_warm(
    trace: &[PicSnapshot],
    deltas: &[Vec<RowUpdate>],
    mode: GammaMode,
) -> (Vec<Partition>, Vec<u64>) {
    let mut e =
        Engine::with_config(trace[0].matrix.clone(), engine_config(mode)).expect("engine build");
    let mut out = vec![e.solve(&Query::new(ALGO, M)).expect("warm solve").partition];
    let mut rows_patched = Vec::new();
    for delta in deltas {
        rows_patched.push(e.apply_delta(delta).expect("delta"));
        out.push(e.solve(&Query::new(ALGO, M)).expect("warm solve").partition);
    }
    (out, rows_patched)
}

/// Counters priced for each path. Every entry is a deterministic obs
/// counter (identical at any thread count); `benchdiff` gates on the
/// exported integer leaves.
const KEYS: &[(&str, &str)] = &[
    ("gamma_builds", "core.gamma_builds"),
    ("gamma_tile_sweeps", "core.gamma.tile_sweeps"),
    ("jag_m_feasibility_checks", "core.jag_m.feasibility_checks"),
    ("jag_m_lazy_evals", "core.jag_m.lazy_evals"),
    ("nicol_calls", "onedim.nicol_calls"),
    ("probe_calls", "onedim.probe_calls"),
    ("engine_queries", "engine.queries"),
    ("engine_warm_hits", "engine.warm_hits"),
    ("delta_rows_patched", "engine.delta_rows_patched"),
    (
        "warm_start_probes_skipped",
        "engine.warm_start_probes_skipped",
    ),
];

/// Runs `f` once under a single-thread budget against a freshly reset
/// recorder and returns (counters named in `KEYS`, total work units,
/// f's result). Counter slots are 0 when uninstrumented.
fn counted<R>(f: impl FnOnce() -> R) -> (Vec<u64>, u64, R) {
    let rec = rectpart_obs::Recorder::global();
    rec.reset();
    rectpart_obs::work::reset();
    let out = with_threads(1, f);
    let report = rec.snapshot();
    let counters = KEYS
        .iter()
        .map(|&(_, key)| report.get(key).unwrap_or(0))
        .collect();
    (counters, rectpart_obs::work::spent(), out)
}

fn counters_json(counters: &[u64], work: u64) -> Json {
    let mut fields: Vec<(&str, Json)> = KEYS
        .iter()
        .zip(counters)
        .map(|(&(label, _), &v)| (label, v.to_json()))
        .collect();
    fields.push(("work_units", work.to_json()));
    Json::obj(fields)
}

fn ratio(cold: u64, warm: u64) -> Json {
    if warm == 0 {
        Json::Null
    } else {
        (cold as f64 / warm as f64).to_json()
    }
}

/// One cold-vs-warm measurement over a PIC series on one Γ backend.
fn serve_series(label: &str, mode: GammaMode, cfg: &PicConfig, instrumented: bool) -> Json {
    let trace = pic_trace(cfg);
    let deltas: Vec<Vec<RowUpdate>> = trace
        .windows(2)
        .map(|w| row_deltas(&w[0].matrix, &w[1].matrix))
        .collect();

    let (cold_counters, cold_work, cold) = counted(|| run_cold(&trace, mode));
    let (warm_counters, warm_work, (warm, rows_patched)) =
        counted(|| run_warm(&trace, &deltas, mode));

    assert_eq!(
        warm, cold,
        "{label}: warm engine diverged from cold re-solves"
    );
    if instrumented {
        let get = |counters: &[u64], label: &str| {
            counters[KEYS.iter().position(|&(l, _)| l == label).unwrap()]
        };
        assert!(
            get(&warm_counters, "gamma_builds") < get(&cold_counters, "gamma_builds"),
            "{label}: warm path must build strictly fewer Γ tables"
        );
        assert!(
            warm_work < cold_work,
            "{label}: warm path must charge strictly fewer work units \
             ({warm_work} vs {cold_work})"
        );
    }

    Json::obj(vec![
        ("case", label.to_json()),
        ("gamma_mode", mode_name(mode).to_json()),
        ("algorithm", ALGO.to_json()),
        ("m", M.to_json()),
        ("rows", cfg.rows.to_json()),
        ("cols", cfg.cols.to_json()),
        ("snapshots", trace.len().to_json()),
        ("queries", trace.len().to_json()),
        (
            "delta_rows_per_snapshot",
            Json::Arr(rows_patched.iter().map(|&r| r.to_json()).collect()),
        ),
        ("cold", counters_json(&cold_counters, cold_work)),
        ("warm", counters_json(&warm_counters, warm_work)),
        (
            "savings",
            Json::obj(vec![
                ("gamma_builds", ratio(cold_counters[0], warm_counters[0])),
                ("work_units", ratio(cold_work, warm_work)),
                (
                    "feasibility_checks",
                    ratio(cold_counters[2], warm_counters[2]),
                ),
            ]),
        ),
        ("bit_identical", true.to_json()),
    ])
}

fn mode_name(mode: GammaMode) -> &'static str {
    match mode {
        GammaMode::Dense => "dense",
        GammaMode::Sparse => "sparse",
        GammaMode::Auto => "auto",
    }
}

/// Wall-clock replays of both paths (dense backend) for local
/// before/after comparisons and the derived requests/sec figure.
fn bench_serving(c: &mut Criterion, cfg: &PicConfig) {
    let trace = pic_trace(cfg);
    let deltas: Vec<Vec<RowUpdate>> = trace
        .windows(2)
        .map(|w| row_deltas(&w[0].matrix, &w[1].matrix))
        .collect();
    let mut g = c.benchmark_group("engine-serve");
    g.sample_size(10);
    let n = trace.len();
    g.bench_function(format!("cold/pic-64x64-{n}snap"), |b| {
        b.iter(|| with_threads(1, || run_cold(black_box(&trace), GammaMode::Dense)))
    });
    g.bench_function(format!("warm/pic-64x64-{n}snap"), |b| {
        b.iter(|| {
            with_threads(1, || {
                run_warm(black_box(&trace), black_box(&deltas), GammaMode::Dense)
            })
        })
    });
    g.finish();
}

fn num_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let dense_cfg = series_config(4, 11);
    // Zero background load: cells without particles stay 0, so the
    // sparse backend's run encoding (and its row-splice patch) engages.
    let sparse_cfg = series_config(0, 11);
    bench_serving(&mut c, &dense_cfg);

    let instrumented = rectpart_obs::Recorder::global().enabled();
    let series = vec![
        serve_series(
            "pic-64x64-dense",
            GammaMode::Dense,
            &dense_cfg,
            instrumented,
        ),
        serve_series(
            "pic-64x64-sparse",
            GammaMode::Sparse,
            &sparse_cfg,
            instrumented,
        ),
    ];

    let timings: Vec<Json> = c
        .results()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", r.id.to_json()),
                ("mean_ns", r.mean_ns.to_json()),
            ])
        })
        .collect();
    // Queries served per wall-clock second by the warm replay (one
    // solve per snapshot; delta patching included). Wall clock, so only
    // comparable on the same machine.
    let queries = series_config(4, 11).snapshots as f64;
    let warm_rps = c
        .results()
        .iter()
        .find(|r| r.id.starts_with("engine-serve/warm"))
        .map_or(Json::Null, |r| (queries / (r.mean_ns / 1e9)).to_json());

    let doc = Json::obj(vec![
        ("benchmark", "engine-serving".to_json()),
        ("host_cores", num_cores().to_json()),
        ("instrumented", instrumented.to_json()),
        ("gamma_mode", "per-series".to_json()),
        (
            "note",
            "cold/warm figures are deterministic obs counters measured \
             under a single-thread budget (identical on every host); \
             each series entry tags the Γ backend it ran under in its \
             own gamma_mode field. Timings are wall clock and only \
             comparable on the same machine — on a single-core host \
             read them against host_cores. Counter fields are zero \
             unless built with --features obs."
                .to_json(),
        ),
        ("series", Json::Arr(series)),
        ("warm_requests_per_sec", warm_rps),
        ("timings", Json::Arr(timings)),
    ]);
    let path = format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, rectpart_json::to_string_pretty(&doc)).expect("write bench export");
    eprintln!("wrote {path}");
}
