//! 2D partitioner benchmarks on a 512x512 Uniform instance with delta =
//! 1.2 — the configuration of the paper's figure 6 runtime study. The
//! expected ordering (fastest to slowest): RECT-UNIFORM << HIER-RB <
//! JAG-PQ-HEUR ~ JAG-M-HEUR < RECT-NICOL < HIER-RELAXED.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rectpart_core::{
    standard_heuristics, JaggedIndex, Partitioner, PrefixSum2D, RectTreeIndex, SpiralRelaxed,
};
use rectpart_workloads::uniform;

fn bench_heuristics(c: &mut Criterion) {
    let matrix = uniform(512, 512, 6).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let mut g = c.benchmark_group("algorithms/512x512-uniform");
    g.sample_size(10);
    for algo in standard_heuristics() {
        for &m in &[100usize, 1024] {
            g.bench_with_input(BenchmarkId::new(algo.name(), m), &m, |b, &m| {
                b.iter(|| algo.partition(black_box(&pfx), m))
            });
        }
    }
    g.finish();
}

fn bench_prefix_build(c: &mut Criterion) {
    let matrix = uniform(512, 512, 7).delta(1.2).build();
    c.bench_function("prefix/build-512x512", |b| {
        b.iter(|| PrefixSum2D::new(black_box(&matrix)))
    });
}

fn bench_spiral_and_indexes(c: &mut Criterion) {
    let matrix = uniform(512, 512, 8).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let mut g = c.benchmark_group("algorithms/extras");
    g.sample_size(10);
    g.bench_function("spiral-relaxed/m400", |b| {
        b.iter(|| SpiralRelaxed::default().partition(black_box(&pfx), 400))
    });
    let part = rectpart_core::JagMHeur::best().partition(&pfx, 1024);
    g.bench_function("jagged-index/build-m1024", |b| {
        b.iter(|| JaggedIndex::detect(black_box(&part)))
    });
    g.bench_function("tree-index/build-m1024", |b| {
        b.iter(|| RectTreeIndex::new(black_box(&part)))
    });
    let jagged = JaggedIndex::detect(&part).unwrap();
    let tree = RectTreeIndex::new(&part);
    g.bench_function("jagged-index/lookup", |b| {
        b.iter(|| jagged.owner_of(black_box(313), black_box(127)))
    });
    g.bench_function("tree-index/lookup", |b| {
        b.iter(|| tree.owner_of(black_box(313), black_box(127)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_prefix_build,
    bench_spiral_and_indexes
);
criterion_main!(benches);
