//! Execution-simulator benchmarks: BSP evaluation (O(m^2) halo scan) and
//! cell-wise migration accounting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rectpart_core::{JagMHeur, Partitioner, PrefixSum2D};
use rectpart_simexec::{migration, Simulator};
use rectpart_workloads::uniform;

fn bench_simexec(c: &mut Criterion) {
    let mut g = c.benchmark_group("simexec");
    g.sample_size(10);
    let pfx = PrefixSum2D::new(&uniform(512, 512, 3).delta(1.5).build());
    let part = JagMHeur::best().partition(&pfx, 1024);
    let part2 = JagMHeur::best().partition(&pfx, 1023);
    let sim = Simulator::default();
    g.bench_function("evaluate/m1024", |b| {
        b.iter(|| sim.evaluate(black_box(&pfx), black_box(&part)))
    });
    g.bench_function("migration/512x512", |b| {
        b.iter(|| migration(black_box(&pfx), black_box(&part), black_box(&part2)))
    });
    g.finish();
}

criterion_group!(benches, bench_simexec);
criterion_main!(benches);
