//! 1D partitioning benchmarks: the heuristics against the optimal
//! algorithms over array length and processor count (paper §2.2's
//! complexity claims: DC/RB `O(m log n)`, Nicol `O((m log n/m)²)`, DP
//! `O(m n log n)` in this implementation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_onedim::{
    direct_cut, direct_cut_refined, dp_optimal, hetero_optimal, nicol, parametric_optimal,
    probe_feasible, probe_feasible_sliced, recursive_bisection, PrefixCosts,
};

fn loads(n: usize, seed: u64) -> PrefixCosts {
    let mut rng = StdRng::seed_from_u64(seed);
    let v: Vec<u64> = (0..n).map(|_| rng.gen_range(1..1000)).collect();
    PrefixCosts::from_loads(&v)
}

fn bench_heuristics(c: &mut Criterion) {
    let mut g = c.benchmark_group("onedim/heuristics");
    for &n in &[512usize, 8192] {
        let cost = loads(n, 1);
        for &m in &[16usize, 100] {
            g.bench_with_input(BenchmarkId::new(format!("DC/n{n}"), m), &m, |b, &m| {
                b.iter(|| direct_cut(black_box(&cost), m))
            });
            g.bench_with_input(BenchmarkId::new(format!("RB/n{n}"), m), &m, |b, &m| {
                b.iter(|| recursive_bisection(black_box(&cost), m))
            });
        }
    }
    g.finish();
}

fn bench_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("onedim/optimal");
    for &n in &[512usize, 8192] {
        let cost = loads(n, 2);
        for &m in &[16usize, 100] {
            g.bench_with_input(BenchmarkId::new(format!("nicol/n{n}"), m), &m, |b, &m| {
                b.iter(|| nicol(black_box(&cost), m))
            });
        }
    }
    // The DP oracle is the slow path by design: keep it small.
    let cost = loads(512, 3);
    g.bench_function("dp/n512/m16", |b| {
        b.iter(|| dp_optimal(black_box(&cost), 16))
    });
    g.finish();
}

fn bench_alternatives(c: &mut Criterion) {
    let mut g = c.benchmark_group("onedim/alternatives");
    let cost = loads(4096, 5);
    g.bench_function("parametric/n4096/m64", |b| {
        b.iter(|| parametric_optimal(black_box(&cost), 64))
    });
    g.bench_function("nicol/n4096/m64", |b| {
        b.iter(|| nicol(black_box(&cost), 64))
    });
    g.bench_function("dc-refined/n4096/m64", |b| {
        b.iter(|| direct_cut_refined(black_box(&cost), 64))
    });
    let budget = nicol(&cost, 64).bottleneck;
    g.bench_function("probe/n4096/m64", |b| {
        b.iter(|| probe_feasible(black_box(&cost), 64, budget))
    });
    g.bench_function("probe-sliced/n4096/m64", |b| {
        b.iter(|| probe_feasible_sliced(black_box(&cost), 64, budget))
    });
    let speeds: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64 * 0.5).collect();
    g.bench_function("hetero/n4096/m64", |b| {
        b.iter(|| hetero_optimal(black_box(&cost), &speeds))
    });
    g.finish();
}

criterion_group!(benches, bench_heuristics, bench_optimal, bench_alternatives);
criterion_main!(benches);
