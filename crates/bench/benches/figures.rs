//! Per-figure micro-harnesses: one benchmark per evaluation experiment,
//! at reduced sizes so `cargo bench` finishes in minutes. The experiment
//! binary (`cargo run -p rectpart-experiments`) regenerates the full
//! series; these benches track the runtime of the code paths behind each
//! figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rectpart_core::{
    HierRb, HierRelaxed, JagMHeur, JagMOpt, JagPqHeur, JagPqOpt, Partitioner, PrefixSum2D,
    RectNicol, RectUniform,
};
use rectpart_workloads::{
    diagonal, multi_peak, peak, slac_like, uniform, PicConfig, PicSimulation,
};

fn pic_snapshot() -> PrefixSum2D {
    let mut sim = PicSimulation::new(PicConfig {
        rows: 128,
        cols: 128,
        particles: 1 << 15,
        snapshots: 2,
        ..PicConfig::default()
    });
    let _ = sim.next_snapshot();
    PrefixSum2D::new(&sim.next_snapshot().matrix)
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // fig 3: HIER-RB variants on Peak.
    let peak_pfx = PrefixSum2D::new(&peak(256, 256, 1).build());
    g.bench_function("fig3/hier-rb-load/peak256/m400", |b| {
        b.iter(|| HierRb::load().partition(black_box(&peak_pfx), 400))
    });

    // fig 4: HIER-RELAXED on Multi-peak.
    let mp_pfx = PrefixSum2D::new(&multi_peak(256, 256, 1).build());
    g.bench_function("fig4/hier-relaxed-load/multipeak256/m400", |b| {
        b.iter(|| HierRelaxed::load().partition(black_box(&mp_pfx), 400))
    });

    // fig 5 / fig 10: hierarchical methods on Diagonal.
    let diag_pfx = PrefixSum2D::new(&diagonal(512, 512, 1).build());
    g.bench_function("fig10/hier-relaxed-load/diag512/m400", |b| {
        b.iter(|| HierRelaxed::load().partition(black_box(&diag_pfx), 400))
    });

    // fig 6: runtime study members on Uniform.
    let uni_pfx = PrefixSum2D::new(&uniform(512, 512, 1).delta(1.2).build());
    g.bench_function("fig6/rect-uniform/m1024", |b| {
        b.iter(|| RectUniform::default().partition(black_box(&uni_pfx), 1024))
    });
    g.bench_function("fig6/rect-nicol/m1024", |b| {
        b.iter(|| RectNicol::default().partition(black_box(&uni_pfx), 1024))
    });
    g.bench_function("fig6/jag-pq-opt/m100", |b| {
        b.iter(|| JagPqOpt::default().partition(black_box(&uni_pfx), 100))
    });

    // figs 7/8: jagged methods on the PIC snapshot.
    let pic = pic_snapshot();
    g.bench_function("fig7/jag-pq-heur/pic/m400", |b| {
        b.iter(|| JagPqHeur::best().partition(black_box(&pic), 400))
    });
    g.bench_function("fig7/jag-m-opt/pic/m100", |b| {
        b.iter(|| JagMOpt::default().partition(black_box(&pic), 100))
    });
    g.bench_function("fig8/jag-m-heur/pic/m400", |b| {
        b.iter(|| JagMHeur::best().partition(black_box(&pic), 400))
    });

    // fig 9: stripe-count sweep member.
    let u514 = PrefixSum2D::new(&uniform(514, 514, 9).delta(1.2).build());
    g.bench_function("fig9/jag-m-heur-p37/m800", |b| {
        b.iter(|| JagMHeur::with_stripes(37).partition(black_box(&u514), 800))
    });

    // figs 12-13 member: full heuristic on PIC.
    g.bench_function("fig13/hier-relaxed/pic/m400", |b| {
        b.iter(|| HierRelaxed::load().partition(black_box(&pic), 400))
    });

    // fig 14: the sparse mesh.
    let slac = PrefixSum2D::new(&slac_like());
    g.bench_function("fig14/jag-m-heur/slac/m400", |b| {
        b.iter(|| JagMHeur::best().partition(black_box(&slac), 400))
    });
    g.bench_function("fig14/hier-rb/slac/m400", |b| {
        b.iter(|| HierRb::load().partition(black_box(&slac), 400))
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
