//! 3D partitioning benchmarks: prefix construction, the three cuboid
//! partitioners, and accumulation to 2D.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rectpart_volume::{
    uniform3, Axis3, HierRb3, HierRelaxed3, JagMHeur3, Partitioner3, PrefixSum3D, RectNicol3,
    RectUniform3,
};

fn bench_volume(c: &mut Criterion) {
    let mut g = c.benchmark_group("volume");
    g.sample_size(10);
    let v = uniform3(64, 64, 64, 1.5, 1);
    g.bench_function("prefix3/build-64^3", |b| {
        b.iter(|| PrefixSum3D::new(black_box(&v)))
    });
    let pfx = PrefixSum3D::new(&v);
    g.bench_function("rect-uniform-3d/m64", |b| {
        b.iter(|| RectUniform3::default().partition(black_box(&pfx), 64))
    });
    g.bench_function("hier-rb-3d/m64", |b| {
        b.iter(|| HierRb3.partition(black_box(&pfx), 64))
    });
    g.bench_function("jag-m-heur-3d/m64", |b| {
        b.iter(|| JagMHeur3::new(&v, Axis3::X).partition(black_box(&pfx), 64))
    });
    g.bench_function("rect-nicol-3d/m64", |b| {
        b.iter(|| RectNicol3::default().partition(black_box(&pfx), 64))
    });
    g.bench_function("hier-relaxed-3d/m64", |b| {
        b.iter(|| HierRelaxed3::default().partition(black_box(&pfx), 64))
    });
    g.bench_function("flatten/64^3", |b| {
        b.iter(|| v.flatten(black_box(Axis3::Z)))
    });
    g.finish();
}

criterion_group!(benches, bench_volume);
criterion_main!(benches);
