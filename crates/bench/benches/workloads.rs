//! Workload-generator throughput: synthetic classes, the PIC simulator's
//! step/deposit phases, and the mesh projector.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rectpart_workloads::{
    diagonal, multi_peak, peak, uniform, MeshConfig, MeshKind, PicConfig, PicSimulation,
};

fn bench_synthetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/synthetic-512");
    g.sample_size(10);
    g.bench_function("uniform", |b| {
        b.iter(|| uniform(512, 512, black_box(1)).delta(1.2).build())
    });
    g.bench_function("diagonal", |b| {
        b.iter(|| diagonal(512, 512, black_box(1)).build())
    });
    g.bench_function("peak", |b| b.iter(|| peak(512, 512, black_box(1)).build()));
    g.bench_function("multi-peak", |b| {
        b.iter(|| multi_peak(512, 512, black_box(1)).build())
    });
    g.finish();
}

fn bench_pic(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/pic");
    g.sample_size(10);
    let cfg = PicConfig {
        rows: 128,
        cols: 128,
        particles: 1 << 16,
        ..PicConfig::default()
    };
    g.bench_function("step/64k-particles", |b| {
        let mut sim = PicSimulation::new(cfg.clone());
        b.iter(|| sim.step())
    });
    g.bench_function("deposit/64k-particles", |b| {
        let sim = PicSimulation::new(cfg.clone());
        b.iter(|| sim.deposit())
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/mesh");
    g.sample_size(10);
    g.bench_function("cavity-512", |b| {
        b.iter(|| {
            MeshConfig {
                kind: black_box(MeshKind::Cavity { cells: 9 }),
                ..MeshConfig::default()
            }
            .generate()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_synthetic, bench_pic, bench_mesh);
criterion_main!(benches);
