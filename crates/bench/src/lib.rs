#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Support library for the workspace benchmarks: the `benchdiff`
//! regression detector over committed `BENCH_*.json` baselines.
//!
//! The benchmark harnesses emit JSON reports mixing two kinds of
//! numbers: **deterministic op counters** (work units, probe counts,
//! cache statistics — identical on every host at every thread count)
//! and **wall-clock timings** (`*_ns` fields, only comparable on one
//! machine). `benchdiff` compares only the former, so a regression
//! verdict is reproducible in CI regardless of runner speed:
//!
//! * only integer leaves ([`Json::UInt`]/[`Json::Int`]) at matching
//!   paths are compared — floats (derived ratios) and strings are
//!   ignored;
//! * keys ending in `_ns` and the environment keys (`host_cores`,
//!   `instrumented`, `benchmark`, `note`) are excluded;
//! * a leaf regresses when the current value exceeds the baseline by
//!   more than the configured tolerance (percent). Decreases never
//!   fail: lower op counts are improvements, and a shrunk baseline is
//!   reviewed when it is re-committed.

use rectpart_json::Json;

/// One integer leaf whose current value exceeds the baseline beyond
/// tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `.`-joined path of object keys and `[i]` array indices.
    pub path: String,
    /// Value in the baseline report.
    pub baseline: i128,
    /// Value in the current report.
    pub current: i128,
    /// Relative increase in percent (always > tolerance for a reported
    /// entry; 100 by convention for a zero baseline).
    pub increase_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} -> {} (+{:.2}%)",
            self.path, self.baseline, self.current, self.increase_pct
        )
    }
}

/// Environment/metadata keys that never participate in the diff.
const EXCLUDED_KEYS: [&str; 4] = ["host_cores", "instrumented", "benchmark", "note"];

fn excluded(key: &str) -> bool {
    key.ends_with("_ns") || EXCLUDED_KEYS.contains(&key)
}

fn as_int(j: &Json) -> Option<i128> {
    match *j {
        Json::UInt(u) => Some(u as i128),
        Json::Int(i) => Some(i as i128),
        _ => None,
    }
}

/// Recursively compares `current` against `baseline`, appending every
/// integer leaf that grew beyond `tolerance_pct` to `out`. Leaves
/// present on only one side are ignored (renamed or new metrics are
/// not regressions; shrinking coverage shows up in review of the
/// report diff itself).
fn walk(
    path: &mut String,
    baseline: &Json,
    current: &Json,
    tolerance_pct: f64,
    out: &mut Vec<Regression>,
) {
    match (baseline, current) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, bv) in b {
                if excluded(key) {
                    continue;
                }
                let Some(cv) = c.iter().find_map(|(k, v)| (k == key).then_some(v)) else {
                    continue;
                };
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(key);
                walk(path, bv, cv, tolerance_pct, out);
                path.truncate(len);
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            for (i, (bv, cv)) in b.iter().zip(c.iter()).enumerate() {
                let len = path.len();
                path.push_str(&format!("[{i}]"));
                walk(path, bv, cv, tolerance_pct, out);
                path.truncate(len);
            }
        }
        _ => {
            let (Some(b), Some(c)) = (as_int(baseline), as_int(current)) else {
                return;
            };
            if c <= b {
                return;
            }
            let increase_pct = if b == 0 {
                100.0
            } else {
                ((c - b) as f64 / b.abs() as f64) * 100.0
            };
            if increase_pct <= tolerance_pct {
                return;
            }
            out.push(Regression {
                path: path.clone(),
                baseline: b,
                current: c,
                increase_pct,
            });
        }
    }
}

/// Diffs two benchmark reports on their deterministic integer leaves.
/// Returns every leaf whose current value exceeds the baseline by more
/// than `tolerance_pct` percent, in document order.
pub fn diff_reports(baseline: &Json, current: &Json, tolerance_pct: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    walk(
        &mut String::new(),
        baseline,
        current,
        tolerance_pct,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, wall_ns: u64) -> Json {
        Json::obj(vec![
            ("benchmark", Json::Str("t".into())),
            ("host_cores", Json::UInt(8)),
            (
                "cases",
                Json::Arr(vec![Json::obj(vec![
                    ("case", Json::Str("a".into())),
                    ("checked_ops", Json::UInt(ops)),
                    ("build_ns", Json::UInt(wall_ns)),
                    ("ratio", Json::Float(2.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn self_diff_is_empty() {
        let r = report(1000, 5);
        assert!(diff_reports(&r, &r, 0.0).is_empty());
    }

    #[test]
    fn op_count_increase_beyond_tolerance_is_reported() {
        let base = report(1000, 5);
        let worse = report(1100, 5);
        let regs = diff_reports(&base, &worse, 5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "cases[0].checked_ops");
        assert_eq!((regs[0].baseline, regs[0].current), (1000, 1100));
        assert!((regs[0].increase_pct - 10.0).abs() < 1e-9);
        // Inside tolerance: clean.
        assert!(diff_reports(&base, &worse, 10.0).is_empty());
        assert!(diff_reports(&base, &report(1050, 5), 5.0).is_empty());
    }

    #[test]
    fn wall_clock_and_metadata_are_ignored() {
        let base = report(1000, 5);
        // Timing exploded, host shrank: not a regression.
        let mut noisy = report(1000, 5_000_000);
        if let Json::Obj(fields) = &mut noisy {
            for (k, v) in fields.iter_mut() {
                if k == "host_cores" {
                    *v = Json::UInt(1);
                }
            }
        }
        assert!(diff_reports(&base, &noisy, 0.0).is_empty());
    }

    #[test]
    fn decreases_and_missing_leaves_are_clean() {
        let base = report(1000, 5);
        assert!(diff_reports(&base, &report(900, 5), 0.0).is_empty());
        let renamed = Json::obj(vec![("other", Json::UInt(9999))]);
        assert!(diff_reports(&base, &renamed, 0.0).is_empty());
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let base = Json::obj(vec![("evictions", Json::UInt(0))]);
        let cur = Json::obj(vec![("evictions", Json::UInt(3))]);
        let regs = diff_reports(&base, &cur, 5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].increase_pct, 100.0);
    }
}
