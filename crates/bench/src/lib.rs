#![forbid(unsafe_code)]
