//! `benchdiff BASELINE.json CURRENT.json [--tolerance PCT]` — the CI
//! perf-regression gate.
//!
//! Compares two benchmark reports on their deterministic integer op
//! counters (see the `rectpart-bench` library docs for the comparison
//! rules) and exits:
//!
//! * `0` — no counter grew beyond tolerance;
//! * `1` — regressions found (each printed as `path: base -> cur (+x%)`);
//! * `2` — usage or I/O error.

use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("benchdiff: {msg}");
    eprintln!("usage: benchdiff BASELINE.json CURRENT.json [--tolerance PCT]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut tolerance = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            let Some(v) = args.get(i + 1) else {
                return fail("--tolerance requires a value");
            };
            match v.parse::<f64>() {
                Ok(t) if t >= 0.0 => tolerance = t,
                _ => return fail(&format!("invalid tolerance {v:?}")),
            }
            i += 2;
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, current_path] = files[..] else {
        return fail("expected exactly two report files");
    };
    let load = |path: &str| -> Result<rectpart_json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        rectpart_json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let baseline = match load(baseline_path) {
        Ok(j) => j,
        Err(e) => return fail(&e),
    };
    let current = match load(current_path) {
        Ok(j) => j,
        Err(e) => return fail(&e),
    };
    let regressions = rectpart_bench::diff_reports(&baseline, &current, tolerance);
    if regressions.is_empty() {
        println!(
            "benchdiff: {current_path} within {tolerance}% of {baseline_path} on all deterministic counters"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchdiff: {} deterministic counter(s) regressed beyond {tolerance}% (baseline {baseline_path}):",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
