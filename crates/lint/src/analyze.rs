//! The v2 analysis pass: workspace call graph + rules L6–L8.
//!
//! Where rules L1–L5 ([`crate::rules`]) are per-line pattern checks,
//! the rules here need cross-function structure (see DESIGN.md §15):
//!
//! * **L6 `panic-reach`** — in the panic-free crates' library code,
//!   flags the panicking constructs the L1 lexer pass cannot see
//!   (slice indexing with a non-literal index, integer `/`/`%` with a
//!   non-literal divisor, the `copy_from_slice`/`split_at` family) and
//!   every *call* whose callee transitively reaches an unwaived
//!   panicking construct, printing the full witness chain down to the
//!   root construct.
//! * **L7 `checked-arith`** — unchecked `+`/`*`/`+=` on values that
//!   flow out of the weight domain (`PrefixSum2D` / `SparsePrefixSum` /
//!   interval-cost oracles) must use `checked_*`/`saturating_*` outside
//!   the approved accumulator modules.
//! * **L8 `lock-discipline`** — no two `StripeCache`/`ShardedMemo`
//!   shard guards may be live simultaneously, and no mutex guard's
//!   lifetime may span a `crates/parallel` fan-out/join boundary.
//!
//! Waivers use the same escape hatch as v1: `// lint:allow(<slug>) --
//! <reason>` on the offending line or above it. A waived construct is
//! treated as *sealed* — its documented invariant says it cannot fire —
//! so it neither reports nor propagates through the call graph.
//! `assert!`-family macros are deliberately **not** panic sources:
//! they are sanctioned contract checks (same stance as L1).

use crate::lexer::{lex, Lexed};
use crate::parse::{parse, ParsedFile};
use crate::rules::{allowed, Diagnostic, FileContext, Rule};
use crate::symbols::{alias_map, panic_free_crates, CallGraph, PanicSource, SymbolTable};
use std::collections::BTreeSet;

/// Modules allowed to do unchecked weight arithmetic (L7): the Γ
/// accumulator implementations, whose checked/carry-guarded builds are
/// audited in place (the PR 5 tile-lane carry-guard hoist carries its
/// own justification in `prefix.rs`).
const L7_APPROVED_MODULES: [&str; 2] = ["crates/core/src/prefix.rs", "crates/core/src/sparse.rs"];

/// Method calls whose result is a weight-domain `u64` (loads, interval
/// costs, bottlenecks). `let`-bindings of these become tracked idents.
const WEIGHT_SOURCES: [&str; 9] = [
    ".load(",
    ".load4(",
    ".cost(",
    ".total(",
    ".sum4(",
    ".bottleneck(",
    ".max_unit_cost(",
    ".lower_bound(",
    ".partition_lower_bound(",
];

/// Slice methods that panic on bad lengths/midpoints (the
/// `copy_from_slice`/`split_at` family of L6).
const COPY_FAMILY: [&str; 5] = [
    ".copy_from_slice(",
    ".clone_from_slice(",
    ".copy_within(",
    ".split_at(",
    ".split_at_mut(",
];

/// Parallel fan-out entry points: a guard held across any of these
/// crosses a `crates/parallel` join boundary (L8).
const FANOUT_CALLS: [&str; 9] = [
    "rectpart_parallel::join(",
    "parallel::join(",
    "map_range(",
    "map_slice(",
    "flat_map_slice(",
    "for_each_indexed_mut(",
    "map_chunks(",
    "map_chunks_mut(",
    "chunked_reduce(",
];

/// Result of the workspace analysis.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// L6–L8 diagnostics, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Functions indexed in the symbol table.
    pub functions: usize,
    /// Call expressions resolved to a workspace function.
    pub resolved_calls: usize,
    /// Call expressions with no unambiguous target (the escape hatch).
    pub unresolved_calls: usize,
}

/// Rust package ident a crate directory is imported as (`core` →
/// `rectpart_core`; the root package is plain `rectpart`).
fn crate_ident(dir_name: &str) -> String {
    if dir_name == "rectpart" {
        "rectpart".to_string()
    } else {
        format!("rectpart_{dir_name}")
    }
}

/// Runs the v2 analysis over a set of files (whole workspace, or a
/// single fixture in the self-tests). Shim crates are skipped entirely.
pub fn analyze_files(files: &[(FileContext, String)]) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let panic_free = panic_free_crates();

    // Pass 1: lex + parse + index symbols.
    let mut table = SymbolTable::default();
    let mut lexed_files: Vec<Option<(Lexed, ParsedFile, Vec<usize>)>> = Vec::new();
    let mut crates_seen: BTreeSet<String> = BTreeSet::new();
    for (ctx, _) in files {
        if !ctx.is_shim && crates_seen.insert(ctx.crate_name.clone()) {
            table.register_crate(&ctx.crate_name, &crate_ident(&ctx.crate_name));
        }
    }
    for (ctx, source) in files {
        if ctx.is_shim {
            lexed_files.push(None);
            continue;
        }
        let lexed = lex(source);
        let parsed = parse(&lexed);
        let ids = table.add_file(&ctx.crate_name, &ctx.rel_path, ctx.is_library, &parsed);
        lexed_files.push(Some((lexed, parsed, ids)));
    }
    report.functions = table.len();

    // Pass 2: per-function panic sources and resolved call edges.
    let mut graph = CallGraph::new(table.len());
    for (file_idx, (ctx, _)) in files.iter().enumerate() {
        let Some((lexed, parsed, ids)) = &lexed_files[file_idx] else {
            continue;
        };
        let aliases = alias_map(parsed);
        for (f_idx, f) in parsed.functions.iter().enumerate() {
            let id = ids[f_idx];
            if f.is_test {
                continue;
            }
            // Panic sources in the body (direct constructs, sealed by a
            // panic or panic-reach waiver).
            for line_no in f.body.0..=f.body.1.min(lexed.lines.len().saturating_sub(1)) {
                let line = &lexed.lines[line_no];
                if line.in_test {
                    continue;
                }
                for src in line_panic_sources(&line.code) {
                    if sealed(lexed, line_no) {
                        continue;
                    }
                    graph.sources[id].push(PanicSource {
                        line: line_no + 1,
                        what: src,
                    });
                }
            }
            // Call edges.
            let mut seen_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
            for call in &f.calls {
                match table.resolve(&ctx.crate_name, f.self_type.as_deref(), &aliases, call) {
                    Some(callee) if callee != id => {
                        report.resolved_calls += 1;
                        if seen_edges.insert((call.line, callee)) {
                            graph.edges[id].push((callee, call.line + 1));
                        }
                    }
                    Some(_) => report.resolved_calls += 1,
                    None => report.unresolved_calls += 1,
                }
            }
        }
    }
    graph.resolved_calls = report.resolved_calls;
    graph.unresolved_calls = report.unresolved_calls;

    // Pass 3: reachability + rule engines.
    let witness = graph.panic_reachable();
    for (file_idx, (ctx, _)) in files.iter().enumerate() {
        let Some((lexed, parsed, ids)) = &lexed_files[file_idx] else {
            continue;
        };
        let strict_l6 = ctx.is_library && panic_free.contains(ctx.crate_name.as_str());
        for (f_idx, f) in parsed.functions.iter().enumerate() {
            let id = ids[f_idx];
            if f.is_test {
                continue;
            }
            if strict_l6 {
                // L6 direct constructs.
                for src in &graph.sources[id] {
                    if src.what.starts_with("call ") || src.what.starts_with('`') {
                        // L1-kind constructs are already policed by L1;
                        // they only feed propagation here.
                        continue;
                    }
                    push_v2(
                        ctx,
                        &mut report.diagnostics,
                        src.line,
                        Rule::PanicReach,
                        format!("{} can panic in panic-free library code", src.what),
                        Vec::new(),
                    );
                }
                // L6 transitive: calls into panic-reaching functions.
                for &(callee, line) in &graph.edges[id] {
                    if !witness.contains_key(&callee) {
                        continue;
                    }
                    if allowed(lexed, line - 1, Rule::PanicReach) {
                        continue;
                    }
                    let chain = graph.chain(&table, &witness, callee);
                    let hops = graph.chain_hops(&table, &witness, callee);
                    push_v2(
                        ctx,
                        &mut report.diagnostics,
                        line,
                        Rule::PanicReach,
                        format!(
                            "call into `{}` can reach a panic: {}",
                            table.symbol(callee).qualified(),
                            chain
                        ),
                        hops,
                    );
                }
                // L7 weight-domain arithmetic.
                if !L7_APPROVED_MODULES.contains(&ctx.rel_path.as_str()) {
                    check_weight_arith(ctx, lexed, f.body, &mut report.diagnostics);
                }
            }
            // L8 lock discipline: all non-shim library code.
            if ctx.is_library {
                check_lock_discipline(ctx, lexed, f.body, &mut report.diagnostics);
            }
        }
    }
    report.diagnostics.sort();
    report.diagnostics.dedup();
    report
}

fn push_v2(
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
    line: usize,
    rule: Rule,
    message: String,
    chain: Vec<(String, String, usize)>,
) {
    out.push(Diagnostic {
        file: ctx.rel_path.clone(),
        line,
        rule,
        message,
        chain,
    });
}

/// `true` when line `idx` carries a `panic` or `panic-reach` waiver —
/// either seals the construct for both reporting and propagation.
fn sealed(lexed: &Lexed, idx: usize) -> bool {
    allowed(lexed, idx, Rule::PanicReach) || allowed(lexed, idx, Rule::Panic)
}

/// Panic-capable constructs on one code-channel line, described.
/// L1-kind constructs come back in backtick-led form (`` `panic!` ``) so
/// the caller can tell them apart from the L6-specific kinds.
fn line_panic_sources(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    // L1-kind (propagation only).
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            out.push(format!("`{pat}..`"));
        }
    }
    for pat in ["panic!", "unreachable!", "unimplemented!", "todo!"] {
        if crate::rules::word_hit(code, pat) {
            out.push(format!("`{pat}`"));
        }
    }
    // Slice indexing with a non-literal index.
    for snippet in index_expressions(code) {
        out.push(format!("slice index `{snippet}`"));
    }
    // Integer division/modulo with a non-literal divisor.
    for (op, tok) in nonliteral_divisions(code) {
        out.push(format!("integer `{op}` by non-literal `{tok}`"));
    }
    // Length-panicking slice methods.
    for pat in COPY_FAMILY {
        if code.contains(pat) {
            let name = pat.trim_start_matches('.').trim_end_matches('(');
            out.push(format!("length-panicking `{name}`"));
        }
    }
    out
}

/// Indexing expressions `recv[expr]` whose index is not a pure integer
/// literal. Attributes (`#[...]`), array types/literals and slice
/// patterns do not match: the `[` must directly follow an identifier
/// character, `)` or `]`.
fn index_expressions(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            i += 1;
            continue;
        }
        let prev = if i == 0 { ' ' } else { bytes[i - 1] as char };
        let is_index = prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']';
        if !is_index {
            i += 1;
            continue;
        }
        // Matching close bracket on this line, if any.
        let mut depth = 1;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content = if depth == 0 {
            &code[i + 1..j - 1]
        } else {
            // Index expression continues on the next line; treat the
            // visible part as the content (conservatively a hit).
            &code[i + 1..]
        };
        if content.chars().any(|c| c.is_alphabetic()) || depth != 0 {
            // Receiver snippet: walk back over the receiver expression.
            let mut s = i;
            while s > 0 {
                let c = bytes[s - 1] as char;
                if c.is_alphanumeric() || c == '_' || c == '.' {
                    s -= 1;
                } else {
                    break;
                }
            }
            let end = if depth == 0 { j } else { bytes.len() };
            let mut snippet: String = code[s..end].to_string();
            if snippet.len() > 48 {
                snippet.truncate(45);
                snippet.push_str("...");
            }
            out.push(snippet);
        }
        i += 1;
    }
    out
}

/// `/` and `%` operators whose divisor token is neither an integer
/// literal nor an ALL_CAPS constant. Lines mentioning `f64`/`f32` are
/// skipped wholesale: float division is total.
fn nonliteral_divisions(code: &str) -> Vec<(char, String)> {
    if code.contains("f64") || code.contains("f32") {
        return Vec::new();
    }
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        let op = b as char;
        if op != '/' && op != '%' {
            continue;
        }
        // `/=` compound assignment: divisor starts after the `=`.
        let mut j = i + 1;
        if j < bytes.len() && bytes[j] == b'=' {
            j += 1;
        }
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if j >= bytes.len() {
            continue;
        }
        let c = bytes[j] as char;
        if c.is_ascii_digit() {
            continue; // literal divisor
        }
        if !(c.is_alphabetic() || c == '_' || c == '(') {
            continue; // not an expression start (e.g. closing bracket)
        }
        // Identifier divisor: ALL_CAPS consts are named, audited values.
        if c.is_alphabetic() || c == '_' {
            let mut k = j;
            while k < bytes.len() {
                let ch = bytes[k] as char;
                if ch.is_alphanumeric() || ch == '_' {
                    k += 1;
                } else {
                    break;
                }
            }
            let tok = &code[j..k];
            let all_caps = tok.chars().any(|c| c.is_uppercase())
                && tok
                    .chars()
                    .all(|c| c.is_uppercase() || c.is_numeric() || c == '_');
            if all_caps {
                continue;
            }
            out.push((op, tok.to_string()));
        } else {
            let mut tok = code[j..].to_string();
            if tok.len() > 24 {
                tok.truncate(21);
                tok.push_str("...");
            }
            out.push((op, tok));
        }
    }
    out
}

/// L7 — unchecked `+`/`*`/`+=`/`*=` on weight-domain values inside one
/// function body.
fn check_weight_arith(
    ctx: &FileContext,
    lexed: &Lexed,
    body: (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    // First sweep: idents bound from weight sources.
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    let hi = body.1.min(lexed.lines.len().saturating_sub(1));
    for line in &lexed.lines[body.0..=hi] {
        let code = &line.code;
        if !WEIGHT_SOURCES.iter().any(|s| code.contains(s)) {
            continue;
        }
        if let Some(pos) = code.find("let ") {
            let rest = &code[pos + 4..];
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty()
                && code[pos..].contains('=')
                && WEIGHT_SOURCES
                    .iter()
                    .any(|s| code[pos..].find(s) > code[pos..].find('='))
            {
                tracked.insert(ident);
            }
        }
    }
    // Second sweep: arithmetic adjacency.
    for (line_no, line) in lexed.lines.iter().enumerate().take(hi + 1).skip(body.0) {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if allowed(lexed, line_no, Rule::CheckedArith) {
            continue;
        }
        // (a) a weight-source call directly in a +/* expression.
        for src in WEIGHT_SOURCES {
            for pos in find_all(code, src) {
                if arith_adjacent(code, pos, pos + src.len()) {
                    push_v2(
                        ctx,
                        out,
                        line_no + 1,
                        Rule::CheckedArith,
                        format!(
                            "unchecked arithmetic on weight-domain value `{}..`; \
                             use checked_*/saturating_*",
                            src.trim_start_matches('.')
                        ),
                        Vec::new(),
                    );
                    break;
                }
            }
        }
        // (b) tracked idents adjacent to +/*.
        for ident in &tracked {
            for pos in find_word(code, ident) {
                if arith_adjacent(code, pos, pos + ident.len()) {
                    push_v2(
                        ctx,
                        out,
                        line_no + 1,
                        Rule::CheckedArith,
                        format!(
                            "unchecked arithmetic on weight-domain value `{ident}`; \
                             use checked_*/saturating_*"
                        ),
                        Vec::new(),
                    );
                    break;
                }
            }
        }
    }
}

/// `true` when the span `[start, end)` of `code` has a `+`/`*` operator
/// directly before or after it (skipping whitespace), including the
/// compound forms `+=`/`*=`. A `*` only counts with whitespace on both
/// sides (dereferences bind tight: `*x`).
fn arith_adjacent(code: &str, start: usize, end: usize) -> bool {
    let bytes = code.as_bytes();
    // Look left.
    let mut i = start;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i > 0 {
        let c = bytes[i - 1] as char;
        if c == '+' {
            return true;
        }
        if c == '=' && i > 1 && matches!(bytes[i - 2] as char, '+' | '*') {
            return true;
        }
        if c == '*' && i >= 1 && i < start {
            // whitespace followed the `*` → binary multiply
            return true;
        }
    }
    // For a call source, `end` points just past the `(`; jump to the
    // matching close paren before looking right.
    let mut e = end;
    if end > 0 && bytes.get(end - 1) == Some(&b'(') {
        let mut depth = 1;
        while e < bytes.len() && depth > 0 {
            match bytes[e] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            e += 1;
        }
        if depth != 0 {
            return false; // call spans lines; cannot judge
        }
    }
    let mut j = e;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    if j < bytes.len() {
        let c = bytes[j] as char;
        if c == '+' || c == '*' {
            // `+=`/`*=` also start with the operator char; `*` followed
            // by an ident char with no space is a deref further right —
            // but after a complete operand a bare `*` is multiply.
            // Exclude `**`? Not valid Rust after an operand.
            if c == '*' && j == e {
                // no whitespace between operand and `*`: `)*` is still
                // multiplication in Rust (deref cannot follow an
                // operand), accept it.
                return true;
            }
            return true;
        }
    }
    false
}

/// Byte offsets of every occurrence of `pat` in `hay`.
fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = hay[from..].find(pat) {
        out.push(from + off);
        from += off + pat.len();
    }
    out
}

/// Byte offsets of `ident` occurrences at word boundaries.
fn find_word(hay: &str, ident: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    find_all(hay, ident)
        .into_iter()
        .filter(|&at| {
            let pre_ok = at == 0 || {
                let c = bytes[at - 1] as char;
                !c.is_alphanumeric() && c != '_' && c != '.'
            };
            let end = at + ident.len();
            let post_ok = end >= bytes.len() || {
                let c = bytes[end] as char;
                !c.is_alphanumeric() && c != '_'
            };
            pre_ok && post_ok
        })
        .collect()
}

/// One live lock guard in the L8 scan.
struct LiveGuard {
    name: String,
    /// Brace depth at the binding site; the guard dies when the scan
    /// drops below it.
    depth: i32,
    /// `true` for `StripeCache`/`ShardedMemo` shard guards.
    is_shard: bool,
    line: usize,
}

/// L8 — lexical lock-scope tracking across one function body.
fn check_lock_discipline(
    ctx: &FileContext,
    lexed: &Lexed,
    body: (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    let hi = body.1.min(lexed.lines.len().saturating_sub(1));
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    for line_no in body.0..=hi {
        let line = &lexed.lines[line_no];
        let code = &line.code;
        if line.in_test {
            continue;
        }
        // Guard deaths by explicit drop.
        if code.contains("drop(") {
            live.retain(|g| !code.contains(&format!("drop({})", g.name)));
        }
        let acquires = lock_acquire(code);
        if let Some(is_shard) = acquires {
            let shard_live = live.iter().find(|g| g.is_shard);
            if is_shard && shard_live.is_some() && !allowed(lexed, line_no, Rule::LockDiscipline) {
                let first = shard_live.map(|g| g.line).unwrap_or(0);
                push_v2(
                    ctx,
                    out,
                    line_no + 1,
                    Rule::LockDiscipline,
                    format!(
                        "second shard guard acquired while the guard from line {first} \
                         is still live; shard locks must not nest"
                    ),
                    Vec::new(),
                );
            }
            // Track only `let`-bound guards; temporaries die within the
            // statement.
            if let Some(name) = let_binding_name(code) {
                live.push(LiveGuard {
                    name,
                    depth,
                    is_shard,
                    line: line_no + 1,
                });
            }
        }
        // Join boundaries under a live guard.
        if !live.is_empty() {
            let crosses = FANOUT_CALLS.iter().any(|p| code.contains(p))
                || (ctx.crate_name == "parallel"
                    && (code.contains(".spawn(") || code.contains("thread::scope(")));
            if crosses && !allowed(lexed, line_no, Rule::LockDiscipline) {
                let names: Vec<&str> = live.iter().map(|g| g.name.as_str()).collect();
                push_v2(
                    ctx,
                    out,
                    line_no + 1,
                    Rule::LockDiscipline,
                    format!(
                        "lock guard(s) `{}` held across a crates/parallel join boundary",
                        names.join("`, `")
                    ),
                    Vec::new(),
                );
            }
        }
        // Brace depth and scope-based guard death.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    live.retain(|g| g.depth < depth + 1 && g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Classifies a lock acquisition on this line: `Some(true)` for a
/// shard-map guard (`StripeCache`/`ShardedMemo` internals), `Some(false)`
/// for any other mutex guard, `None` for no acquisition.
fn lock_acquire(code: &str) -> Option<bool> {
    let has_lock = code.contains(".lock()") || code.contains("::lock(");
    if !has_lock {
        return None;
    }
    let shardish = code.contains("shard") || code.contains("Shard") || code.contains("Self::lock(");
    Some(shardish)
}

/// The identifier bound by a `let [mut] name = ...` on this line.
fn let_binding_name(code: &str) -> Option<String> {
    let pos = code.find("let ")?;
    let rest = &code[pos + 4..];
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty() && rest[ident.len()..].trim_start().starts_with(['=', ':'])).then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(krate: &str, path: &str) -> FileContext {
        FileContext {
            crate_name: krate.into(),
            rel_path: path.into(),
            is_library: true,
            declared_features: BTreeSet::new(),
            is_shim: false,
        }
    }

    fn run_one(krate: &str, path: &str, src: &str) -> AnalysisReport {
        analyze_files(&[(ctx(krate, path), src.to_string())])
    }

    #[test]
    fn direct_index_flagged_and_literal_skipped() {
        let r = run_one(
            "core",
            "crates/core/src/x.rs",
            "pub fn f(xs: &[u64], i: usize) -> u64 {\n    let pair = (xs[0], xs[i]);\n    pair.1\n}\n",
        );
        // Only `xs[i]` (non-literal) is flagged.
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, Rule::PanicReach);
        assert!(r.diagnostics[0].message.contains("xs[i]"));
    }

    #[test]
    fn transitive_chain_reported_at_call_site() {
        let src = "fn leaf(xs: &[u64], i: usize) -> u64 {\n    xs[i]\n}\npub fn mid(xs: &[u64]) -> u64 {\n    leaf(xs, 1)\n}\npub fn top(xs: &[u64]) -> u64 {\n    mid(xs)\n}\n";
        let r = run_one("core", "crates/core/src/y.rs", src);
        let transitive: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.message.contains("can reach a panic"))
            .collect();
        assert_eq!(transitive.len(), 2, "{:?}", r.diagnostics);
        let top = transitive
            .iter()
            .find(|d| d.line == 8)
            .expect("top call site");
        assert!(
            top.message.contains("core::mid -> core::leaf"),
            "{}",
            top.message
        );
        assert!(top.message.contains("root: slice index `xs[i]`"));
        assert_eq!(top.chain.len(), 2);
    }

    #[test]
    fn waiver_seals_source_and_stops_propagation() {
        let src = "fn leaf(xs: &[u64], i: usize) -> u64 {\n    // lint:allow(panic-reach) -- test: i is caller-bounded\n    xs[i]\n}\npub fn mid(xs: &[u64]) -> u64 {\n    leaf(xs, 1)\n}\n";
        let r = run_one("core", "crates/core/src/z.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn division_by_runtime_value_flagged() {
        let src = "pub fn f(total: u64, m: u64, n: u64) -> u64 {\n    let a = total / 2;\n    let b = total / SHARDS_N;\n    a + b + total % m + n\n}\nconst SHARDS_N: u64 = 4;\n";
        let r = run_one("core", "crates/core/src/d.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains('%'));
        assert!(r.diagnostics[0].message.contains('m'));
    }

    #[test]
    fn copy_family_flagged() {
        let src = "pub fn f(a: &mut [u64], b: &[u64], k: usize) {\n    a.copy_from_slice(b);\n    let _ = b.split_at(k);\n}\n";
        let r = run_one("core", "crates/core/src/c.rs", src);
        assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn non_panic_free_crate_is_quiet() {
        let r = run_one(
            "cli",
            "crates/cli/src/main.rs",
            "pub fn f(xs: &[u64], i: usize) -> u64 {\n    xs[i]\n}\n",
        );
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn l7_tracked_weight_arithmetic() {
        let src = "pub fn f(g: &PrefixSum2D) -> u64 {\n    let w = g.load(0, 1, 0, 1);\n    let x = w + 1;\n    x\n}\n";
        let r = run_one("core", "crates/core/src/w.rs", src);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == Rule::CheckedArith && d.message.contains("`w`")),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn l7_direct_source_arithmetic_and_checked_is_quiet() {
        let src = "pub fn f(g: &PrefixSum2D) -> Option<u64> {\n    let bad = g.load(0, 1, 0, 1) + g.load(1, 2, 0, 1);\n    g.load(0, 1, 0, 1).checked_add(bad)\n}\n";
        let r = run_one("core", "crates/core/src/v.rs", src);
        let l7: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::CheckedArith)
            .collect();
        assert_eq!(l7.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(l7[0].line, 2);
    }

    #[test]
    fn l8_two_shard_guards() {
        let src = "pub fn f(&self, a: &K, b: &K) {\n    let ga = Self::lock(self.shard(a));\n    let gb = Self::lock(self.shard(b));\n    drop((ga, gb));\n}\n";
        let r = run_one("core", "crates/core/src/l.rs", src);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == Rule::LockDiscipline && d.line == 3),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn l8_guard_across_join() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    let _ = rectpart_parallel::map_range(4, |i| i);\n    drop(g);\n}\n";
        let r = run_one("obs", "crates/obs/src/l.rs", src);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == Rule::LockDiscipline && d.line == 3),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn l8_scoped_guard_dies_before_join() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>) {\n    {\n        let g = m.lock().unwrap_or_else(|e| e.into_inner());\n        drop(g);\n    }\n    let _ = rectpart_parallel::map_range(4, |i| i);\n}\n";
        let r = run_one("obs", "crates/obs/src/m.rs", src);
        assert!(
            !r.diagnostics.iter().any(|d| d.rule == Rule::LockDiscipline),
            "{:?}",
            r.diagnostics
        );
    }
}
