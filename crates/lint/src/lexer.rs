//! A minimal Rust lexer that classifies every character of a source file
//! as code, string-literal content, or comment.
//!
//! The rule engine ([`crate::rules`]) matches textual patterns, so the
//! lexer's job is to make that sound: `panic!` inside a doc comment or an
//! error message must not trigger L1, while `lint:allow(...)` markers
//! live *only* in comments. The lexer therefore splits each physical line
//! into three channels:
//!
//! * [`Line::code`] — source with comments removed and string-literal
//!   bodies blanked to spaces (quote characters are kept so token
//!   boundaries survive);
//! * [`Line::text`] — source with comments removed but string bodies
//!   intact (needed by L4, which must read feature *names* out of
//!   `cfg(feature = "...")` attributes);
//! * [`Line::comment`] — the concatenated comment content of the line
//!   (where `lint:allow` markers and `# Safety` contracts are found).
//!
//! It handles the lexical constructs that matter for soundness: nested
//! block comments, string escapes, raw strings (`r#"..."#`, any hash
//! count), byte strings, char literals, and the char-literal/lifetime
//! ambiguity (`'a'` vs `'static`).
//!
//! On top of the channel split, the lexer tracks `#[cfg(test)]` /
//! `#[cfg(all(test, ...))]` modules and `#[test]` functions by brace
//! counting and marks their lines [`Line::in_test`], so rules that exempt
//! test code (L1, L2, L3) can skip them without parsing items.

/// One physical source line, split into channels (see module docs).
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Comment-free source with string bodies blanked.
    pub code: String,
    /// Comment-free source with string bodies intact.
    pub text: String,
    /// Comment content of the line (no `//` / `/*` delimiters).
    pub comment: String,
    /// `true` if the line lies inside a `#[cfg(test)]` item or `#[test]`
    /// function body.
    pub in_test: bool,
}

/// Lexed view of a whole file: one [`Line`] per physical line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Lines in file order; index 0 is line 1.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"..."`; payload: `true` while the next char is escaped.
    Str,
    /// Inside a raw string; payload: number of `#` marks to close.
    RawStr(u32),
    /// Inside `'...'`; payload: `true` while the next char is escaped.
    Char,
}

/// Matches the tail of the whitespace-normalized code stream against the
/// test-region openers.
fn is_test_marker(window: &str) -> bool {
    window.ends_with("#[cfg(test)]")
        || window.ends_with("#[cfg(all(test")
        || window.ends_with("#[test]")
}

/// Lexes `source` into per-line channels and test-region flags.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = State::Code;
    let mut escaped = false;

    // Test-region tracking over the code channel: `depth` counts braces,
    // `armed` is set when a test marker was just seen (waiting for the
    // region's opening `{`), `test_floor` is the depth at which the
    // active test region closes.
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_floor: Option<i64> = None;
    // Rolling, whitespace-free tail of recent code chars for marker
    // matching (attributes may be spread over spaces, never over tokens).
    let mut window = String::new();

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let in_test = test_floor.is_some();
        let line = lines
            .last_mut()
            .expect("lines starts non-empty and only grows");
        line.in_test |= in_test;
        match state {
            State::Code => {
                // Comment openers.
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte string openers: r"", r#""#, br"", b"".
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some(hashes) = raw_string_open(&chars, i) {
                        // Push the prefix (r/b/br + hashes + quote) to
                        // both code channels, then enter the raw string.
                        let mut j = i;
                        while chars[j] != '"' {
                            line.code.push(chars[j]);
                            line.text.push(chars[j]);
                            j += 1;
                        }
                        line.code.push('"');
                        line.text.push('"');
                        push_window(&mut window, 'r');
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        line.code.push('b');
                        line.text.push('b');
                        line.code.push('"');
                        line.text.push('"');
                        i += 2;
                        state = State::Str;
                        escaped = false;
                        continue;
                    }
                }
                if c == '"' {
                    line.code.push('"');
                    line.text.push('"');
                    state = State::Str;
                    escaped = false;
                    i += 1;
                    continue;
                }
                // `b'{'` byte literals matter here: an unlexed `{` or
                // `}` would corrupt the brace-depth tracking below.
                let byte_char_prefix =
                    i > 0 && chars[i - 1] == 'b' && !prev_is_ident(&chars, i - 1);
                if c == '\'' && (!prev_is_ident(&chars, i) || byte_char_prefix) {
                    // Char literal vs lifetime: a literal is either an
                    // escape (`'\n'`) or a single char followed by `'`.
                    let next = chars.get(i + 1);
                    let after = chars.get(i + 2);
                    if next == Some(&'\\') || (next.is_some() && after == Some(&'\'')) {
                        line.code.push('\'');
                        line.text.push('\'');
                        state = State::Char;
                        escaped = false;
                        i += 1;
                        continue;
                    }
                    // Lifetime / loop label: plain code.
                }
                line.code.push(c);
                line.text.push(c);
                push_window(&mut window, c);
                if is_test_marker(&window) && test_floor.is_none() {
                    armed = true;
                }
                match c {
                    '{' => {
                        depth += 1;
                        if armed {
                            armed = false;
                            test_floor = Some(depth - 1);
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(floor) = test_floor {
                            if depth <= floor {
                                test_floor = None;
                            }
                        }
                    }
                    // `#[cfg(test)] mod tests;` declares the module in
                    // another file; nothing to bracket here.
                    ';' if armed && test_floor.is_none() => {
                        armed = false;
                    }
                    _ => {}
                }
                i += 1;
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(d) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if d == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(d - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(d + 1);
                    line.comment.push_str("/*");
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if escaped {
                    escaped = false;
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                } else if c == '\\' {
                    escaped = true;
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                } else if c == '"' {
                    line.code.push('"');
                    line.text.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    line.code.push('"');
                    line.text.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                }
            }
            State::Char => {
                if escaped {
                    escaped = false;
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                } else if c == '\\' {
                    escaped = true;
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                } else if c == '\'' {
                    line.code.push('\'');
                    line.text.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    line.text.push(c);
                    i += 1;
                }
            }
        }
    }
    Lexed { lines }
}

/// `true` if the char before `i` can belong to an identifier (so the
/// `r` / `b` / `'` at `i` is not a literal prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a raw-string opener (`r`, `br` + hashes + `"`) starts at `i`,
/// returns its hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return None;
        }
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// `true` if the `"` at `i` is followed by enough `#` to close a raw
/// string with `hashes` marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Appends a non-space code char to the rolling marker window, bounding
/// its length.
fn push_window(window: &mut String, c: char) {
    if c.is_whitespace() {
        return;
    }
    window.push(c);
    if window.len() > 32 {
        let cut = window.len() - 32;
        // Window chars are pushed one at a time; find a char boundary.
        let mut at = cut;
        while !window.is_char_boundary(at) {
            at += 1;
        }
        window.drain(..at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_code_channel() {
        let l = lex("let x = \"panic!\"; // panic! here\nlet y = 1; /* unwrap() */ let z = 2;\n");
        assert!(!l.lines[0].code.contains("panic!"));
        assert!(l.lines[0].comment.contains("panic! here"));
        assert!(l.lines[0].text.contains("panic!"), "text keeps strings");
        assert!(!l.lines[1].code.contains("unwrap"));
        assert!(l.lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let l =
            lex("let s = r#\"a \"quoted\" panic!\"#; let c = 'x'; let lt: &'static str = \"\";");
        assert!(!l.lines[0].code.contains("panic!"));
        assert!(l.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let a = 1;");
        assert!(l.lines[0].code.contains("let a = 1"));
        assert!(!l.lines[0].code.contains("still"));
    }

    #[test]
    fn cfg_test_region_marks_lines() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let l = lex(src);
        assert!(!l.lines[0].in_test);
        assert!(l.lines[3].in_test);
        assert!(!l.lines[5].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_body() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom.unwrap();\n}\nfn b() {}\n";
        let l = lex(src);
        assert!(l.lines[3].in_test);
        assert!(!l.lines[5].in_test);
    }

    #[test]
    fn cfg_test_outline_module_does_not_arm() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { x() }\n";
        let l = lex(src);
        assert!(!l.lines[2].in_test);
    }
}
