#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # rectpart-lint — workspace invariant linter
//!
//! An offline, dependency-free static-analysis pass over the rectpart
//! workspace. It proves, at every call site, the guarantees the
//! compiler cannot check and the differential tests only sample:
//!
//! * **L1 panic-freedom** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` in library code of the algorithmic crates
//!   (`core`, `onedim`, `parallel`, `obs`, `json`);
//! * **L2 thread confinement** — `std::thread` / `.spawn(` only inside
//!   `crates/parallel`, so `--no-default-features` really is serial;
//! * **L3 determinism** — no wall clocks outside the timing crates, no
//!   unseeded RNG, no iteration over hash-ordered maps;
//! * **L4 feature hygiene** — every `cfg(feature = "...")` name is
//!   declared in that crate's `Cargo.toml`;
//! * **L5 unsafe audit** — `unsafe` only in the audited
//!   `simexec/src/stencil.rs` block (which must keep its `# Safety`
//!   contract); every other crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! Violations are waived per line with a justified escape hatch:
//! `// lint:allow(<rule>) -- <reason>` (see [`rules`]).
//!
//! Run it as a binary (`cargo run -p rectpart-lint`, exits nonzero on
//! violations) or rely on the `#[test]` in `tests/self_test.rs`, which
//! `cargo test` executes on every run. See DESIGN.md §11 for the full
//! catalog and rationale.

pub mod analyze;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use rules::{lint_file, Diagnostic, FileContext, Rule};
pub use workspace::{default_root, lint_workspace, lint_workspace_v2, report, report_v2};
