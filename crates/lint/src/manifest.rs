//! A deliberately small `Cargo.toml` reader — just enough TOML to
//! answer the two questions the linter asks: *which features does this
//! crate declare* (L4) and *what is the package's repository URL* (the
//! workspace hygiene check). No external TOML dependency, consistent
//! with the workspace's shims-only policy.

use std::collections::BTreeSet;

/// Feature names a crate declares: explicit `[features]` keys plus the
/// implicit feature every `optional = true` dependency creates (unless
/// it is only referenced through `dep:` syntax — over-approximating by
/// including it is fine for a linter that checks *usage* names).
pub fn declared_features(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut section = String::new();
    for raw in manifest.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.starts_with('[') {
            section = line.clone();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"').to_string();
        if key.is_empty() {
            continue;
        }
        if section == "[features]" {
            out.insert(key);
        } else if section.ends_with("dependencies]")
            && line.contains("optional")
            && line.contains("true")
        {
            // `foo = { version = "...", optional = true }`
            out.insert(key);
        }
    }
    out
}

/// The `repository = "..."` value of the first `[package]` /
/// `[workspace.package]` section, if present.
pub fn repository_url(manifest: &str) -> Option<String> {
    let mut in_pkg = false;
    for raw in manifest.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.starts_with('[') {
            in_pkg = line == "[package]" || line == "[workspace.package]";
            continue;
        }
        if !in_pkg {
            continue;
        }
        if let Some(rest) = line.strip_prefix("repository") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Drops a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_feature_keys_and_optional_deps() {
        let m = r#"
[package]
name = "x"
repository = "https://example.com/x"

[features]
default = ["parallel"] # comment
parallel = []
obs = ["dep:obs"]

[dependencies]
obs = { path = "../obs", optional = true }
serde = { version = "1", optional = false }
"#;
        let f = declared_features(m);
        assert!(f.contains("default") && f.contains("parallel") && f.contains("obs"));
        assert!(!f.contains("serde"));
        assert_eq!(repository_url(m).as_deref(), Some("https://example.com/x"));
    }

    #[test]
    fn no_features_section() {
        assert!(declared_features("[package]\nname = \"y\"\n").is_empty());
    }
}
