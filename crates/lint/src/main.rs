#![forbid(unsafe_code)]

//! `rectpart-lint` binary: lints the workspace (rules L1–L8) and exits
//! nonzero on any violation.
//!
//! ```text
//! rectpart-lint [--root <path>] [--format text|json]
//!               [--baseline <path>] [--no-baseline] [--update-baseline]
//!               [--v1]
//! ```
//!
//! The default run is the full v2 pass with the committed baseline
//! (`crates/lint/lint-baseline.txt`). `--update-baseline` rewrites that
//! file from the current findings and exits 0; `--v1` restores the old
//! per-file L1–L5 pass.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = rectpart_lint::default_root();
    let mut format = String::from("text");
    let mut baseline: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut update_baseline = false;
    let mut v1 = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                other => {
                    eprintln!("--format requires `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            "--v1" => v1 = true,
            "--help" | "-h" => {
                println!(
                    "rectpart-lint: workspace invariant linter (rules L1-L8)\n\
                     usage: cargo run -p rectpart-lint [-- OPTIONS]\n\
                     \n\
                     options:\n\
                       --root <path>       workspace root (default: build workspace)\n\
                       --format text|json  diagnostic output format (default: text)\n\
                       --baseline <path>   suppression file (default: crates/lint/lint-baseline.txt)\n\
                       --no-baseline       ignore the baseline; report every finding\n\
                       --update-baseline   rewrite the baseline from current findings, exit 0\n\
                       --v1                per-file rules L1-L5 only (no call-graph pass)\n\
                     \n\
                     see DESIGN.md sections 11 and 15 for the rule catalog"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if v1 {
        return match rectpart_lint::lint_workspace(&root) {
            Ok(diags) => {
                if rectpart_lint::report(&diags) == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("rectpart-lint: I/O error walking {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    let baseline_path =
        baseline.unwrap_or_else(|| rectpart_lint::workspace::default_baseline(&root));
    let effective = (!no_baseline && !update_baseline).then_some(baseline_path.as_path());
    match rectpart_lint::workspace::lint_workspace_v2(&root, effective) {
        Ok(report) => {
            if update_baseline {
                let body = rectpart_lint::workspace::render_baseline(&report.diagnostics);
                return match std::fs::write(&baseline_path, body) {
                    Ok(()) => {
                        println!(
                            "rectpart-lint: wrote {} entr(ies) to {}",
                            report.diagnostics.len(),
                            baseline_path.display()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!(
                            "rectpart-lint: cannot write {}: {e}",
                            baseline_path.display()
                        );
                        ExitCode::from(2)
                    }
                };
            }
            if format == "json" {
                print!("{}", rectpart_lint::workspace::render_json(&report));
                if report.diagnostics.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            } else if rectpart_lint::workspace::report_v2(&report) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rectpart-lint: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
