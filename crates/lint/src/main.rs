#![forbid(unsafe_code)]

//! `rectpart-lint` binary: lints the workspace and exits nonzero on any
//! violation. `--root <path>` overrides the workspace root (defaults to
//! the workspace this binary was built from).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = rectpart_lint::default_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "rectpart-lint: workspace invariant linter (rules L1-L5)\n\
                     usage: cargo run -p rectpart-lint [-- --root <path>]\n\
                     see DESIGN.md section 11 for the rule catalog"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match rectpart_lint::lint_workspace(&root) {
        Ok(diags) => {
            if rectpart_lint::report(&diags) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rectpart-lint: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
