//! Workspace symbol table and call graph.
//!
//! Built from the per-file [`crate::parse::ParsedFile`] output of every
//! crate, this module answers the question the v2 rules need: *which
//! workspace function does this call expression land in?* Resolution is
//! deliberately conservative (DESIGN.md §15):
//!
//! * **Path calls** resolve through their leading segment: `crate`,
//!   `self`, `super` and bare module names stay in the calling crate;
//!   a workspace crate name (`rectpart_core`, ...) or a `use` alias
//!   crosses crates. The last one or two segments are tried as
//!   `fn` / `Type::fn`.
//! * **`self.m(...)`** resolves inside the enclosing impl type.
//! * **Other `.m(...)` method calls** resolve only when `m` names
//!   exactly one method across the whole workspace *and* `m` is not a
//!   common standard-library method name ([`STD_METHODS`]). Anything
//!   ambiguous produces **no edge** — that is the explicit escape
//!   hatch: the analysis under-approximates rather than guesses.
//!
//! On top of the edges, [`CallGraph::panic_reachable`] computes which
//! functions can transitively reach an (unwaived) panicking construct,
//! and remembers one deterministic witness hop per function so L6 can
//! print the full chain from any call site down to the root construct.

use crate::parse::{Call, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Method names that are overwhelmingly likely to be standard-library
/// calls; unique-name method resolution refuses to bind them to
/// workspace methods. This is the deny half of the ambiguity escape
/// hatch — extend it rather than letting a std call alias a workspace
/// method.
pub const STD_METHODS: [&str; 60] = [
    "new",
    "default",
    "clone",
    "fmt",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "and_then",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "cmp",
    "eq",
    "hash",
    "drop",
    "from",
    "into",
    "to_string",
    "as_str",
    "parse",
    "join",
    "lock",
    "unwrap_or",
    "extend",
    "contains",
    "sort",
    "write",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "take",
    "skip",
    "count",
    "find",
    "position",
    "any",
    "all",
    "flat_map",
    "filter_map",
    "last",
    "windows",
    "chunks",
    "swap",
    "resize",
    "split",
    "trim",
];

/// Identifier of one function in the [`SymbolTable`].
pub type FnId = usize;

/// One function known to the workspace.
#[derive(Debug, Clone)]
pub struct FnSymbol {
    /// Crate directory name (`core`, `onedim`, ...).
    pub krate: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type, if a method.
    pub self_type: Option<String>,
    /// 1-based declaration line.
    pub line: usize,
    /// `true` when declared in test code (`#[cfg(test)]` / `#[test]`).
    pub is_test: bool,
    /// `true` when the defining file is library code (`src/`).
    pub is_library: bool,
}

/// Display name used in diagnostics: `crate::Type::name` / `crate::name`.
impl FnSymbol {
    /// Qualified name for chain rendering.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{}::{}", self.krate, t, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// An unwaived panicking construct inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 1-based line of the construct.
    pub line: usize,
    /// Human-readable description, e.g. ``slice index `xs[i]` ``.
    pub what: String,
}

/// The workspace symbol table: every parsed function plus the indices
/// resolution needs.
#[derive(Debug, Default)]
pub struct SymbolTable {
    fns: Vec<FnSymbol>,
    /// `(crate, fn_name)` → ids of free functions.
    free_by_crate: BTreeMap<(String, String), Vec<FnId>>,
    /// `(crate, type, fn_name)` → ids of methods.
    method_by_type: BTreeMap<(String, String, String), Vec<FnId>>,
    /// method name → ids across the workspace (for unique-name fallback).
    method_by_name: BTreeMap<String, Vec<FnId>>,
    /// crate dir name ↔ rust package ident (`core` ↔ `rectpart_core`).
    crate_idents: BTreeMap<String, String>,
}

impl SymbolTable {
    /// Registers the crates that exist, mapping their directory names to
    /// the `use`-path identifiers (`core` → `rectpart_core`, shims keep
    /// their own name).
    pub fn register_crate(&mut self, dir_name: &str, package_ident: &str) {
        self.crate_idents
            .insert(package_ident.to_string(), dir_name.to_string());
    }

    /// Adds every function of a parsed file. Returns the ids in order.
    pub fn add_file(
        &mut self,
        krate: &str,
        rel_path: &str,
        is_library: bool,
        parsed: &ParsedFile,
    ) -> Vec<FnId> {
        let mut ids = Vec::with_capacity(parsed.functions.len());
        for f in &parsed.functions {
            let id = self.fns.len();
            self.fns.push(FnSymbol {
                krate: krate.to_string(),
                file: rel_path.to_string(),
                name: f.name.clone(),
                self_type: f.self_type.clone(),
                line: f.decl_line + 1,
                is_test: f.is_test,
                is_library,
            });
            match &f.self_type {
                Some(t) => {
                    self.method_by_type
                        .entry((krate.to_string(), t.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    self.method_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    self.free_by_crate
                        .entry((krate.to_string(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
            ids.push(id);
        }
        ids
    }

    /// Number of functions indexed.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// `true` when no function is indexed.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The symbol for `id`.
    pub fn symbol(&self, id: FnId) -> &FnSymbol {
        &self.fns[id]
    }

    /// Resolves one call made from `caller_crate` (with the caller's
    /// `use` aliases and, for `self.` calls, the enclosing impl type).
    /// Returns `None` when the call cannot be attributed to exactly one
    /// workspace function.
    pub fn resolve(
        &self,
        caller_crate: &str,
        enclosing_type: Option<&str>,
        aliases: &BTreeMap<String, Vec<String>>,
        call: &Call,
    ) -> Option<FnId> {
        if call.is_method {
            let name = call.path.last()?;
            if call.self_receiver {
                if let Some(t) = enclosing_type {
                    return self.unique(self.method_by_type.get(&(
                        caller_crate.to_string(),
                        t.to_string(),
                        name.clone(),
                    )));
                }
            }
            // Unique-name fallback: std names excluded, and the unique
            // candidate must live in the calling crate or in a crate the
            // calling file actually imports (an alias path leading with
            // its package ident) — a per-file dependency approximation
            // that stops accidental cross-crate bindings.
            if STD_METHODS.contains(&name.as_str()) {
                return None;
            }
            let id = self.unique(self.method_by_name.get(name))?;
            let callee_crate = &self.fns[id].krate;
            if callee_crate == caller_crate {
                return Some(id);
            }
            let callee_ident = self
                .crate_idents
                .iter()
                .find(|(_, dir)| *dir == callee_crate)
                .map(|(ident, _)| ident.as_str())?;
            return aliases
                .values()
                .any(|p| p.first().is_some_and(|h| h == callee_ident))
                .then_some(id);
        }

        // Expand a leading alias (`use rectpart_core::cache::StripeCache;`
        // makes `StripeCache::new` resolvable).
        let mut path: Vec<String> = call.path.clone();
        if let Some(expansion) = aliases.get(&path[0]) {
            let mut full = expansion.clone();
            full.extend(path[1..].iter().cloned());
            path = full;
        }

        // Determine the target crate from the leading segment.
        let (krate, rest): (String, &[String]) = match path[0].as_str() {
            "crate" | "self" | "super" => (caller_crate.to_string(), &path[1..]),
            "std" | "core" | "alloc" => return None,
            head => match self.crate_idents.get(head) {
                Some(dir) => (dir.clone(), &path[1..]),
                // Bare or module-qualified call inside the same crate.
                None => (caller_crate.to_string(), &path[..]),
            },
        };
        if rest.is_empty() {
            return None;
        }
        let name = rest[rest.len() - 1].clone();
        // `...::Type::name` — try the method index first when the
        // second-to-last segment looks like a type.
        if rest.len() >= 2 {
            let qualifier = &rest[rest.len() - 2];
            if qualifier.chars().next().is_some_and(|c| c.is_uppercase()) {
                if let Some(id) = self.unique(self.method_by_type.get(&(
                    krate.clone(),
                    qualifier.clone(),
                    name.clone(),
                ))) {
                    return Some(id);
                }
                // `Self::helper(...)` — associated call on the enclosing type.
            } else if qualifier == "Self" {
                // Handled below via enclosing type.
            }
        }
        if path[0] == "Self" || rest[0] == "Self" {
            if let Some(t) = enclosing_type {
                if let Some(id) = self.unique(self.method_by_type.get(&(
                    krate.clone(),
                    t.to_string(),
                    name.clone(),
                ))) {
                    return Some(id);
                }
            }
        }
        self.unique(self.free_by_crate.get(&(krate, name)))
    }

    fn unique(&self, ids: Option<&Vec<FnId>>) -> Option<FnId> {
        match ids {
            Some(v) if v.len() == 1 => Some(v[0]),
            // Duplicate definitions (e.g. cfg-gated twins) are only safe
            // to use when they agree on the defining file *and* the
            // enclosing type — otherwise ambiguity wins and no edge is
            // made.
            Some(v)
                if !v.is_empty()
                    && v.iter().all(|&i| {
                        self.fns[i].file == self.fns[v[0]].file
                            && self.fns[i].self_type == self.fns[v[0]].self_type
                    }) =>
            {
                Some(v[0])
            }
            _ => None,
        }
    }
}

/// The workspace call graph plus per-function panic sources.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Resolved edges: `edges[f]` = (callee, 1-based call line).
    pub edges: Vec<Vec<(FnId, usize)>>,
    /// Unwaived panic sources per function.
    pub sources: Vec<Vec<PanicSource>>,
    /// Count of resolved call expressions (for stats / acceptance).
    pub resolved_calls: usize,
    /// Count of call expressions that did not resolve.
    pub unresolved_calls: usize,
}

/// Result of the reachability pass: for every function that can reach a
/// panic, one witness step toward it.
#[derive(Debug, Clone)]
pub enum PanicWitness {
    /// The function itself contains the construct.
    Direct(PanicSource),
    /// The function calls `callee` (at `line`) which reaches a panic.
    Via {
        /// Callee on the witness path.
        callee: FnId,
        /// 1-based line of the witnessing call.
        line: usize,
    },
}

impl CallGraph {
    /// Creates an empty graph sized for `n` functions.
    pub fn new(n: usize) -> Self {
        CallGraph {
            edges: vec![Vec::new(); n],
            sources: vec![Vec::new(); n],
            resolved_calls: 0,
            unresolved_calls: 0,
        }
    }

    /// Functions that can reach an unwaived panic source, each with a
    /// deterministic witness (own source first, else the smallest-id
    /// panicking callee).
    pub fn panic_reachable(&self) -> BTreeMap<FnId, PanicWitness> {
        let n = self.edges.len();
        // Reverse edges once.
        let mut rev: Vec<Vec<(FnId, usize)>> = vec![Vec::new(); n];
        for (f, outs) in self.edges.iter().enumerate() {
            for &(g, line) in outs {
                rev[g].push((f, line));
            }
        }
        let mut witness: BTreeMap<FnId, PanicWitness> = BTreeMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for f in 0..n {
            if let Some(src) = self.sources[f].first() {
                witness.insert(f, PanicWitness::Direct(src.clone()));
                queue.push(f);
            }
        }
        // BFS towards callers; first discovery wins, and iteration order
        // (ascending ids seeded, FIFO) keeps witnesses deterministic.
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            for &(f, line) in &rev[g] {
                witness.entry(f).or_insert_with(|| {
                    queue.push(f);
                    PanicWitness::Via { callee: g, line }
                });
            }
        }
        witness
    }

    /// Renders the witness chain from `id` down to the root construct:
    /// `a → b → c; root: slice index `xs[i]` at file:line`. Chains are
    /// capped at 8 hops to keep diagnostics readable.
    pub fn chain(
        &self,
        table: &SymbolTable,
        witness: &BTreeMap<FnId, PanicWitness>,
        id: FnId,
    ) -> String {
        let mut names = vec![table.symbol(id).qualified()];
        let mut cur = id;
        let mut root = None;
        for _ in 0..8 {
            match witness.get(&cur) {
                Some(PanicWitness::Direct(src)) => {
                    root = Some(format!(
                        "{} at {}:{}",
                        src.what,
                        table.symbol(cur).file,
                        src.line
                    ));
                    break;
                }
                Some(PanicWitness::Via { callee, .. }) => {
                    names.push(table.symbol(*callee).qualified());
                    cur = *callee;
                }
                None => break,
            }
        }
        match root {
            Some(r) => format!("{}; root: {}", names.join(" -> "), r),
            None => format!("{} -> ... (chain truncated)", names.join(" -> ")),
        }
    }

    /// The hops of the witness chain for `id`, as `(qualified, file,
    /// line)` triples ending at the function containing the root
    /// construct. Used by the JSON output.
    pub fn chain_hops(
        &self,
        table: &SymbolTable,
        witness: &BTreeMap<FnId, PanicWitness>,
        id: FnId,
    ) -> Vec<(String, String, usize)> {
        let mut out = Vec::new();
        let mut cur = id;
        for _ in 0..8 {
            let sym = table.symbol(cur);
            match witness.get(&cur) {
                Some(PanicWitness::Direct(src)) => {
                    out.push((sym.qualified(), sym.file.clone(), src.line));
                    break;
                }
                Some(PanicWitness::Via { callee, line }) => {
                    out.push((sym.qualified(), sym.file.clone(), *line));
                    cur = *callee;
                }
                None => break,
            }
        }
        out
    }
}

/// Per-file alias map (`alias → full path`) in resolver form.
pub fn alias_map(parsed: &ParsedFile) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    for u in &parsed.uses {
        out.insert(u.alias.clone(), u.path.clone());
    }
    out
}

/// Convenience carrier tying a parsed file to its symbol ids.
#[derive(Debug)]
pub struct FileSymbols {
    /// Ids returned by [`SymbolTable::add_file`], parallel to
    /// `parsed.functions`.
    pub fn_ids: Vec<FnId>,
}

/// Set of crate dir names treated as panic-free (shared with rules v1).
pub fn panic_free_crates() -> BTreeSet<&'static str> {
    [
        "core", "onedim", "parallel", "obs", "json", "robust", "resume", "engine",
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn table_for(files: &[(&str, &str, &str)]) -> (SymbolTable, Vec<ParsedFile>) {
        let mut t = SymbolTable::default();
        t.register_crate("core", "rectpart_core");
        t.register_crate("onedim", "rectpart_onedim");
        let mut parsed = Vec::new();
        for (krate, path, src) in files {
            let p = parse(&lex(src));
            t.add_file(krate, path, true, &p);
            parsed.push(p);
        }
        (t, parsed)
    }

    #[test]
    fn resolves_same_crate_free_fn() {
        let (t, parsed) = table_for(&[(
            "core",
            "crates/core/src/a.rs",
            "fn helper() {}\nfn top() {\n    helper();\n}\n",
        )]);
        let aliases = alias_map(&parsed[0]);
        let call = &parsed[0].functions[1].calls[0];
        let id = t.resolve("core", None, &aliases, call).unwrap();
        assert_eq!(t.symbol(id).name, "helper");
    }

    #[test]
    fn resolves_cross_crate_path_and_alias() {
        let (t, parsed) = table_for(&[
            (
                "onedim",
                "crates/onedim/src/n.rs",
                "pub fn probe() {}\n",
            ),
            (
                "core",
                "crates/core/src/b.rs",
                "use rectpart_onedim::probe;\nfn f() {\n    rectpart_onedim::probe();\n    probe();\n}\n",
            ),
        ]);
        let aliases = alias_map(&parsed[1]);
        for call in &parsed[1].functions[0].calls {
            let id = t.resolve("core", None, &aliases, call).unwrap();
            assert_eq!(t.symbol(id).krate, "onedim");
            assert_eq!(t.symbol(id).name, "probe");
        }
    }

    #[test]
    fn self_method_resolves_via_enclosing_type() {
        let (t, parsed) = table_for(&[(
            "core",
            "crates/core/src/c.rs",
            "struct S;\nimpl S {\n    fn a(&self) {\n        self.b();\n    }\n    fn b(&self) {}\n}\n",
        )]);
        let aliases = alias_map(&parsed[0]);
        let call = &parsed[0].functions[0].calls[0];
        let id = t.resolve("core", Some("S"), &aliases, call).unwrap();
        assert_eq!(t.symbol(id).name, "b");
    }

    #[test]
    fn ambiguous_method_name_gives_no_edge() {
        let (t, parsed) = table_for(&[(
            "core",
            "crates/core/src/d.rs",
            "struct A;\nstruct B;\nimpl A {\n    fn solve(&self) {}\n}\nimpl B {\n    fn solve(&self) {}\n}\nfn f(a: &A) {\n    a.solve();\n}\n",
        )]);
        let aliases = alias_map(&parsed[0]);
        let call = parsed[0]
            .functions
            .iter()
            .find(|f| f.name == "f")
            .map(|f| &f.calls[0])
            .unwrap();
        assert!(t.resolve("core", None, &aliases, call).is_none());
    }

    #[test]
    fn std_method_names_never_bind() {
        let (t, parsed) = table_for(&[(
            "core",
            "crates/core/src/e.rs",
            "struct OnlyOne;\nimpl OnlyOne {\n    fn get(&self) {}\n}\nfn f(m: &std::collections::HashMap<u32, u32>) {\n    m.get(&1);\n}\n",
        )]);
        let aliases = alias_map(&parsed[0]);
        let call = parsed[0]
            .functions
            .iter()
            .find(|f| f.name == "f")
            .map(|f| &f.calls[0])
            .unwrap();
        assert!(t.resolve("core", None, &aliases, call).is_none());
    }

    #[test]
    fn panic_reachability_walks_chains() {
        let mut g = CallGraph::new(3);
        // 2 has a direct source; 1 calls 2; 0 calls 1.
        g.sources[2].push(PanicSource {
            line: 9,
            what: "slice index `xs[i]`".into(),
        });
        g.edges[1].push((2, 5));
        g.edges[0].push((1, 3));
        let w = g.panic_reachable();
        assert_eq!(w.len(), 3);
        assert!(matches!(w.get(&2), Some(PanicWitness::Direct(_))));
        assert!(matches!(
            w.get(&1),
            Some(PanicWitness::Via { callee: 2, .. })
        ));
        assert!(matches!(
            w.get(&0),
            Some(PanicWitness::Via { callee: 1, .. })
        ));
    }

    #[test]
    fn chain_renders_root() {
        let (t, _parsed) = table_for(&[(
            "core",
            "crates/core/src/f.rs",
            "fn a() {\n    b();\n}\nfn b() {\n    c();\n}\nfn c(xs: &[u64]) -> u64 {\n    xs[0]\n}\n",
        )]);
        let mut g = CallGraph::new(t.len());
        g.sources[2].push(PanicSource {
            line: 8,
            what: "slice index `xs[0]`".into(),
        });
        g.edges[0].push((1, 2));
        g.edges[1].push((2, 5));
        let w = g.panic_reachable();
        let chain = g.chain(&t, &w, 0);
        assert!(chain.contains("core::a -> core::b -> core::c"), "{chain}");
        assert!(chain.contains("root: slice index `xs[0]` at crates/core/src/f.rs:8"));
    }
}
