//! The lint catalog: rules L1–L5 over a lexed file.
//!
//! Each rule guards an invariant the compiler cannot check (see
//! DESIGN.md §11). Every diagnostic can be waived at the offending line
//! with a justified escape hatch in a comment on the same line or the
//! line directly above:
//!
//! ```text
//! // lint:allow(<slug>) -- <reason>
//! ```
//!
//! The reason is mandatory: an allow marker without ` -- <reason>` is
//! itself a diagnostic, as is one naming an unknown rule.

use crate::lexer::{lex, Lexed};
use std::collections::BTreeSet;
use std::fmt;

/// The rule catalog. Slugs (used in `lint:allow(...)`) are in
/// [`Rule::slug`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1 — panic-freedom in library code of the algorithmic crates.
    Panic,
    /// L2 — thread spawns confined to `crates/parallel`.
    Thread,
    /// L3 — no wall clocks, unseeded RNG, or hash-order iteration in
    /// deterministic code.
    Determinism,
    /// L4 — every `cfg(feature = "...")` name is declared in the crate's
    /// `Cargo.toml`.
    Feature,
    /// L5 — `unsafe` confined to the audited `simexec` stencil block;
    /// everything else forbids it.
    Unsafe,
    /// L6 — transitive panic-reachability in the panic-free crates
    /// (call-graph pass; see [`crate::analyze`]).
    PanicReach,
    /// L7 — weight-domain arithmetic must be checked/saturating outside
    /// the approved accumulator modules (call-graph pass).
    CheckedArith,
    /// L8 — lock discipline: no nested shard guards, no guard held
    /// across a `crates/parallel` join boundary (call-graph pass).
    LockDiscipline,
    /// Malformed or unknown `lint:allow` marker.
    AllowSyntax,
}

impl Rule {
    /// Short identifier used in diagnostics (`L1`..`L5`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "L1",
            Rule::Thread => "L2",
            Rule::Determinism => "L3",
            Rule::Feature => "L4",
            Rule::Unsafe => "L5",
            Rule::PanicReach => "L6",
            Rule::CheckedArith => "L7",
            Rule::LockDiscipline => "L8",
            Rule::AllowSyntax => "L0",
        }
    }

    /// Slug accepted by the `lint:allow(<slug>)` escape hatch.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Thread => "thread",
            Rule::Determinism => "determinism",
            Rule::Feature => "feature",
            Rule::Unsafe => "unsafe",
            Rule::PanicReach => "panic-reach",
            Rule::CheckedArith => "checked-arith",
            Rule::LockDiscipline => "lock-discipline",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// All waivable rules.
    pub const WAIVABLE: [Rule; 8] = [
        Rule::Panic,
        Rule::Thread,
        Rule::Determinism,
        Rule::Feature,
        Rule::Unsafe,
        Rule::PanicReach,
        Rule::CheckedArith,
        Rule::LockDiscipline,
    ];
}

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
    /// For L6 transitive diagnostics: the witness call chain as
    /// `(qualified caller, file, line)` hops, ending at the function
    /// containing the panic root. Empty for every other rule.
    pub chain: Vec<(String, String, usize)>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`core`, `onedim`, ... `rectpart` for the
    /// root package).
    pub crate_name: String,
    /// Workspace-relative path used in diagnostics and path allowlists.
    pub rel_path: String,
    /// `true` for files under the crate's `src/` (library code);
    /// `false` for `tests/`, `benches/`, `examples/`.
    pub is_library: bool,
    /// Feature names declared in the crate's `Cargo.toml`.
    pub declared_features: BTreeSet<String>,
    /// Vendored dependency shims: only the unsafe audit (L5) applies.
    pub is_shim: bool,
}

/// Crates whose library code must be panic-free (L1). `robust` is held
/// to the same bar: its `catch_unwind` boundary and injected-fault
/// panics are individually waived at the site, so any new panic
/// construct needs its own justification.
const PANIC_FREE_CRATES: [&str; 8] = [
    "core", "onedim", "parallel", "obs", "json", "robust", "resume", "engine",
];

/// Crates allowed to touch wall clocks anywhere in their library code
/// (L3): the measurement binaries, whose whole purpose is timing.
const CLOCK_CRATES: [&str; 2] = ["experiments", "simexec"];

/// Individual timing modules allowed to read wall clocks (L3). Tighter
/// than a crate-level waiver: within `rectpart-obs` only the guard
/// implementations and the span epoch may touch `Instant`, so the
/// exporters and report plumbing stay clock-free, and the parallel
/// execution layer gets its busy/wait intervals from `StopWatch` rather
/// than its own clock reads. (`crates/bench` keeps its timing in
/// `benches/`, which is not library code; its `src/` — the benchdiff
/// logic — is deliberately absent here.)
const CLOCK_MODULES: [&str; 2] = ["crates/obs/src/lib.rs", "crates/obs/src/span.rs"];

/// The single audited `unsafe` island (L5).
const UNSAFE_ALLOWLIST: [&str; 1] = ["crates/simexec/src/stencil.rs"];

/// The lint crate's own sources mention feature-attribute syntax inside
/// pattern strings and the `lint:allow` marker inside doc comments; L4
/// (which reads the `text` channel, strings intact) and the marker
/// syntax check skip this crate to stay self-clean. The fixtures and
/// the golden self-test still exercise both rules in isolation.
const SELF_EXEMPT: [&str; 1] = ["lint"];

/// Lints one file. `source` is the raw file content.
pub fn lint_file(ctx: &FileContext, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut out = Vec::new();
    check_allow_syntax(ctx, &lexed, &mut out);
    if !ctx.is_shim {
        check_panic(ctx, &lexed, &mut out);
        check_thread(ctx, &lexed, &mut out);
        check_determinism(ctx, &lexed, &mut out);
        check_feature(ctx, &lexed, &mut out);
    }
    check_unsafe(ctx, &lexed, &mut out);
    out.sort();
    out
}

/// `true` if line `idx` (0-based) carries a `lint:allow(slug)` waiver:
/// on the line itself, or above it within the same statement (rustfmt
/// may push a chained call several lines below its comment, so the scan
/// walks up through continuation lines until a statement boundary —
/// a line containing `;`, `{` or `}` — or an 8-line cap).
pub(crate) fn allowed(lexed: &Lexed, idx: usize, rule: Rule) -> bool {
    let marker = format!("lint:allow({})", rule.slug());
    if lexed.lines[idx].comment.contains(&marker) {
        return true;
    }
    let mut i = idx;
    for _ in 0..8 {
        if i == 0 {
            return false;
        }
        i -= 1;
        let line = &lexed.lines[i];
        if line.comment.contains(&marker) {
            return true;
        }
        if line.code.contains([';', '{', '}']) {
            return false;
        }
    }
    false
}

fn push(
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
    lexed: &Lexed,
    idx: usize,
    rule: Rule,
    message: String,
) {
    if rule != Rule::AllowSyntax && allowed(lexed, idx, rule) {
        return;
    }
    out.push(Diagnostic {
        file: ctx.rel_path.clone(),
        line: idx + 1,
        rule,
        message,
        chain: Vec::new(),
    });
}

/// Finds `pat` in `hay` at non-identifier boundaries (so `todo!` does
/// not fire inside `my_todo!`-like names), returning `true` on a hit.
pub(crate) fn word_hit(hay: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(off) = hay[from..].find(pat) {
        let at = from + off;
        let pre_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// L0 — every `lint:allow` marker must name a known rule and carry a
/// ` -- <reason>` justification.
fn check_allow_syntax(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if SELF_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        let mut from = 0;
        while let Some(off) = line.comment[from..].find("lint:allow(") {
            let at = from + off + "lint:allow(".len();
            let rest = &line.comment[at..];
            let Some(close) = rest.find(')') else {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::AllowSyntax,
                    "unterminated lint:allow marker".into(),
                );
                break;
            };
            let slug = &rest[..close];
            if !Rule::WAIVABLE.iter().any(|r| r.slug() == slug) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::AllowSyntax,
                    format!("lint:allow names unknown rule `{slug}`"),
                );
            }
            let after = &rest[close + 1..];
            if !after.trim_start().starts_with("--")
                || after
                    .trim_start()
                    .trim_start_matches("--")
                    .trim()
                    .is_empty()
            {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::AllowSyntax,
                    "lint:allow requires a justification: `-- <reason>`".into(),
                );
            }
            from = at + close;
        }
    }
}

/// L1 — panic-freedom.
fn check_panic(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library || !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    const CALLS: [&str; 2] = [".unwrap()", ".expect("];
    const MACROS: [&str; 4] = ["panic!", "unreachable!", "unimplemented!", "todo!"];
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in CALLS {
            if line.code.contains(pat) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Panic,
                    format!("`{pat}..` can panic in library code"),
                );
            }
        }
        for pat in MACROS {
            if word_hit(&line.code, pat) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Panic,
                    format!("`{pat}` in library code"),
                );
            }
        }
        // A panic *boundary* needs the same scrutiny as a panic: code
        // that swallows unwinds can mask partial mutation. The single
        // sanctioned boundary (the robust driver's rung isolation)
        // carries a site waiver.
        if word_hit(&line.code, "catch_unwind") {
            push(
                ctx,
                out,
                lexed,
                idx,
                Rule::Panic,
                "`catch_unwind` outside the sanctioned driver boundary".to_string(),
            );
        }
    }
}

/// L2 — thread confinement.
fn check_thread(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library || ctx.crate_name == "parallel" {
        return;
    }
    const PATTERNS: [&str; 3] = ["std::thread", "thread::spawn", ".spawn("];
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PATTERNS {
            if line.code.contains(pat) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Thread,
                    format!("`{pat}` outside crates/parallel breaks the serial-build guarantee"),
                );
            }
        }
    }
}

/// L3 — determinism: wall clocks, unseeded RNG, hash-order iteration.
fn check_determinism(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    let clocks_ok = CLOCK_CRATES.contains(&ctx.crate_name.as_str())
        || CLOCK_MODULES.contains(&ctx.rel_path.as_str());
    const CLOCKS: [&str; 2] = ["Instant::now", "SystemTime"];
    const RNG: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];
    // Span guards opened on a forking thread and dropped on (or shared
    // with) a worker would corrupt both threads' span stacks, so the
    // guard API is banned from the parallel execution layer outright;
    // the sanctioned handoff is `span::fork_context` + `span::adopt`.
    const SPAN_GUARDS: [&str; 2] = ["span::enter", "SpanGuard"];
    // Identifiers bound to a HashMap/HashSet anywhere in the file.
    let tracked = hash_bindings(lexed);
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !clocks_ok {
            for pat in CLOCKS {
                if line.code.contains(pat) {
                    push(
                        ctx,
                        out,
                        lexed,
                        idx,
                        Rule::Determinism,
                        format!("wall clock `{pat}` outside the timing crates"),
                    );
                }
            }
        }
        if ctx.crate_name == "parallel" {
            for pat in SPAN_GUARDS {
                if line.code.contains(pat) {
                    push(
                        ctx,
                        out,
                        lexed,
                        idx,
                        Rule::Determinism,
                        format!(
                            "`{pat}` must not cross a crates/parallel join boundary; \
                             capture with span::fork_context and install via span::adopt"
                        ),
                    );
                }
            }
        }
        for pat in RNG {
            if word_hit(&line.code, pat) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Determinism,
                    format!("unseeded randomness `{pat}`"),
                );
            }
        }
        for ident in &tracked {
            if hash_iteration(&line.code, ident) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Determinism,
                    format!(
                        "iteration over hash-ordered `{ident}` can leak nondeterministic order"
                    ),
                );
            }
        }
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` values: `let x =
/// HashMap::new()`, `x: HashMap<..>` (params, fields), `x: &mut
/// HashMap<..>`.
fn hash_bindings(lexed: &Lexed) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &lexed.lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(off) = code[from..].find(ty) {
                let at = from + off;
                from = at + ty.len();
                let pre_ident = code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if pre_ident {
                    continue;
                }
                let before = code[..at].trim_end();
                // `name: HashMap<...>` — strip reference/mutability.
                let before_ty = before
                    .trim_end_matches("&mut")
                    .trim_end_matches('&')
                    .trim_end();
                if let Some(b) = before_ty.strip_suffix(':') {
                    if let Some(name) = last_ident(b) {
                        out.insert(name);
                        continue;
                    }
                }
                // `let [mut] name ... = ... HashMap...`
                if let Some(let_pos) = before.rfind("let ") {
                    let binding = &before[let_pos + 4..];
                    if binding.contains('=') {
                        let lhs = binding.split('=').next().unwrap_or("");
                        let lhs = lhs.split(':').next().unwrap_or("");
                        let lhs = lhs.trim().trim_start_matches("mut ").trim();
                        if !lhs.is_empty() && lhs.chars().all(|c| c.is_alphanumeric() || c == '_') {
                            out.insert(lhs.to_string());
                        }
                    }
                }
            }
        }
    }
    out
}

/// Trailing identifier of `s`, if any.
fn last_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let ident: String = tail.chars().rev().collect();
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_numeric())).then_some(ident)
}

/// `true` if `code` iterates `ident` in hash order.
fn hash_iteration(code: &str, ident: &str) -> bool {
    const METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for m in METHODS {
        let pat = format!("{ident}{m}");
        if word_hit(code, &pat) {
            return true;
        }
    }
    // `for x in [&[mut]] ident` with the loop body or newline following.
    for pre in ["in ", "in &", "in &mut "] {
        let pat = format!("{pre}{ident}");
        let mut from = 0;
        while let Some(off) = code[from..].find(&pat) {
            let at = from + off;
            from = at + pat.len();
            let end = at + pat.len();
            let next = code[end..].chars().next();
            let boundary_ok = next.is_none_or(|c| c == ' ' || c == '{');
            let pre_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if boundary_ok && pre_ok && code.contains("for ") {
                return true;
            }
        }
    }
    false
}

/// L4 — feature hygiene: `cfg(feature = "name")` names must be declared.
fn check_feature(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if SELF_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        for name in feature_names(&line.text) {
            if !ctx.declared_features.contains(&name) {
                push(
                    ctx,
                    out,
                    lexed,
                    idx,
                    Rule::Feature,
                    format!(
                        "feature `{name}` is not declared in this crate's Cargo.toml \
                         (the cfg-gated code is silently dead)"
                    ),
                );
            }
        }
    }
}

/// Extracts every `feature = "<name>"` occurrence from comment-stripped
/// source text.
fn feature_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find("feature") {
        let at = from + off;
        from = at + "feature".len();
        let rest = text[from..].trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('"') else {
            continue;
        };
        if let Some(close) = rest.find('"') {
            let name = &rest[..close];
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_alphanumeric() || "_-".contains(c))
            {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// L5 — unsafe audit.
fn check_unsafe(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if UNSAFE_ALLOWLIST.contains(&ctx.rel_path.as_str()) {
        // The audited island: `unsafe` is expected, but the safety
        // contract must be written down.
        let documented = lexed
            .lines
            .iter()
            .any(|l| l.comment.contains("# Safety") || l.comment.contains("SAFETY:"));
        if !documented {
            push(
                ctx,
                out,
                lexed,
                0,
                Rule::Unsafe,
                "audited unsafe block lost its `# Safety` contract comment".into(),
            );
        }
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if word_hit(&line.code, "unsafe") && !line.code.contains("forbid(unsafe_code)") {
            push(
                ctx,
                out,
                lexed,
                idx,
                Rule::Unsafe,
                "`unsafe` outside the audited simexec stencil block".into(),
            );
        }
    }
}

/// L5 (workspace half) — every crate root except `simexec` must carry
/// `#![forbid(unsafe_code)]`.
pub fn check_forbid_attr(ctx: &FileContext, source: &str) -> Option<Diagnostic> {
    if ctx.crate_name == "simexec" {
        return None;
    }
    let lexed = lex(source);
    let found = lexed
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    (!found).then(|| Diagnostic {
        file: ctx.rel_path.clone(),
        line: 1,
        rule: Rule::Unsafe,
        message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        chain: Vec::new(),
    })
}
