//! A lightweight item parser on top of the channel lexer.
//!
//! The v2 rules (L6–L8, see [`crate::analyze`]) need more structure
//! than per-line pattern matching: *which function* a line belongs to,
//! *what that function calls*, and *which `use` aliases* are in scope.
//! This module extracts exactly that — no types, no expressions, no
//! generics — by walking the comment/string-stripped `code` channel of
//! [`crate::lexer::lex`] with a brace-depth scope stack:
//!
//! * `fn` items (free functions, inherent/trait methods, nested fns),
//!   each with its declaration line, body line range, enclosing
//!   `impl`/`trait` type, and test-ness;
//! * `impl [Trait for] Type` / `trait Name` blocks (methods inside are
//!   keyed `Type::name`);
//! * `use` declarations, flattened to `alias → path` pairs (including
//!   brace groups and `as` renames) for cross-crate call resolution;
//! * call expressions inside each body: `path::to::f(...)` with its
//!   segment list, or `.method(...)` marked as a method call.
//!
//! The parser is deliberately forgiving: anything it cannot classify is
//! simply not recorded, and the rule engines treat unknown calls as
//! opaque (no call-graph edge). That direction of error weakens the
//! transitive analysis but never produces a false symbol.

use crate::lexer::Lexed;

/// One `fn` item: declaration site, body extent, and extracted calls.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (last identifier after `fn`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if the fn is a method.
    pub self_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based line range `[body_open, body_close]` of the body braces.
    /// Equal to `(decl_line, decl_line)` for bodyless trait signatures
    /// (which are recorded but carry no calls).
    pub body: (usize, usize),
    /// `true` when the declaration line sits in a `#[cfg(test)]` region
    /// or under `#[test]`.
    pub is_test: bool,
    /// Call expressions found inside the body, in source order.
    pub calls: Vec<Call>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 0-based source line of the call.
    pub line: usize,
    /// Path segments, e.g. `["rectpart_core", "PrefixSum2D", "try_new"]`
    /// or just `["helper"]`. Method calls carry a single segment.
    pub path: Vec<String>,
    /// `true` for `.name(...)` receiver calls.
    pub is_method: bool,
    /// For method calls only: `true` when the receiver is literally
    /// `self`, which lets the resolver use the enclosing impl type.
    pub self_receiver: bool,
}

/// One flattened `use` mapping: the in-scope alias and the full path.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Name the item is visible as in this file.
    pub alias: String,
    /// Full path segments, e.g. `["rectpart_core", "cache", "StripeCache"]`.
    pub path: Vec<String>,
}

/// Parsed view of one file: functions and use aliases.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items in source order.
    pub functions: Vec<FnItem>,
    /// Flattened `use` aliases.
    pub uses: Vec<UseDecl>,
}

/// Rust keywords that look like call heads but are not (`if (x)`, ...),
/// plus declaration forms.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "fn", "impl",
    "where", "let", "mut", "ref",
];

#[derive(Debug)]
enum ScopeKind {
    /// Index into `ParsedFile::functions`.
    Fn(usize),
    /// `impl`/`trait` block with its subject type name.
    Type(String),
    Other,
}

/// A `fn name` seen, waiting for its body `{` (or a `;` that reveals a
/// bodyless trait signature).
struct PendingFn {
    name: String,
    decl_line: usize,
    is_test: bool,
}

/// Parses `source` (already lexed) into functions, calls and uses.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending_fn: Option<PendingFn> = None;
    let mut pending_type: Option<String> = None;
    // `use` declarations can span lines; accumulate until `;`.
    let mut pending_use: Option<String> = None;

    for (line_no, line) in lexed.lines.iter().enumerate() {
        let code = line.code.as_str();
        let tokens = tokenize(code);
        let mut t = 0;
        while t < tokens.len() {
            match &tokens[t] {
                Token::Ident(w) if w == "fn" && pending_fn.is_none() => {
                    if let Some(Token::Ident(name)) = tokens.get(t + 1) {
                        pending_fn = Some(PendingFn {
                            name: name.clone(),
                            decl_line: line_no,
                            is_test: line.in_test,
                        });
                        t += 2;
                        continue;
                    }
                }
                Token::Ident(w) if (w == "impl" || w == "trait") && pending_type.is_none() => {
                    if let Some(name) = impl_subject(&tokens[t + 1..]) {
                        pending_type = Some(name);
                    }
                }
                Token::Ident(w) if w == "use" && pending_use.is_none() => {
                    pending_use = Some(String::new());
                }
                Token::Open => {
                    if let Some(p) = pending_fn.take() {
                        let self_type = scopes.iter().rev().find_map(|s| match s {
                            ScopeKind::Type(n) => Some(n.clone()),
                            _ => None,
                        });
                        out.functions.push(FnItem {
                            name: p.name,
                            self_type,
                            decl_line: p.decl_line,
                            body: (line_no, line_no),
                            is_test: p.is_test || line.in_test,
                            calls: Vec::new(),
                        });
                        scopes.push(ScopeKind::Fn(out.functions.len() - 1));
                    } else if let Some(name) = pending_type.take() {
                        scopes.push(ScopeKind::Type(name));
                    } else if let Some(buf) = pending_use.as_mut() {
                        // Brace *inside* a use tree, not a scope.
                        buf.push('{');
                    } else {
                        scopes.push(ScopeKind::Other);
                    }
                }
                Token::Close => {
                    if let Some(buf) = pending_use.as_mut() {
                        buf.push('}');
                    } else if let Some(ScopeKind::Fn(idx)) = scopes.pop() {
                        out.functions[idx].body.1 = line_no;
                    }
                }
                Token::Semi => {
                    if let Some(buf) = pending_use.take() {
                        flatten_use(&buf, &mut out.uses);
                    }
                    // A `;` before any `{`: bodyless trait signature.
                    if let Some(p) = pending_fn.take() {
                        let self_type = scopes.iter().rev().find_map(|s| match s {
                            ScopeKind::Type(n) => Some(n.clone()),
                            _ => None,
                        });
                        out.functions.push(FnItem {
                            name: p.name,
                            self_type,
                            decl_line: p.decl_line,
                            body: (p.decl_line, p.decl_line),
                            is_test: p.is_test,
                            calls: Vec::new(),
                        });
                    }
                    pending_type = None;
                }
                Token::Other(_) | Token::Ident(_) => {}
            }
            if let (Some(buf), Token::Ident(w) | Token::Other(w)) =
                (pending_use.as_mut(), &tokens[t])
            {
                // `as` must stay separable from its neighbours once the
                // whitespace is gone; everything else can be glued.
                if w == "as" {
                    buf.push_str(" as ");
                } else if w != "use" {
                    buf.push_str(w);
                }
            }
            t += 1;
        }
        // Calls: attribute this line to the innermost open fn. The body
        // open line itself may still hold signature text; accepting it
        // costs at most a spurious unresolvable "call" in a signature.
        if let Some(ScopeKind::Fn(idx)) =
            scopes.iter().rev().find(|s| matches!(s, ScopeKind::Fn(_)))
        {
            let idx = *idx;
            extract_calls(code, line_no, &mut out.functions[idx].calls);
        }
    }
    out
}

/// Subject type of an `impl`/`trait` header: the identifier after `for`
/// if present, else the first capitalized identifier outside the
/// `<...>` generic-parameter list.
fn impl_subject(tokens: &[Token]) -> Option<String> {
    let mut angle = 0i32;
    let mut names: Vec<&String> = Vec::new();
    for tok in tokens {
        match tok {
            Token::Open | Token::Semi => break,
            Token::Other(p) if p == "<" => angle += 1,
            Token::Other(p) if p == ">" => angle -= 1,
            Token::Ident(w) if angle == 0 => names.push(w),
            _ => {}
        }
    }
    if let Some(pos) = names.iter().position(|w| *w == "for") {
        names.get(pos + 1).map(|s| (*s).clone())
    } else {
        names
            .iter()
            .find(|w| w.chars().next().is_some_and(|c| c.is_uppercase()))
            .map(|s| (*s).clone())
    }
}

/// Flattens a (possibly braced) use tree into alias → path pairs.
/// `a::b::{c, d as e, f::g}` yields `c → a::b::c`, `e → a::b::d`,
/// `g → a::b::f::g`. Glob imports are dropped.
fn flatten_use(tree: &str, out: &mut Vec<UseDecl>) {
    fn walk(prefix: &[String], tree: &str, out: &mut Vec<UseDecl>) {
        // Split top-level commas.
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut parts = Vec::new();
        for (i, c) in tree.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parts.push(&tree[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&tree[start..]);
        for part in parts {
            let part = part.trim();
            if part.is_empty() || part == "*" {
                continue;
            }
            if let Some(open) = part.find('{') {
                let head = part[..open].trim_end_matches(':');
                let inner = part[open + 1..].trim_end_matches('}');
                let mut p = prefix.to_vec();
                p.extend(head.split("::").filter(|s| !s.is_empty()).map(String::from));
                walk(&p, inner, out);
                continue;
            }
            // `path as alias` — the accumulator preserved ` as ` with
            // its surrounding spaces exactly so it stays separable here.
            let (path_str, alias) = match part.rfind(" as ") {
                Some(pos) => (part[..pos].trim_end(), Some(part[pos + 4..].trim())),
                None => (part, None),
            };
            let mut p = prefix.to_vec();
            p.extend(
                path_str
                    .split("::")
                    .map(str::trim)
                    .filter(|s| !s.is_empty() && *s != "self")
                    .map(String::from),
            );
            if p.is_empty() {
                continue;
            }
            let alias = alias
                .map(String::from)
                .unwrap_or_else(|| p[p.len() - 1].clone());
            if !alias.is_empty() {
                out.push(UseDecl { alias, path: p });
            }
        }
    }
    walk(&[], tree, out);
}

#[derive(Debug, PartialEq)]
enum Token {
    Ident(String),
    /// `{`
    Open,
    /// `}`
    Close,
    /// `;`
    Semi,
    /// Any other punctuation run we keep verbatim (e.g. `::`, `as` glue).
    Other(String),
}

/// Splits a code-channel line into identifier and punctuation tokens.
fn tokenize(code: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(chars[start..i].iter().collect()));
            continue;
        }
        match c {
            '{' => out.push(Token::Open),
            '}' => out.push(Token::Close),
            ';' => out.push(Token::Semi),
            c if c.is_whitespace() => {}
            _ => {
                // Keep `::` as one token; everything else 1 char.
                if c == ':' && chars.get(i + 1) == Some(&':') {
                    out.push(Token::Other("::".into()));
                    i += 2;
                    continue;
                }
                out.push(Token::Other(c.to_string()));
            }
        }
        i += 1;
    }
    out
}

/// Extracts call expressions from one code-channel line.
pub fn extract_calls(code: &str, line_no: usize, out: &mut Vec<Call>) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'(' {
            i += 1;
            continue;
        }
        // Identifier immediately before `(`.
        let mut end = i;
        while end > 0 && (bytes[end - 1] as char).is_whitespace() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 {
            let c = bytes[start - 1] as char;
            if c.is_alphanumeric() || c == '_' {
                start -= 1;
            } else {
                break;
            }
        }
        if start == end || (bytes[start] as char).is_numeric() {
            i += 1;
            continue;
        }
        let name: String = code[start..end].to_string();
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        // Declaration heads are not calls: `fn name(`, `struct S(u32)`.
        {
            let mut d = start;
            while d > 0 && (bytes[d - 1] as char).is_whitespace() {
                d -= 1;
            }
            let mut ks = d;
            while ks > 0 {
                let c = bytes[ks - 1] as char;
                if c.is_alphanumeric() || c == '_' {
                    ks -= 1;
                } else {
                    break;
                }
            }
            if matches!(&code[ks..d], "fn" | "struct" | "enum" | "union") {
                i += 1;
                continue;
            }
        }
        // Macro heads (`name!(`) never reach here: the `!` between the
        // identifier and the paren makes the backward ident scan come up
        // empty, which the `start == end` guard above already rejects.
        // Walk path segments / method dot backwards from `start`.
        let mut seg_end = start;
        let mut path = vec![name];
        let mut is_method = false;
        let mut self_receiver = false;
        loop {
            while seg_end > 0 && (bytes[seg_end - 1] as char).is_whitespace() {
                seg_end -= 1;
            }
            if seg_end >= 2 && &code[seg_end - 2..seg_end] == "::" {
                seg_end -= 2;
                while seg_end > 0 && (bytes[seg_end - 1] as char).is_whitespace() {
                    seg_end -= 1;
                }
                // A `>` closes a turbofish/qualified generic; give up on
                // the deeper path but keep what we have.
                let mut s = seg_end;
                while s > 0 {
                    let c = bytes[s - 1] as char;
                    if c.is_alphanumeric() || c == '_' {
                        s -= 1;
                    } else {
                        break;
                    }
                }
                if s == seg_end {
                    break;
                }
                path.insert(0, code[s..seg_end].to_string());
                seg_end = s;
                continue;
            }
            if seg_end >= 1 && bytes[seg_end - 1] == b'.' {
                is_method = true;
                // Peek the receiver token before the dot.
                let mut s = seg_end - 1;
                while s > 0 && (bytes[s - 1] as char).is_whitespace() {
                    s -= 1;
                }
                let mut r = s;
                while r > 0 {
                    let c = bytes[r - 1] as char;
                    if c.is_alphanumeric() || c == '_' {
                        r -= 1;
                    } else {
                        break;
                    }
                }
                self_receiver = &code[r..s] == "self";
            }
            break;
        }
        if is_method && path.len() > 1 {
            // `a.b::c(` cannot happen; defensive.
            path = vec![path.pop().unwrap_or_default()];
        }
        out.push(Call {
            line: line_no,
            path,
            is_method,
            self_receiver,
        });
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_free_fns_and_bodies() {
        let src = "fn a() {\n    b();\n}\n\nfn b() {}\n";
        let p = parse(&lex(src));
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "a");
        assert_eq!(p.functions[0].body, (0, 2));
        assert_eq!(p.functions[0].calls.len(), 1);
        assert_eq!(p.functions[0].calls[0].path, vec!["b"]);
        assert_eq!(p.functions[1].name, "b");
    }

    #[test]
    fn methods_get_impl_type() {
        let src = "struct S;\nimpl S {\n    pub fn m(&self) -> u32 {\n        self.n()\n    }\n    fn n(&self) -> u32 { 1 }\n}\n";
        let p = parse(&lex(src));
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].self_type.as_deref(), Some("S"));
        assert!(p.functions[0].calls[0].is_method);
        assert!(p.functions[0].calls[0].self_receiver);
    }

    #[test]
    fn trait_impl_uses_for_type() {
        let src = "impl Display for Widget {\n    fn fmt(&self) -> u32 { 0 }\n}\n";
        let p = parse(&lex(src));
        assert_eq!(p.functions[0].self_type.as_deref(), Some("Widget"));
    }

    #[test]
    fn path_calls_keep_segments() {
        let src = "fn f() {\n    rectpart_core::prefix::build(1);\n    Type::assoc(2);\n}\n";
        let p = parse(&lex(src));
        let calls = &p.functions[0].calls;
        assert_eq!(calls[0].path, vec!["rectpart_core", "prefix", "build"]);
        assert_eq!(calls[1].path, vec!["Type", "assoc"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f(x: bool) {\n    if (x) {}\n    vec![1];\n    println!(\"{}\", 1);\n    while (x) {}\n}\n";
        let p = parse(&lex(src));
        assert!(
            p.functions[0].calls.is_empty(),
            "{:?}",
            p.functions[0].calls
        );
    }

    #[test]
    fn use_aliases_flatten() {
        let src = "use rectpart_core::{PrefixSum2D, cache::StripeCache};\nuse rectpart_onedim::nicol as n;\n";
        let p = parse(&lex(src));
        let find = |a: &str| p.uses.iter().find(|u| u.alias == a).map(|u| u.path.clone());
        assert_eq!(
            find("PrefixSum2D"),
            Some(vec!["rectpart_core".into(), "PrefixSum2D".into()])
        );
        assert_eq!(
            find("StripeCache"),
            Some(vec![
                "rectpart_core".into(),
                "cache".into(),
                "StripeCache".into()
            ])
        );
        assert_eq!(
            find("n"),
            Some(vec!["rectpart_onedim".into(), "nicol".into()])
        );
    }

    #[test]
    fn bodyless_trait_fn_is_recorded_without_calls() {
        let src = "trait T {\n    fn sig(&self) -> u32;\n    fn with_default(&self) -> u32 {\n        self.sig()\n    }\n}\n";
        let p = parse(&lex(src));
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "sig");
        assert!(p.functions[0].calls.is_empty());
        assert_eq!(p.functions[1].self_type.as_deref(), Some("T"));
        assert_eq!(p.functions[1].calls.len(), 1);
    }

    #[test]
    fn nested_fn_calls_attribute_to_inner() {
        let src = "fn outer() {\n    fn inner() {\n        leaf();\n    }\n    inner();\n}\n";
        let p = parse(&lex(src));
        let outer = p.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.functions.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].path, vec!["leaf"]);
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].path, vec!["inner"]);
    }

    #[test]
    fn test_region_marks_fn() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let p = parse(&lex(src));
        assert!(!p.functions[0].is_test);
        assert!(p.functions[1].is_test);
    }
}
