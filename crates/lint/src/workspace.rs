//! Workspace walker: enumerates every crate (including the root package
//! and the vendored shims), reads its manifest, and runs the rule
//! catalog over each `.rs` file.
//!
//! Two entry points share the walk:
//!
//! * [`lint_workspace`] — the v1 per-file pass (rules L1–L5), kept
//!   stable for existing callers and tests;
//! * [`lint_workspace_v2`] — v1 **plus** the call-graph pass
//!   ([`crate::analyze`], rules L6–L8), with an optional baseline file
//!   that suppresses accepted legacy findings (DESIGN.md §15.4).

use crate::analyze::analyze_files;
use crate::manifest;
use crate::rules::{check_forbid_attr, lint_file, Diagnostic, FileContext};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root this binary was compiled inside (two levels above
/// `crates/lint`).
pub fn default_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    here.ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

/// Default location of the committed suppression baseline.
pub fn default_baseline(root: &Path) -> PathBuf {
    root.join("crates/lint/lint-baseline.txt")
}

/// One crate to lint: its directory, display name, and shim-ness.
struct CrateDir {
    name: String,
    dir: PathBuf,
    is_shim: bool,
    /// Subdirectories to walk, relative to `dir`. `None` walks the whole
    /// crate directory (the usual case); the root package restricts the
    /// walk so it does not descend into `crates/` and `target/`.
    subdirs: Option<&'static [&'static str]>,
}

fn crate_dirs(root: &Path) -> io::Result<Vec<CrateDir>> {
    let mut crates = Vec::new();
    // Root package (`rectpart`): only its own source trees.
    crates.push(CrateDir {
        name: "rectpart".into(),
        dir: root.to_path_buf(),
        is_shim: false,
        subdirs: Some(&["src", "tests", "examples"]),
    });
    for (parent, is_shim) in [("crates", false), ("shims", true)] {
        let base = root.join(parent);
        let mut entries: Vec<_> = fs::read_dir(&base)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            crates.push(CrateDir {
                name,
                dir,
                is_shim,
                subdirs: None,
            });
        }
    }
    Ok(crates)
}

/// Reads every lintable `.rs` file in the workspace into `(context,
/// source)` pairs, fixtures excluded, sorted by path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(FileContext, String)>> {
    let mut out = Vec::new();
    for krate in crate_dirs(root)? {
        let manifest_text = fs::read_to_string(krate.dir.join("Cargo.toml"))?;
        let features = manifest::declared_features(&manifest_text);
        let mut files = Vec::new();
        match krate.subdirs {
            Some(dirs) => {
                for d in dirs {
                    let p = krate.dir.join(d);
                    if p.is_dir() {
                        collect_rs(&p, &mut files)?;
                    }
                }
            }
            None => collect_rs(&krate.dir, &mut files)?,
        }
        files.sort();
        for file in &files {
            let rel = rel_path(root, file);
            // Fixture files intentionally violate the rules; the golden
            // self-test (tests/self_test.rs) lints them in isolation.
            if rel.contains("/fixtures/") {
                continue;
            }
            let source = fs::read_to_string(file)?;
            let ctx = FileContext {
                crate_name: krate.name.clone(),
                rel_path: rel,
                is_library: rel_within(&krate, file).starts_with("src/"),
                declared_features: features.clone(),
                is_shim: krate.is_shim,
            };
            out.push((ctx, source));
        }
    }
    Ok(out)
}

/// Crate-root `#![forbid(unsafe_code)]` presence (the workspace half of
/// L5), over the already-read file set.
fn forbid_attr_diags(files: &[(FileContext, String)]) -> Vec<Diagnostic> {
    // Primary root per crate: `src/lib.rs` when present, else
    // `src/main.rs` (same preference as the original walker).
    let mut out = Vec::new();
    let has_lib: BTreeSet<&str> = files
        .iter()
        .filter(|(ctx, _)| ctx.rel_path.ends_with("src/lib.rs"))
        .map(|(ctx, _)| ctx.crate_name.as_str())
        .collect();
    for (ctx, source) in files {
        let is_root = ctx.rel_path.ends_with("src/lib.rs")
            || (ctx.rel_path.ends_with("src/main.rs")
                && !has_lib.contains(ctx.crate_name.as_str()));
        if is_root {
            out.extend(check_forbid_attr(ctx, source));
        }
    }
    out
}

/// Lints the whole workspace rooted at `root` with the v1 rules (L1–L5);
/// diagnostics come back sorted by file and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let files = workspace_files(root)?;
    let mut out = Vec::new();
    for (ctx, source) in &files {
        out.extend(lint_file(ctx, source));
    }
    out.extend(forbid_attr_diags(&files));
    out.sort();
    out.dedup();
    Ok(out)
}

/// Result of the full v2 run (L1–L8 plus call-graph statistics).
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Diagnostics remaining after baseline suppression, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics swallowed by the baseline file.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (stale; candidates for
    /// removal with `--update-baseline`).
    pub stale_baseline: Vec<String>,
    /// Functions indexed by the symbol table.
    pub functions: usize,
    /// Call expressions resolved to a workspace function.
    pub resolved_calls: usize,
    /// Call expressions the resolver declined (ambiguity escape hatch).
    pub unresolved_calls: usize,
}

/// Runs rules L1–L8 over the workspace. When `baseline` names a readable
/// file, findings whose [`baseline_key`] appears in it are suppressed
/// (counted, not reported).
pub fn lint_workspace_v2(root: &Path, baseline: Option<&Path>) -> io::Result<WorkspaceReport> {
    let files = workspace_files(root)?;
    let mut all = Vec::new();
    for (ctx, source) in &files {
        all.extend(lint_file(ctx, source));
    }
    all.extend(forbid_attr_diags(&files));
    let analysis = analyze_files(&files);
    all.extend(analysis.diagnostics);
    all.sort();
    all.dedup();

    let mut report = WorkspaceReport {
        functions: analysis.functions,
        resolved_calls: analysis.resolved_calls,
        unresolved_calls: analysis.unresolved_calls,
        ..WorkspaceReport::default()
    };
    let keys = match baseline {
        Some(path) if path.is_file() => load_baseline(path)?,
        _ => BTreeSet::new(),
    };
    let mut hit: BTreeSet<String> = BTreeSet::new();
    for d in all {
        let key = baseline_key(&d);
        if keys.contains(&key) {
            report.suppressed += 1;
            hit.insert(key);
        } else {
            report.diagnostics.push(d);
        }
    }
    report.stale_baseline = keys.difference(&hit).cloned().collect();
    Ok(report)
}

/// Baseline identity of a diagnostic: the display form without the line
/// number, so unrelated edits shifting a file do not invalidate entries.
/// (Chain messages embed their own line numbers and are regenerated with
/// `--update-baseline` when they drift.)
pub fn baseline_key(d: &Diagnostic) -> String {
    format!(
        "{}: {} ({}): {}",
        d.file,
        d.rule.id(),
        d.rule.slug(),
        d.message
    )
}

/// Parses a baseline file: one [`baseline_key`] per line; `#` comments
/// and blank lines ignored.
pub fn load_baseline(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = fs::read_to_string(path)?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Renders a baseline file body for the given (unsuppressed) findings.
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# rectpart-lint suppression baseline (DESIGN.md \u{a7}15.4).\n\
         # One accepted legacy finding per line: the diagnostic without its\n\
         # line number. Regenerate with `rectpart-lint --update-baseline`;\n\
         # shrink it over time, never grow it without review.\n",
    );
    let mut keys: Vec<String> = diags.iter().map(baseline_key).collect();
    keys.sort();
    keys.dedup();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the v2 report as the machine-readable JSON document emitted
/// by `rectpart-lint --format json`. The schema is pinned by a
/// round-trip test through `rectpart-json` (DESIGN.md §15.5).
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"rectpart-lint/v2\",\n");
    out.push_str(&format!(
        "  \"summary\": {{\n    \"violations\": {},\n    \"suppressed\": {},\n    \
         \"stale_baseline\": {},\n    \"functions\": {},\n    \"resolved_calls\": {},\n    \
         \"unresolved_calls\": {}\n  }},\n",
        report.diagnostics.len(),
        report.suppressed,
        report.stale_baseline.len(),
        report.functions,
        report.resolved_calls,
        report.unresolved_calls
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"file\": \"{}\",\n", json_escape(&d.file)));
        out.push_str(&format!("      \"line\": {},\n", d.line));
        out.push_str(&format!("      \"rule\": \"{}\",\n", d.rule.id()));
        out.push_str(&format!("      \"slug\": \"{}\",\n", d.rule.slug()));
        out.push_str(&format!(
            "      \"message\": \"{}\",\n",
            json_escape(&d.message)
        ));
        out.push_str("      \"chain\": [");
        for (j, (func, file, line)) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"function\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                json_escape(func),
                json_escape(file),
                line
            ));
        }
        out.push_str("]\n    }");
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Path of `file` relative to the workspace root, with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Path of `file` relative to the crate directory.
fn rel_within(krate: &CrateDir, file: &Path) -> String {
    file.strip_prefix(&krate.dir)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders diagnostics and returns the process exit code (0 = clean).
pub fn report(diags: &[Diagnostic]) -> i32 {
    for d in diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("rectpart-lint: workspace clean (rules L1-L5)");
        0
    } else {
        let rules: BTreeSet<&str> = diags.iter().map(|d| d.rule.id()).collect();
        println!(
            "rectpart-lint: {} violation(s) across {:?}",
            diags.len(),
            rules
        );
        1
    }
}

/// Renders a v2 report in text form and returns the exit code.
pub fn report_v2(report: &WorkspaceReport) -> i32 {
    for d in &report.diagnostics {
        println!("{d}");
    }
    let stats = format!(
        "{} function(s), {} call(s) resolved, {} unresolved, {} baseline-suppressed",
        report.functions, report.resolved_calls, report.unresolved_calls, report.suppressed
    );
    if !report.stale_baseline.is_empty() {
        println!(
            "rectpart-lint: note: {} stale baseline entr(ies) match nothing; \
             run --update-baseline to prune:",
            report.stale_baseline.len()
        );
        for k in &report.stale_baseline {
            println!("  stale: {k}");
        }
    }
    if report.diagnostics.is_empty() {
        println!("rectpart-lint: workspace clean (rules L1-L8); {stats}");
        0
    } else {
        let rules: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.id()).collect();
        println!(
            "rectpart-lint: {} violation(s) across {:?}; {stats}",
            report.diagnostics.len(),
            rules
        );
        1
    }
}
