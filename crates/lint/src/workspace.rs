//! Workspace walker: enumerates every crate (including the root package
//! and the vendored shims), reads its manifest, and runs the rule
//! catalog over each `.rs` file.

use crate::manifest;
use crate::rules::{check_forbid_attr, lint_file, Diagnostic, FileContext};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root this binary was compiled inside (two levels above
/// `crates/lint`).
pub fn default_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    here.ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

/// One crate to lint: its directory, display name, and shim-ness.
struct CrateDir {
    name: String,
    dir: PathBuf,
    is_shim: bool,
    /// Subdirectories to walk, relative to `dir`. `None` walks the whole
    /// crate directory (the usual case); the root package restricts the
    /// walk so it does not descend into `crates/` and `target/`.
    subdirs: Option<&'static [&'static str]>,
}

/// Lints the whole workspace rooted at `root`; diagnostics come back
/// sorted by file and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut crates = Vec::new();
    // Root package (`rectpart`): only its own source trees.
    crates.push(CrateDir {
        name: "rectpart".into(),
        dir: root.to_path_buf(),
        is_shim: false,
        subdirs: Some(&["src", "tests", "examples"]),
    });
    for (parent, is_shim) in [("crates", false), ("shims", true)] {
        let base = root.join(parent);
        let mut entries: Vec<_> = fs::read_dir(&base)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            crates.push(CrateDir {
                name,
                dir,
                is_shim,
                subdirs: None,
            });
        }
    }

    let mut out = Vec::new();
    for krate in &crates {
        let manifest_text = fs::read_to_string(krate.dir.join("Cargo.toml"))?;
        let features = manifest::declared_features(&manifest_text);
        lint_crate(root, krate, &features, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn lint_crate(
    root: &Path,
    krate: &CrateDir,
    features: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) -> io::Result<()> {
    let mut files = Vec::new();
    match krate.subdirs {
        Some(dirs) => {
            for d in dirs {
                let p = krate.dir.join(d);
                if p.is_dir() {
                    collect_rs(&p, &mut files)?;
                }
            }
        }
        None => collect_rs(&krate.dir, &mut files)?,
    }
    files.sort();

    for file in &files {
        let rel = rel_path(root, file);
        // Fixture files intentionally violate the rules; the golden
        // self-test (tests/self_test.rs) lints them in isolation.
        if rel.contains("/fixtures/") {
            continue;
        }
        let source = fs::read_to_string(file)?;
        let ctx = FileContext {
            crate_name: krate.name.clone(),
            rel_path: rel.clone(),
            is_library: rel_within(krate, root, file).starts_with("src/"),
            declared_features: features.clone(),
            is_shim: krate.is_shim,
        };
        out.extend(lint_file(&ctx, &source));
    }

    // Crate-root forbid(unsafe_code) presence (the workspace half of L5).
    let root_file = ["src/lib.rs", "src/main.rs"]
        .iter()
        .map(|p| krate.dir.join(p))
        .find(|p| p.is_file());
    if let Some(root_file) = root_file {
        let source = fs::read_to_string(&root_file)?;
        let ctx = FileContext {
            crate_name: krate.name.clone(),
            rel_path: rel_path(root, &root_file),
            is_library: true,
            declared_features: features.clone(),
            is_shim: krate.is_shim,
        };
        out.extend(check_forbid_attr(&ctx, &source));
    }
    Ok(())
}

/// Path of `file` relative to the workspace root, with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Path of `file` relative to the crate directory.
fn rel_within(krate: &CrateDir, _root: &Path, file: &Path) -> String {
    file.strip_prefix(&krate.dir)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders diagnostics and returns the process exit code (0 = clean).
pub fn report(diags: &[Diagnostic]) -> i32 {
    for d in diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("rectpart-lint: workspace clean (rules L1-L5)");
        0
    } else {
        let rules: BTreeSet<&str> = diags.iter().map(|d| d.rule.id()).collect();
        println!(
            "rectpart-lint: {} violation(s) across {:?}",
            diags.len(),
            rules
        );
        1
    }
}
