//! L8 fixture: nested shard guards, a guard held across a parallel
//! join boundary, and the scoped/waived forms that must stay silent.

pub fn violating_nest(&self, a: &Key, b: &Key) {
    let ga = Self::lock(self.shard(a));
    let gb = Self::lock(self.shard(b));
    drop((ga, gb));
}

pub fn violating_join(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    let _ = rectpart_parallel::map_range(4, |i| i);
    drop(g);
}

pub fn scoped_guard_is_fine(m: &std::sync::Mutex<u32>) {
    {
        let g = m.lock().unwrap_or_else(|e| e.into_inner());
        drop(g);
    }
    let _ = rectpart_parallel::map_range(4, |i| i);
}

pub fn waived_join(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    // lint:allow(lock-discipline) -- fixture: the guard is read-only and
    // the mapped closure never touches the mutex
    let _ = rectpart_parallel::map_range(4, |i| i);
    drop(g);
}
