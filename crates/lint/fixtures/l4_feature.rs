//! L4 fixture: a `cfg` gate naming a feature the manifest never
//! declares — the gated code is silently dead. Must trigger L4 only.

#[cfg(feature = "telemetry")]
pub fn dead_code() {}

#[cfg(all(feature = "obs", feature = "turbo_mode"))]
pub fn half_dead_code() {}

pub fn declared_gate_is_fine() -> bool {
    cfg!(feature = "obs")
}
