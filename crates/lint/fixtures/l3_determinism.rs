//! L3 fixture: wall clocks, unseeded RNG and hash-order iteration.
//! Linted as library code of a non-timing crate; must trigger L3 only.

use std::collections::HashMap;

pub fn clock() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn entropy() -> u64 {
    let rng = rand::thread_rng();
    let _ = rng;
    0
}

pub fn hash_order(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for k in counts.keys() {
        out.push(k.clone());
    }
    out
}

pub fn waived_fold(weights: HashMap<u64, u64>) -> u64 {
    // lint:allow(determinism) -- fixture: order-insensitive sum, waiver must silence the rule
    weights.values().sum()
}
