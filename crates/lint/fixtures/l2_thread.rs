//! L2 fixture: thread spawns outside `crates/parallel`.
//! Linted as library code of a non-parallel crate; must trigger L2 only.

pub fn hits() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}

pub fn also_scoped() {
    std::thread::scope(|s| {
        // lint:allow(thread) -- fixture: a justified waiver must silence the rule
        s.spawn(|| ());
    });
}
