//! L6 fixture: direct panic constructs, a transitive call chain, and
//! the `lint:allow(panic-reach)` escape hatch.

fn leaf(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

pub fn mid(xs: &[u64]) -> u64 {
    leaf(xs, 1)
}

pub fn top(xs: &[u64], d: u64) -> u64 {
    mid(xs) % d
}

pub fn copies(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

pub fn literal_index_is_fine(xs: &[u64]) -> u64 {
    xs[0]
}

pub fn waived(xs: &[u64], i: usize) -> u64 {
    // lint:allow(panic-reach) -- fixture: callers pass i < xs.len()
    xs[i]
}

pub fn sealed_roots_do_not_propagate(xs: &[u64]) -> u64 {
    waived(xs, 0)
}
