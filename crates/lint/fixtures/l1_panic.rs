//! L1 fixture: every panic construct the rule bans, in library code.
//! Linted as library code of a panic-free crate; must trigger L1 only.

pub fn hits(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("boom");
    if a == 0 {
        panic!("zero");
    }
    if b == 0 {
        unreachable!();
    }
    a + b
}

pub fn boundary() {
    let _ = std::panic::catch_unwind(|| 1u32);
}

pub fn waived(v: Option<u32>) -> u32 {
    // lint:allow(panic) -- fixture: a justified waiver must silence the rule
    v.expect("invariant: fixture value present")
}

pub fn waived_boundary() -> Result<u32, Box<dyn std::any::Any + Send>> {
    // lint:allow(panic) -- fixture: a sanctioned unwind boundary must be waivable
    std::panic::catch_unwind(|| 2u32)
}

pub fn strings_and_comments_do_not_fire() -> &'static str {
    // panic! .unwrap() .expect( unreachable! -- comments are stripped
    "panic! .unwrap() .expect( unreachable!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u32).unwrap();
        std::panic::catch_unwind(|| panic!("tests may panic")).ok();
    }
}
