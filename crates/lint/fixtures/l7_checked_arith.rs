//! L7 fixture: unchecked weight-domain arithmetic, plus the checked and
//! waived forms that must stay silent.

pub fn violating(g: &PrefixSum2D) -> u64 {
    let w = g.load(0, 1, 0, 1);
    let bad = w + 1;
    g.load(1, 2, 0, 1) + bad
}

pub fn checked_is_fine(g: &PrefixSum2D) -> Option<u64> {
    let w = g.load(0, 1, 0, 1);
    w.checked_add(g.load(1, 2, 0, 1))
}

pub fn waived(g: &PrefixSum2D) -> u64 {
    let w = g.load(0, 1, 0, 1);
    // lint:allow(checked-arith) -- fixture: bounded by total(), fits u64
    w + 1
}
