//! Clean fixture: deliberately brushes against every rule's pattern
//! space without violating any rule. Must produce zero diagnostics when
//! linted as library code of a panic-free, non-timing crate.

use std::collections::BTreeMap;
use std::collections::HashMap;

/// Mentions of panic!, .unwrap() and std::thread::spawn in a doc
/// comment are not code.
pub fn error_handling(v: Option<u32>) -> Result<u32, String> {
    // Strings may talk about .expect( and Instant::now freely.
    v.ok_or_else(|| "call .unwrap() elsewhere; panic! is banned".to_string())
}

pub fn ordered_iteration(m: &BTreeMap<u64, u64>) -> u64 {
    // BTreeMap iteration order is deterministic; not a hash map.
    m.values().sum()
}

pub fn keyed_lookup(memo: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    // Point lookups on a HashMap are fine; only iteration is flagged.
    memo.get(&k).copied()
}

#[cfg(feature = "obs")]
pub fn declared_feature_gate() {}

pub fn unwrap_or_is_not_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0).saturating_add(1)
}

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    let _ = 'l: loop {
        break 'l 1;
    };
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let t = std::time::Instant::now();
        Some(1u32).unwrap();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
