//! L5 fixture: `unsafe` outside the audited simexec stencil island.
//! Must trigger L5 only.

pub fn hits(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

// lint:allow(unsafe) -- fixture: a justified waiver must silence the rule
pub unsafe fn waived(p: *const u8) -> u8 {
    unsafe { *p } // lint:allow(unsafe) -- fixture: same-line waiver form
}
