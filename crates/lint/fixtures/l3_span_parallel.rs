//! L3 fixture: span guards and clock reads inside the parallel
//! execution layer. Linted as library code of `crates/parallel`; must
//! trigger L3 only — the fork_context/adopt handoff stays silent.

pub fn forks(work: impl Fn() + Send) {
    let _open = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::NicolSolve);
    let held: rectpart_obs::span::SpanGuard = make_guard();
    let t0 = std::time::Instant::now();
    // lint:allow(determinism) -- fixture: a justified waiver must silence the rule
    let _waived = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::DpSweep);
    let ctx = rectpart_obs::span::fork_context();
    let _adopt = rectpart_obs::span::adopt(&ctx);
    work();
    drop((held, t0));
}
