//! Golden self-test for the linter.
//!
//! Two halves:
//!
//! 1. `workspace_is_clean` runs the full workspace walk — this is the
//!    `#[test]` wiring that makes `cargo test` enforce L1–L5 on every
//!    run, not just when the binary is invoked.
//! 2. The fixture tests lint each file under `fixtures/` in isolation
//!    and assert it triggers exactly its own rule (and that the
//!    `lint:allow` escape hatch behaves).

use rectpart_lint::analyze::analyze_files;
use rectpart_lint::workspace::{default_baseline, lint_workspace_v2, render_json, WorkspaceReport};
use rectpart_lint::{default_root, lint_file, lint_workspace, Diagnostic, FileContext, Rule};
use std::collections::BTreeSet;

/// A synthetic context standing in for library code of a crate that is
/// subject to every rule: panic-free (L1), non-parallel (L2),
/// non-timing (L3), with a known feature set (L4) and outside the
/// unsafe allowlist (L5).
fn strict_ctx() -> FileContext {
    FileContext {
        crate_name: "core".into(),
        rel_path: "crates/core/src/fixture.rs".into(),
        is_library: true,
        declared_features: ["default", "obs", "parallel"]
            .into_iter()
            .map(String::from)
            .collect(),
        is_shim: false,
    }
}

/// Asserts every diagnostic is `rule` and the flagged 1-based lines are
/// exactly `lines`.
fn assert_only(diags: &[Diagnostic], rule: Rule, lines: &[usize]) {
    assert!(
        !diags.is_empty(),
        "fixture for {rule:?} produced no diagnostics"
    );
    for d in diags {
        assert_eq!(
            d.rule, rule,
            "fixture for {rule:?} leaked a foreign diagnostic: {d}"
        );
    }
    let got: BTreeSet<usize> = diags.iter().map(|d| d.line).collect();
    let want: BTreeSet<usize> = lines.iter().copied().collect();
    assert_eq!(got, want, "flagged lines diverged for {rule:?}");
}

#[test]
fn workspace_is_clean() {
    let diags = lint_workspace(&default_root()).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_l1_panic() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l1_panic.rs"));
    // unwrap, expect, panic!, unreachable!, catch_unwind — the waived
    // expect, the waived unwind boundary, the string/comment mentions,
    // and the #[cfg(test)] module stay silent.
    assert_only(&diags, Rule::Panic, &[5, 6, 8, 11, 17]);
}

#[test]
fn fixture_l2_thread() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l2_thread.rs"));
    // spawn and scope entry are flagged; the waived `s.spawn(` is not.
    assert_only(&diags, Rule::Thread, &[5, 10]);
}

#[test]
fn fixture_l3_determinism() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l3_determinism.rs"));
    // Instant::now, thread_rng, hash-order `counts.keys()`; the waived
    // order-insensitive fold stays silent.
    assert_only(&diags, Rule::Determinism, &[7, 12, 19]);
}

#[test]
fn fixture_l3_span_parallel() {
    // Same file, two contexts: inside `crates/parallel` the guard API
    // and the (now module-scoped) clock allowance are both violations…
    let ctx = FileContext {
        crate_name: "parallel".into(),
        rel_path: "crates/parallel/src/fixture.rs".into(),
        ..strict_ctx()
    };
    let diags = lint_file(&ctx, include_str!("../fixtures/l3_span_parallel.rs"));
    // span::enter, a held SpanGuard, Instant::now; the waived enter and
    // the fork_context/adopt handoff stay silent.
    assert_only(&diags, Rule::Determinism, &[6, 7, 8]);

    // …while the obs timing modules keep their clock allowance without
    // gaining a span-guard exemption they don't need.
    let obs_ctx = FileContext {
        crate_name: "obs".into(),
        rel_path: "crates/obs/src/span.rs".into(),
        ..strict_ctx()
    };
    let clock_only = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(lint_file(&obs_ctx, clock_only).is_empty());
}

#[test]
fn fixture_l4_feature() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l4_feature.rs"));
    // `telemetry` and `turbo_mode` are undeclared; `obs` is declared.
    assert_only(&diags, Rule::Feature, &[4, 7]);
    assert!(diags[0].message.contains("telemetry"));
    assert!(diags[1].message.contains("turbo_mode"));
}

#[test]
fn fixture_l5_unsafe() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l5_unsafe.rs"));
    // The bare block is flagged; both waiver forms stay silent.
    assert_only(&diags, Rule::Unsafe, &[5]);
}

#[test]
fn fixture_clean_has_no_false_positives() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/clean.rs"));
    assert!(
        diags.is_empty(),
        "clean fixture produced false positives:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Runs the v2 analyzer over a single fixture, standing in for library
/// code of the panic-free `core` crate.
fn analyze_fixture(src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext {
        crate_name: "core".into(),
        rel_path: "crates/core/src/fixture.rs".into(),
        ..strict_ctx()
    };
    analyze_files(&[(ctx, src.to_string())]).diagnostics
}

#[test]
fn fixture_l6_panic_reach() {
    let diags = analyze_fixture(include_str!("../fixtures/l6_panic_reach.rs"));
    // Direct index, transitive call, division + transitive call, copy
    // family; the literal index, the waiver and the sealed root are
    // silent.
    assert_only(&diags, Rule::PanicReach, &[5, 9, 13, 17]);
    let chain = diags
        .iter()
        .find(|d| d.line == 13 && d.message.contains("can reach a panic"))
        .expect("chain diagnostic at the `top` call site");
    assert!(
        chain.message.contains("core::mid -> core::leaf"),
        "{}",
        chain.message
    );
    assert!(
        chain.message.contains("root: slice index `xs[i]`"),
        "{}",
        chain.message
    );
    assert_eq!(chain.chain.len(), 2, "witness chain must carry both hops");
}

#[test]
fn fixture_l7_checked_arith() {
    let diags = analyze_fixture(include_str!("../fixtures/l7_checked_arith.rs"));
    // Tracked ident `w + 1` and the direct-source `g.load(..) + bad`;
    // `checked_add` and the waived sum are silent.
    assert_only(&diags, Rule::CheckedArith, &[6, 7]);
}

#[test]
fn fixture_l8_lock() {
    let diags = analyze_fixture(include_str!("../fixtures/l8_lock.rs"));
    // Second shard guard while the first is live, and a plain mutex
    // guard spanning a fan-out; the scoped and waived joins are silent.
    assert_only(&diags, Rule::LockDiscipline, &[6, 12]);
    assert!(diags.iter().any(|d| d.message.contains("shard")));
    assert!(diags.iter().any(|d| d.message.contains("join boundary")));
}

#[test]
fn workspace_is_clean_v2() {
    let root = default_root();
    let report =
        lint_workspace_v2(&root, Some(&default_baseline(&root))).expect("workspace walk failed");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has L1-L8 violations beyond the baseline:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (regenerate with --update-baseline):\n{}",
        report.stale_baseline.join("\n")
    );
    // The acceptance floor for the symbol table: resolution regressions
    // that silently unresolve the workspace fail here.
    assert!(
        report.functions >= 300,
        "symbol table shrank: {} functions",
        report.functions
    );
    assert!(
        report.resolved_calls >= 300,
        "call resolution regressed: {} resolved",
        report.resolved_calls
    );
}

#[test]
fn json_output_round_trips() {
    // Schema pin (DESIGN.md §15.5): a synthetic report with a chain
    // diagnostic must survive a round trip through rectpart-json.
    let report = WorkspaceReport {
        diagnostics: vec![Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 12,
            rule: Rule::PanicReach,
            message: "call into `core::mid` can reach a panic: core::mid -> \
                      core::leaf; root: slice index `xs[i]` at crates/core/src/x.rs:5"
                .into(),
            chain: vec![
                ("core::mid".into(), "crates/core/src/x.rs".into(), 8),
                ("core::leaf".into(), "crates/core/src/x.rs".into(), 4),
            ],
        }],
        suppressed: 3,
        stale_baseline: vec!["old entry".into()],
        functions: 42,
        resolved_calls: 17,
        unresolved_calls: 5,
    };
    let doc = rectpart_json::parse(&render_json(&report)).expect("emitted JSON must parse");
    assert_eq!(
        doc.field("schema").unwrap().as_str(),
        Some("rectpart-lint/v2")
    );
    let summary = doc.field("summary").unwrap();
    assert_eq!(summary.field("violations").unwrap().as_u64(), Some(1));
    assert_eq!(summary.field("suppressed").unwrap().as_u64(), Some(3));
    assert_eq!(summary.field("stale_baseline").unwrap().as_u64(), Some(1));
    assert_eq!(summary.field("functions").unwrap().as_u64(), Some(42));
    assert_eq!(summary.field("resolved_calls").unwrap().as_u64(), Some(17));
    assert_eq!(summary.field("unresolved_calls").unwrap().as_u64(), Some(5));
    let diags = doc.field("diagnostics").unwrap().as_array().unwrap();
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    assert_eq!(
        d.field("file").unwrap().as_str(),
        Some("crates/core/src/x.rs")
    );
    assert_eq!(d.field("line").unwrap().as_u64(), Some(12));
    assert_eq!(d.field("rule").unwrap().as_str(), Some("L6"));
    assert_eq!(d.field("slug").unwrap().as_str(), Some("panic-reach"));
    assert!(d
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("xs[i]"));
    let chain = d.field("chain").unwrap().as_array().unwrap();
    assert_eq!(chain.len(), 2);
    assert_eq!(
        chain[0].field("function").unwrap().as_str(),
        Some("core::mid")
    );
    assert_eq!(chain[1].field("line").unwrap().as_u64(), Some(4));

    // And the real workspace document (pre-baseline, so messages with
    // backticks and snippets are exercised) must parse too.
    let real = lint_workspace_v2(&default_root(), None).expect("workspace walk failed");
    let doc = rectpart_json::parse(&render_json(&real)).expect("real JSON must parse");
    assert_eq!(
        doc.field("summary")
            .unwrap()
            .field("violations")
            .unwrap()
            .as_usize(),
        Some(real.diagnostics.len())
    );
}

#[test]
fn allow_with_reason_waives() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   v.unwrap() // lint:allow(panic) -- test: justified waiver\n\
               }\n";
    assert!(lint_file(&strict_ctx(), src).is_empty());
}

#[test]
fn allow_without_reason_is_a_violation() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   v.unwrap() // lint:allow(panic)\n\
               }\n";
    let diags = lint_file(&strict_ctx(), src);
    // The panic itself is waived, but the bare marker is flagged.
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::AllowSyntax);
}

#[test]
fn allow_unknown_rule_is_a_violation() {
    let src = "// lint:allow(everything) -- nice try\npub fn f() {}\n";
    let diags = lint_file(&strict_ctx(), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::AllowSyntax);
}

#[test]
fn allow_above_multiline_statement_waives() {
    // rustfmt pushes chained calls below the comment; the waiver must
    // still attach through continuation lines.
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   // lint:allow(panic) -- test: invariant documented here\n\
               \x20   v\n\
               \x20       .map(|x| x + 1)\n\
               \x20       .expect(\"invariant\")\n\
               }\n";
    assert!(lint_file(&strict_ctx(), src).is_empty());
}

#[test]
fn forbid_attr_is_required_outside_simexec() {
    use rectpart_lint::rules::check_forbid_attr;
    let mut ctx = strict_ctx();
    ctx.rel_path = "crates/core/src/lib.rs".into();
    assert!(check_forbid_attr(&ctx, "//! docs\npub fn f() {}\n").is_some());
    assert!(check_forbid_attr(&ctx, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_none());
    ctx.crate_name = "simexec".into();
    assert!(check_forbid_attr(&ctx, "//! docs\npub fn f() {}\n").is_none());
}
