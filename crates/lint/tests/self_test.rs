//! Golden self-test for the linter.
//!
//! Two halves:
//!
//! 1. `workspace_is_clean` runs the full workspace walk — this is the
//!    `#[test]` wiring that makes `cargo test` enforce L1–L5 on every
//!    run, not just when the binary is invoked.
//! 2. The fixture tests lint each file under `fixtures/` in isolation
//!    and assert it triggers exactly its own rule (and that the
//!    `lint:allow` escape hatch behaves).

use rectpart_lint::{default_root, lint_file, lint_workspace, Diagnostic, FileContext, Rule};
use std::collections::BTreeSet;

/// A synthetic context standing in for library code of a crate that is
/// subject to every rule: panic-free (L1), non-parallel (L2),
/// non-timing (L3), with a known feature set (L4) and outside the
/// unsafe allowlist (L5).
fn strict_ctx() -> FileContext {
    FileContext {
        crate_name: "core".into(),
        rel_path: "crates/core/src/fixture.rs".into(),
        is_library: true,
        declared_features: ["default", "obs", "parallel"]
            .into_iter()
            .map(String::from)
            .collect(),
        is_shim: false,
    }
}

/// Asserts every diagnostic is `rule` and the flagged 1-based lines are
/// exactly `lines`.
fn assert_only(diags: &[Diagnostic], rule: Rule, lines: &[usize]) {
    assert!(
        !diags.is_empty(),
        "fixture for {rule:?} produced no diagnostics"
    );
    for d in diags {
        assert_eq!(
            d.rule, rule,
            "fixture for {rule:?} leaked a foreign diagnostic: {d}"
        );
    }
    let got: BTreeSet<usize> = diags.iter().map(|d| d.line).collect();
    let want: BTreeSet<usize> = lines.iter().copied().collect();
    assert_eq!(got, want, "flagged lines diverged for {rule:?}");
}

#[test]
fn workspace_is_clean() {
    let diags = lint_workspace(&default_root()).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_l1_panic() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l1_panic.rs"));
    // unwrap, expect, panic!, unreachable!, catch_unwind — the waived
    // expect, the waived unwind boundary, the string/comment mentions,
    // and the #[cfg(test)] module stay silent.
    assert_only(&diags, Rule::Panic, &[5, 6, 8, 11, 17]);
}

#[test]
fn fixture_l2_thread() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l2_thread.rs"));
    // spawn and scope entry are flagged; the waived `s.spawn(` is not.
    assert_only(&diags, Rule::Thread, &[5, 10]);
}

#[test]
fn fixture_l3_determinism() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l3_determinism.rs"));
    // Instant::now, thread_rng, hash-order `counts.keys()`; the waived
    // order-insensitive fold stays silent.
    assert_only(&diags, Rule::Determinism, &[7, 12, 19]);
}

#[test]
fn fixture_l3_span_parallel() {
    // Same file, two contexts: inside `crates/parallel` the guard API
    // and the (now module-scoped) clock allowance are both violations…
    let ctx = FileContext {
        crate_name: "parallel".into(),
        rel_path: "crates/parallel/src/fixture.rs".into(),
        ..strict_ctx()
    };
    let diags = lint_file(&ctx, include_str!("../fixtures/l3_span_parallel.rs"));
    // span::enter, a held SpanGuard, Instant::now; the waived enter and
    // the fork_context/adopt handoff stay silent.
    assert_only(&diags, Rule::Determinism, &[6, 7, 8]);

    // …while the obs timing modules keep their clock allowance without
    // gaining a span-guard exemption they don't need.
    let obs_ctx = FileContext {
        crate_name: "obs".into(),
        rel_path: "crates/obs/src/span.rs".into(),
        ..strict_ctx()
    };
    let clock_only = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(lint_file(&obs_ctx, clock_only).is_empty());
}

#[test]
fn fixture_l4_feature() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l4_feature.rs"));
    // `telemetry` and `turbo_mode` are undeclared; `obs` is declared.
    assert_only(&diags, Rule::Feature, &[4, 7]);
    assert!(diags[0].message.contains("telemetry"));
    assert!(diags[1].message.contains("turbo_mode"));
}

#[test]
fn fixture_l5_unsafe() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/l5_unsafe.rs"));
    // The bare block is flagged; both waiver forms stay silent.
    assert_only(&diags, Rule::Unsafe, &[5]);
}

#[test]
fn fixture_clean_has_no_false_positives() {
    let diags = lint_file(&strict_ctx(), include_str!("../fixtures/clean.rs"));
    assert!(
        diags.is_empty(),
        "clean fixture produced false positives:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allow_with_reason_waives() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   v.unwrap() // lint:allow(panic) -- test: justified waiver\n\
               }\n";
    assert!(lint_file(&strict_ctx(), src).is_empty());
}

#[test]
fn allow_without_reason_is_a_violation() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   v.unwrap() // lint:allow(panic)\n\
               }\n";
    let diags = lint_file(&strict_ctx(), src);
    // The panic itself is waived, but the bare marker is flagged.
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::AllowSyntax);
}

#[test]
fn allow_unknown_rule_is_a_violation() {
    let src = "// lint:allow(everything) -- nice try\npub fn f() {}\n";
    let diags = lint_file(&strict_ctx(), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::AllowSyntax);
}

#[test]
fn allow_above_multiline_statement_waives() {
    // rustfmt pushes chained calls below the comment; the waiver must
    // still attach through continuation lines.
    let src = "pub fn f(v: Option<u32>) -> u32 {\n\
               \x20   // lint:allow(panic) -- test: invariant documented here\n\
               \x20   v\n\
               \x20       .map(|x| x + 1)\n\
               \x20       .expect(\"invariant\")\n\
               }\n";
    assert!(lint_file(&strict_ctx(), src).is_empty());
}

#[test]
fn forbid_attr_is_required_outside_simexec() {
    use rectpart_lint::rules::check_forbid_attr;
    let mut ctx = strict_ctx();
    ctx.rel_path = "crates/core/src/lib.rs".into();
    assert!(check_forbid_attr(&ctx, "//! docs\npub fn f() {}\n").is_some());
    assert!(check_forbid_attr(&ctx, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_none());
    ctx.crate_name = "simexec".into();
    assert!(check_forbid_attr(&ctx, "//! docs\npub fn f() {}\n").is_none());
}
