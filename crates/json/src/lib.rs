#![forbid(unsafe_code)]
//! Dependency-free JSON support for the rectpart workspace.
//!
//! This replaces `serde`/`serde_json` (unavailable in the offline build
//! environment, see `shims/README.md`) with an explicit value model:
//! types implement [`ToJson`]/[`FromJson`] by building or destructuring
//! a [`Json`] tree. The surface is deliberately small — pretty printing
//! compatible with the files the workspace already writes, and a strict
//! recursive-descent parser for the files it reads back.

use std::fmt;

/// A JSON document. Object keys keep insertion order (no hashing), so
/// output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integers; kept exact up to `u64::MAX`.
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but returns a decode error naming the key.
    pub fn field(&self, key: &str) -> Result<&Json, Error> {
        self.get(key)
            .ok_or_else(|| Error::decode(format!("missing field `{key}`")))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation (the `serde_json` pretty
    /// layout the repo's output files already use).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a decimal point so the value parses back as Float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse or decode failure, with a byte offset for parse errors.
#[derive(Clone, Debug)]
pub struct Error {
    pub message: String,
    pub offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }

    pub fn decode(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "JSON parse error at byte {off}: {}", self.message),
            None => write!(f, "JSON decode error: {}", self.message),
        }
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        // lint:allow(panic-reach) -- parser invariant: pos only advances by
        // the length of consumed input, so pos <= bytes.len() throughout
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::parse("bad \\u escape", start))?;
                            // Surrogate pairs are not needed for the
                            // ASCII identifiers this workspace writes.
                            s.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| Error::parse("bad \\u escape", start))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    // lint:allow(panic-reach) -- peek() returned a byte, so
                    // pos < bytes.len() and the range start is in bounds
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("invalid UTF-8", start))?;
                    // `peek()` returned a byte, so `rest` is non-empty;
                    // an (unreachable) empty tail is a truncated string.
                    let Some(ch) = rest.chars().next() else {
                        return Err(Error::parse("unterminated string", start));
                    };
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // lint:allow(panic-reach) -- start was an earlier value of pos and
        // pos only moves forward, bounded by bytes.len()
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(value)
}

/// Serialization to a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] tree.
pub trait FromJson: Sized {
    fn from_json(json: &Json) -> Result<Self, Error>;
}

/// `serde_json::to_string_pretty` replacement (infallible).
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// `serde_json::from_str` replacement.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, Error> {
    T::from_json(&parse(input)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_uint_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, Error> {
                json.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::decode(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_uint_json!(u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_f64()
            .ok_or_else(|| Error::decode("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::decode("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, Error> {
        json.as_array()
            .ok_or_else(|| Error::decode("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, Error> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj(vec![
            ("name", Json::Str("jag-m".into())),
            ("m", Json::UInt(1000)),
            ("imbalance", Json::Float(0.125)),
            ("neg", Json::Int(-3)),
            (
                "rects",
                Json::Arr(vec![Json::obj(vec![
                    ("r0", Json::UInt(0)),
                    ("r1", Json::UInt(512)),
                ])]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn float_formatting_roundtrips() {
        for f in [0.0, 1.0, -2.5, 0.1, 1e-9, 123456.789, 1e18] {
            let mut s = String::new();
            write_f64(&mut s, f);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = parse(r#"{"k\n\t\"": "α β A"}"#).unwrap();
        assert_eq!(j.get("k\n\t\"").unwrap().as_str(), Some("α β A"));
        let text = j.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), j);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn vec_and_option_helpers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let j = v.to_json();
        assert_eq!(Vec::<u64>::from_json(&j).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(o.to_json(), Json::Null);
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_json(&Json::Float(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn numbers_preserve_integer_exactness() {
        let big = u64::MAX;
        let j = parse(&big.to_string()).unwrap();
        assert_eq!(j.as_u64(), Some(big));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
    }
}
