#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! 2D rectangle partitioning of spatially located computations.
//!
//! Core algorithms of the IPDPS 2011 paper *Partitioning Spatially
//! Located Computations using Rectangles* (Saule, Baş, Çatalyürek): given
//! an `n1 × n2` load matrix and `m` processors, produce `m` axis-aligned
//! rectangles tiling the matrix while minimizing the load of the most
//! loaded rectangle.
//!
//! # Solution classes (paper §3, figure 1)
//!
//! | Class | Heuristic | Optimal |
//! |-------|-----------|---------|
//! | rectilinear (P×Q grid) | [`RectUniform`], [`RectNicol`] | NP-hard |
//! | P×Q-way jagged | [`JagPqHeur`] | [`JagPqOpt`] |
//! | m-way jagged *(new)* | [`JagMHeur`] | [`JagMOpt`] |
//! | hierarchical | [`HierRb`], [`HierRelaxed`] | [`hier_opt`] |
//! | arbitrary | — | [`exhaustive_opt`] (tiny oracles only) |
//!
//! Every algorithm implements [`Partitioner`] and works on a
//! [`PrefixSum2D`] (the paper's Γ array), which answers rectangle-load
//! queries in O(1).
//!
//! ```
//! use rectpart_core::{JagMHeur, LoadMatrix, Partitioner, PrefixSum2D};
//!
//! let matrix = LoadMatrix::from_fn(64, 64, |r, c| 1 + ((r + c) % 7) as u32);
//! let pfx = PrefixSum2D::new(&matrix);
//! let part = JagMHeur::best().partition(&pfx, 25);
//! assert!(part.validate(&pfx).is_ok());
//! assert!(part.lmax(&pfx) >= pfx.lower_bound(25));
//! ```

pub mod bounds;
pub mod cache;
mod cancel;
mod error;
mod exhaustive;
mod geometry;
mod hier_opt;
mod hierarchical;
mod index;
mod jagged;
mod jagged_opt;
#[cfg(feature = "json")]
mod json_io;
mod matrix;
mod multilevel;
mod prefix;
mod rectilinear;
mod registry;
mod solution;
mod sparse;
mod spiral;
mod stats;
mod traits;

pub use cache::{ShardedMemo, StripeCache, StripeKey};
pub use cancel::Checker;
pub use error::RectpartError;
pub use exhaustive::exhaustive_opt;
pub use geometry::{Axis, Rect};
pub use hier_opt::{hier_opt, hier_opt_value};
pub use hierarchical::{HierRb, HierRelaxed, HierVariant};
pub use index::{JaggedIndex, OwnerGrid, RectTreeIndex};
pub use jagged::{allocate_processors, JagMHeur, JagPqHeur, JaggedVariant, StripeCount};
pub use jagged_opt::{jag_m_opt_dp, JagMOpt, JagPqOpt};
pub use matrix::LoadMatrix;
pub use multilevel::Multilevel;
pub use prefix::{
    GammaBackend, GammaMode, PrefixSum2D, RowExtrema, RowUpdate, View, SPARSE_ZERO_FRACTION_PERCENT,
};
pub use rectilinear::{RectNicol, RectUniform};
/// Thread-budget configuration for the parallel execution layer,
/// re-exported so downstream users need not depend on
/// `rectpart-parallel` directly.
pub use rectpart_parallel::ParallelismConfig;
pub use registry::{algorithm_by_name, algorithm_names};
pub use solution::{Partition, PartitionError, Summary};
pub use sparse::SparsePrefixSum;
pub use spiral::{spiral_opt_value, Side, SpiralRelaxed};
pub use stats::PartitionStats;
pub use traits::Partitioner;

/// All heuristic algorithms compared in the paper's figures 12–14, in the
/// paper's order, with the configurations §4 selects (the `-LOAD`
/// hierarchical variants and `-BEST` jagged variants).
pub fn standard_heuristics() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(RectUniform::default()),
        Box::new(RectNicol::default()),
        Box::new(JagPqHeur::best()),
        Box::new(JagMHeur::best()),
        Box::new(HierRb::load()),
        Box::new(HierRelaxed::load()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_heuristics_roster() {
        let names: Vec<String> = standard_heuristics().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "RECT-UNIFORM",
                "RECT-NICOL",
                "JAG-PQ-HEUR-BEST",
                "JAG-M-HEUR-BEST",
                "HIER-RB-LOAD",
                "HIER-RELAXED-LOAD",
            ]
        );
    }

    #[test]
    fn all_standard_heuristics_partition_validly() {
        let matrix = LoadMatrix::from_fn(30, 40, |r, c| ((r * c) % 17) as u32 + 1);
        let pfx = PrefixSum2D::new(&matrix);
        for algo in standard_heuristics() {
            for m in [1, 4, 9, 10, 25] {
                let p = algo.partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "{} m={m}", algo.name());
                assert!(p.lmax(&pfx) >= pfx.lower_bound(m), "{} m={m}", algo.name());
            }
        }
    }
}
