//! Partition representation, validation and quality metrics.

use std::fmt;

use crate::geometry::Rect;
use crate::prefix::PrefixSum2D;

/// Why a candidate partition is not a valid solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A rectangle sticks out of the matrix.
    OutOfBounds {
        /// Offending processor index.
        index: usize,
        /// The out-of-bounds rectangle.
        rect: Rect,
    },
    /// Two rectangles share at least one cell.
    Overlap {
        /// First offending processor index.
        a: usize,
        /// Second offending processor index.
        b: usize,
    },
    /// The rectangles do not cover every cell (checked as Σ area ≠ total
    /// area, which together with pairwise disjointness is equivalent).
    Uncovered {
        /// Cells covered by the rectangles.
        covered: usize,
        /// Cells of the matrix.
        expected: usize,
    },
    /// More rectangles than processors.
    TooManyParts {
        /// Rectangles supplied.
        parts: usize,
        /// Processor budget.
        m: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::OutOfBounds { index, rect } => {
                write!(f, "rectangle {index} out of bounds: {rect:?}")
            }
            PartitionError::Overlap { a, b } => write!(f, "rectangles {a} and {b} overlap"),
            PartitionError::Uncovered { covered, expected } => {
                write!(f, "only {covered} of {expected} cells covered")
            }
            PartitionError::TooManyParts { parts, m } => {
                write!(f, "{parts} rectangles for {m} processors")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Headline quality numbers of a partition, as returned by
/// [`Partition::summary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Load of the most loaded processor.
    pub lmax: u64,
    /// Perfect-balance average load `total / m`.
    pub lavg: f64,
    /// The paper's quality metric `Lmax / Lavg − 1` (0 = perfect).
    pub imbalance: f64,
    /// Number of non-empty rectangles.
    pub rect_count: usize,
}

/// A rectangle-per-processor partition of the load matrix.
///
/// Holds exactly `m` rectangles; idle processors hold [`Rect::EMPTY`].
/// Validity (§2.1 of the paper: `⋂ r = ∅` and `⋃ r = A`) is checked by
/// [`Partition::validate`] with the same O(m²) pairwise test the paper
/// describes, plus the area-sum coverage test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    rects: Vec<Rect>,
}

impl Partition {
    /// Wraps rectangles into a partition of `m = rects.len()` parts.
    pub fn new(rects: Vec<Rect>) -> Self {
        assert!(!rects.is_empty(), "a partition needs at least one part");
        Self { rects }
    }

    /// Wraps rectangles, padding with [`Rect::EMPTY`] up to `m` parts.
    ///
    /// # Panics
    ///
    /// Panics if there are more rectangles than processors.
    pub fn with_parts(mut rects: Vec<Rect>, m: usize) -> Self {
        assert!(
            rects.len() <= m,
            "{} rectangles exceed {m} processors",
            rects.len()
        );
        rects.resize(m, Rect::EMPTY);
        Self { rects }
    }

    /// Number of processors (rectangles, including empty ones).
    pub fn parts(&self) -> usize {
        self.rects.len()
    }

    /// The rectangles, one per processor.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of non-empty rectangles.
    pub fn active_parts(&self) -> usize {
        self.rects.iter().filter(|r| !r.is_empty()).count()
    }

    /// Per-processor loads.
    pub fn loads(&self, pfx: &PrefixSum2D) -> Vec<u64> {
        self.rects.iter().map(|r| pfx.load(r)).collect()
    }

    /// Load of the most loaded processor.
    pub fn lmax(&self, pfx: &PrefixSum2D) -> u64 {
        self.rects.iter().map(|r| pfx.load(r)).max().unwrap_or(0)
    }

    /// The paper's quality metric: `Lmax / Lavg − 1` (0 = perfect balance).
    pub fn load_imbalance(&self, pfx: &PrefixSum2D) -> f64 {
        let lavg = pfx.average_load(self.parts());
        if lavg == 0.0 {
            return 0.0;
        }
        self.lmax(pfx) as f64 / lavg - 1.0
    }

    /// The headline quality numbers in one struct — what the CLI prints
    /// and the stats JSON embeds.
    pub fn summary(&self, pfx: &PrefixSum2D) -> Summary {
        Summary {
            lmax: self.lmax(pfx),
            lavg: pfx.average_load(self.parts()),
            imbalance: self.load_imbalance(pfx),
            rect_count: self.active_parts(),
        }
    }

    /// Checks that the rectangles tile the matrix exactly (§2.1).
    pub fn validate(&self, pfx: &PrefixSum2D) -> Result<(), PartitionError> {
        self.validate_dims(pfx.rows(), pfx.cols())
    }

    /// [`Partition::validate`] against explicit matrix dimensions.
    pub fn validate_dims(&self, rows: usize, cols: usize) -> Result<(), PartitionError> {
        let mut covered = 0usize;
        for (i, r) in self.rects.iter().enumerate() {
            if r.is_empty() {
                continue;
            }
            if r.r1 > rows || r.c1 > cols {
                return Err(PartitionError::OutOfBounds { index: i, rect: *r });
            }
            covered += r.area();
        }
        for i in 0..self.rects.len() {
            for j in i + 1..self.rects.len() {
                if self.rects[i].intersects(&self.rects[j]) {
                    return Err(PartitionError::Overlap { a: i, b: j });
                }
            }
        }
        let expected = rows * cols;
        if covered != expected {
            return Err(PartitionError::Uncovered { covered, expected });
        }
        Ok(())
    }

    /// Owner of every cell as a row-major map (`u32::MAX` marks cells not
    /// covered by any rectangle — never present in a valid partition).
    /// Used by the execution simulator for migration accounting.
    pub fn owner_map(&self, rows: usize, cols: usize) -> Vec<u32> {
        let mut owners = vec![u32::MAX; rows * cols];
        for (i, r) in self.rects.iter().enumerate() {
            for row in r.r0..r.r1 {
                let base = row * cols;
                for col in r.c0..r.c1 {
                    owners[base + col] = i as u32;
                }
            }
        }
        owners
    }

    /// Which processor owns cell `(r, c)`; linear scan over rectangles.
    pub fn owner_of(&self, r: usize, c: usize) -> Option<usize> {
        self.rects.iter().position(|rect| rect.contains(r, c))
    }

    /// Renders the partition as ASCII art with one letter per processor
    /// (one character per cell), for the structure-gallery experiment and
    /// the examples.
    pub fn ascii_art(&self, rows: usize, cols: usize) -> String {
        self.ascii_art_scaled(rows, cols, rows, cols)
    }

    /// [`Partition::ascii_art`] downsampled to `out_rows × out_cols`
    /// characters (each character shows the owner of the sampled cell).
    pub fn ascii_art_scaled(
        &self,
        rows: usize,
        cols: usize,
        out_rows: usize,
        out_cols: usize,
    ) -> String {
        let owners = self.owner_map(rows, cols);
        let mut s = String::with_capacity(out_rows * (out_cols + 1));
        for orow in 0..out_rows {
            let r = orow * rows / out_rows;
            for ocol in 0..out_cols {
                let c = ocol * cols / out_cols;
                let o = owners[r * cols + c];
                let ch = if o == u32::MAX {
                    '?'
                } else {
                    char::from(b'A' + (o % 26) as u8)
                };
                s.push(ch);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LoadMatrix;

    #[test]
    fn summary_agrees_with_individual_metrics() {
        let m = LoadMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as u32);
        let p = PrefixSum2D::new(&m);
        let part = Partition::with_parts(vec![Rect::new(0, 2, 0, 4), Rect::new(2, 4, 0, 4)], 3);
        let s = part.summary(&p);
        assert_eq!(s.lmax, part.lmax(&p));
        assert_eq!(s.lavg, p.average_load(3));
        assert_eq!(s.imbalance, part.load_imbalance(&p));
        assert_eq!(s.rect_count, 2);
    }

    fn pfx(rows: usize, cols: usize) -> PrefixSum2D {
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |r, c| (r + c) as u32 + 1))
    }

    #[test]
    fn valid_quadrant_partition() {
        let p = Partition::new(vec![
            Rect::new(0, 2, 0, 2),
            Rect::new(0, 2, 2, 4),
            Rect::new(2, 4, 0, 2),
            Rect::new(2, 4, 2, 4),
        ]);
        let g = pfx(4, 4);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.parts(), 4);
        assert_eq!(p.active_parts(), 4);
        let loads = p.loads(&g);
        assert_eq!(loads.iter().sum::<u64>(), g.total());
        assert_eq!(p.lmax(&g), *loads.iter().max().unwrap());
    }

    #[test]
    fn detects_overlap() {
        let p = Partition::new(vec![Rect::new(0, 3, 0, 3), Rect::new(2, 4, 2, 4)]);
        assert_eq!(
            p.validate_dims(4, 4),
            Err(PartitionError::Overlap { a: 0, b: 1 })
        );
    }

    #[test]
    fn detects_uncovered() {
        let p = Partition::new(vec![Rect::new(0, 4, 0, 3)]);
        assert_eq!(
            p.validate_dims(4, 4),
            Err(PartitionError::Uncovered {
                covered: 12,
                expected: 16
            })
        );
    }

    #[test]
    fn detects_out_of_bounds() {
        let p = Partition::new(vec![Rect::new(0, 5, 0, 4)]);
        assert!(matches!(
            p.validate_dims(4, 4),
            Err(PartitionError::OutOfBounds { index: 0, .. })
        ));
    }

    #[test]
    fn empty_rects_are_ignored_by_validation() {
        let p = Partition::with_parts(vec![Rect::new(0, 4, 0, 4)], 3);
        assert!(p.validate_dims(4, 4).is_ok());
        assert_eq!(p.parts(), 3);
        assert_eq!(p.active_parts(), 1);
    }

    #[test]
    fn imbalance_of_perfect_split() {
        let m = LoadMatrix::from_vec(2, 2, vec![5, 5, 5, 5]);
        let g = PrefixSum2D::new(&m);
        let p = Partition::new(vec![Rect::new(0, 1, 0, 2), Rect::new(1, 2, 0, 2)]);
        assert!(p.load_imbalance(&g).abs() < 1e-12);
        let q = Partition::new(vec![Rect::new(0, 2, 0, 1), Rect::new(0, 2, 1, 2)]);
        assert!(q.load_imbalance(&g).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_split() {
        let m = LoadMatrix::from_vec(1, 4, vec![9, 1, 1, 1]);
        let g = PrefixSum2D::new(&m);
        let p = Partition::new(vec![Rect::new(0, 1, 0, 1), Rect::new(0, 1, 1, 4)]);
        // Lmax = 9, Lavg = 6 -> imbalance 0.5
        assert!((p.load_imbalance(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn owner_map_and_lookup() {
        let p = Partition::new(vec![Rect::new(0, 1, 0, 2), Rect::new(1, 2, 0, 2)]);
        let owners = p.owner_map(2, 2);
        assert_eq!(owners, vec![0, 0, 1, 1]);
        assert_eq!(p.owner_of(0, 1), Some(0));
        assert_eq!(p.owner_of(1, 0), Some(1));
    }

    #[test]
    fn ascii_art_labels_processors() {
        let p = Partition::new(vec![Rect::new(0, 1, 0, 2), Rect::new(1, 2, 0, 2)]);
        assert_eq!(p.ascii_art(2, 2), "AA\nBB\n");
    }
}
