//! The common partitioner interface.

use crate::error::RectpartError;
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;

/// A 2D rectangle-partitioning algorithm.
///
/// Implementations are small configuration structs (variant, stripe
/// count, …); `partition` is deterministic and side-effect free, so one
/// configured instance can be shared across threads by reference.
pub trait Partitioner: Sync {
    /// Human-readable algorithm name including the variant, matching the
    /// names used in the paper's figures (e.g. `"JAG-M-HEUR-BEST"`).
    fn name(&self) -> String;

    /// Partitions the matrix behind `pfx` into `m` rectangles.
    ///
    /// The result is always a valid partition (tiling) of the matrix;
    /// every implementation upholds this for any `m ≥ 1`, padding with
    /// empty rectangles when fewer than `m` are needed.
    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition;

    /// Cancellation-aware twin of [`partition`](Partitioner::partition).
    ///
    /// Algorithms with serial checkpoint loops override this to poll the
    /// process-wide work-unit deadline ([`rectpart_obs::cancel`]) via
    /// [`crate::Checker`] and return
    /// [`RectpartError::Cancelled`] mid-solve instead of running to
    /// completion. The default simply runs the infallible path — correct
    /// for algorithms whose whole solve is one uninterruptible quantum.
    ///
    /// A cancelled solve discards all partial work; callers (the solver
    /// driver) restart the rung from scratch on resume, which is what
    /// keeps resumed runs bit-identical to uninterrupted ones.
    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        Ok(self.partition(pfx, m))
    }
}

impl<T: Partitioner + ?Sized> Partitioner for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        (**self).partition(pfx, m)
    }
    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        (**self).try_partition(pfx, m)
    }
}

impl Partitioner for Box<dyn Partitioner> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        (**self).partition(pfx, m)
    }
    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        (**self).try_partition(pfx, m)
    }
}

/// Integer square root (floor); used for the default `√m` stripe counts.
pub(crate) fn isqrt(m: usize) -> usize {
    if m == 0 {
        return 0;
    }
    let mut x = (m as f64).sqrt() as usize;
    while (x + 1) * (x + 1) <= m {
        x += 1;
    }
    while x * x > m {
        x -= 1;
    }
    x
}

/// The default `P × Q` grid for a given processor count: the
/// factorization of `m` whose stripe count is closest to `√m` (exactly
/// `√m × √m` for the paper's square processor counts).
pub(crate) fn grid_dims(m: usize) -> (usize, usize) {
    assert!(m >= 1);
    let mut p = isqrt(m);
    while !m.is_multiple_of(p) {
        p -= 1;
    }
    // lint:allow(panic-reach) -- p starts at isqrt(m) >= 1 and the loop
    // stops at p = 1 at the latest (1 divides everything), so p != 0
    (p, m / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(17), 4);
        assert_eq!(isqrt(10_000), 100);
        assert_eq!(isqrt(9_999), 99);
    }

    #[test]
    fn grid_dims_prefers_square() {
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(100), (10, 10));
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(7), (1, 7)); // prime
        assert_eq!(grid_dims(1), (1, 1));
    }
}
