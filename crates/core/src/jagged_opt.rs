//! Optimal jagged partitioners (§3.2.1–3.2.2): `JAG-PQ-OPT` and
//! `JAG-M-OPT`.
//!
//! * `JAG-PQ-OPT` observes (with the paper) that an optimal P×Q-way jagged
//!   partition is an optimal 1D partition of the main dimension whose
//!   interval "load" is the *optimal 1D bottleneck of the stripe* along
//!   the auxiliary dimension. That stripe cost is monotone, so Nicol's
//!   algorithm applies directly; stripe solutions are memoized in a
//!   shared, thread-safe [`StripeCache`] that serves both orientations of
//!   a `-BEST` run (which execute concurrently) and the final parallel
//!   per-stripe reconstruction.
//! * `JAG-M-OPT` solves the paper's dynamic program. The production
//!   implementation is a parametric search: binary search on the answer
//!   `B` with an exact feasibility test (`min #processors to realise a
//!   jagged partition with bottleneck ≤ B`, computed by a 1D DP over
//!   stripe boundaries with greedy per-stripe probe counting). This
//!   realizes the paper's §3.2.2 speed-ups (lazy evaluation, bound
//!   pruning, branch-and-bound seeded by the `JAG-M-HEUR` incumbent) in a
//!   provably exact form. The literal DP formulation of the paper is also
//!   provided ([`jag_m_opt_dp`]) and the test-suite checks both agree.

use std::cell::RefCell;
use std::collections::HashMap;

use rectpart_onedim::{
    nicol, nicol_bottleneck, nicol_in_seeded, FnCost, IntervalCost, SolveScratch,
};

use crate::cache::StripeCache;
use crate::cancel::Checker;
use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::jagged::{jag_m_heur_view, try_jag_m_heur_view, JaggedVariant};
use crate::prefix::{PrefixSum2D, View};
use crate::solution::Partition;
use crate::traits::{grid_dims, isqrt, Partitioner};

/// `JAG-PQ-OPT` — optimal P×Q-way jagged partition (Manne–Sørevik /
/// Pınar–Aykanat). Exponentially slower than the heuristic but still
/// polynomial; the paper measures ~27 s at `m = 10 000` on a 512² matrix.
#[derive(Clone, Debug, Default)]
pub struct JagPqOpt {
    /// Orientation policy.
    pub variant: JaggedVariant,
    /// Explicit `(P, Q)`; defaults to the near-square factorization of `m`.
    pub grid: Option<(usize, usize)>,
}

impl Partitioner for JagPqOpt {
    fn name(&self) -> String {
        format!("JAG-PQ-OPT-{}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");
        // One cache for the whole call: the `-BEST` orientation pair runs
        // concurrently against it (entries are axis-keyed) and every
        // stripe solution survives across all of Nicol's probes.
        let cache = StripeCache::new();
        self.variant.run(pfx, |view| {
            let rects = jag_pq_opt_view(&view, p, q, &cache);
            Partition::with_parts(rects, m)
        })
    }
}

impl JagPqOpt {
    /// Resident-engine entry: **bit-identical** to
    /// [`partition`](Partitioner::partition), but the stripe memo is
    /// caller-owned — a long-lived engine keeps it warm across queries
    /// on an unchanged matrix — and the previous solve's partition can
    /// seed the main-dimension Nicol incumbent
    /// ([`nicol_in_seeded`]'s contract: the seed derived from `prior`
    /// is the bottleneck of an achievable tiling, so the optimum is
    /// unchanged and only search steps are saved).
    pub fn partition_warm(
        &self,
        pfx: &PrefixSum2D,
        m: usize,
        cache: &StripeCache,
        prior: Option<&Partition>,
    ) -> Partition {
        assert!(m >= 1);
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");
        self.variant.run(pfx, |view| {
            let rects = jag_pq_opt_view_warm(&view, p, q, cache, prior);
            Partition::with_parts(rects, m)
        })
    }
}

/// One-orientation `JAG-PQ-OPT` returning raw rectangles.
fn jag_pq_opt_view(view: &View<'_>, p: usize, q: usize, cache: &StripeCache) -> Vec<Rect> {
    jag_pq_opt_view_warm(view, p, q, cache, None)
}

/// [`jag_pq_opt_view`] with optional warm-start from a previous
/// partition of the same instance family.
fn jag_pq_opt_view_warm(
    view: &View<'_>,
    p: usize,
    q: usize,
    cache: &StripeCache,
    prior: Option<&Partition>,
) -> Vec<Rect> {
    let n_main = view.n_main();
    let n_aux = view.n_aux();
    let axis = view.axis();
    // Memoized optimal stripe bottleneck S(a, b) = opt 1D split of rows
    // [a, b) into q parts along the auxiliary dimension. The closure
    // chain under `nicol` below is single-threaded per orientation, so
    // one scratch arena serves every cache miss without reallocating
    // (a Mutex only because `FnCost` closures must be `Sync`; it is
    // never contended).
    let scratch = std::sync::Mutex::new(SolveScratch::new());
    let stripe_cost = FnCost::new(n_main, |a, b| {
        if a == b {
            return 0;
        }
        cache.bottleneck(axis, a, b, q, || {
            let aux = FnCost::additive(n_aux, |c, d| view.load(a, b, c, d));
            let mut scratch = scratch
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            nicol_bottleneck(&aux, q, &mut scratch)
        })
    });
    // Warm-start: the previous solve's main-dimension cut set, re-priced
    // under the current stripe costs, is an achievable bottleneck — a
    // valid Nicol incumbent that cannot change the optimum.
    let seed = prior.and_then(|prev| warm_main_seed(view, prev, p, &stripe_cost));
    let main = match seed {
        Some(s) => nicol_in_seeded(&stripe_cost, p, &mut SolveScratch::new(), s).cuts,
        None => nicol(&stripe_cost, p).cuts,
    };
    // The chosen stripes are independent 1D problems: fan out, keeping
    // the in-order collect so the rectangle order matches the serial
    // loop exactly.
    let stripes: Vec<(usize, usize)> = main.intervals().filter(|(a, b)| a < b).collect();
    rectpart_parallel::flat_map_slice(&stripes, |&(s0, s1)| {
        let aux = FnCost::additive(n_aux, |c, d| view.load(s0, s1, c, d));
        nicol(&aux, q)
            .cuts
            .intervals()
            .filter(|(a0, a1)| a0 < a1)
            .map(|(a0, a1)| view.rect(s0, s1, a0, a1))
            .collect::<Vec<_>>()
    })
}

/// Derives a main-dimension Nicol seed from a previous partition: the
/// distinct stripe starts of `prior` in this orientation, re-priced
/// under the current `stripe_cost`. Sound for *any* prior tiling: if the
/// derived boundary set has ≤ `p` intervals, keeping those main cuts and
/// optimally splitting each stripe `q`-way is an achievable `p×q`
/// solution, so its bottleneck (the max re-priced stripe cost) is a
/// feasible incumbent. Priors that do not project onto ≤ `p` stripes
/// (e.g. the other orientation of a `-BEST` pair) yield `None`.
fn warm_main_seed<C: IntervalCost>(
    view: &View<'_>,
    prior: &Partition,
    p: usize,
    stripe_cost: &C,
) -> Option<u64> {
    let n = view.n_main();
    let mut bounds: Vec<usize> = prior
        .rects()
        .iter()
        .map(|r| match view.axis() {
            Axis::Rows => r.r0,
            Axis::Cols => r.c0,
        })
        .collect();
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    if bounds.first() != Some(&0) || bounds.last() != Some(&n) || bounds.len() - 1 > p {
        return None;
    }
    bounds
        .windows(2)
        .map(|w| stripe_cost.cost(w[0], w[1]))
        .max()
}

/// `JAG-M-OPT` — optimal m-way jagged partition (the paper's new class,
/// §3.2.2), exact via parametric search. Runtime grows quickly with `m`
/// (the paper reports 15 minutes at `m = 961`); our parametric variant is
/// much faster but still the most expensive algorithm in the suite.
#[derive(Clone, Debug, Default)]
pub struct JagMOpt {
    /// Orientation policy.
    pub variant: JaggedVariant,
}

impl Partitioner for JagMOpt {
    fn name(&self) -> String {
        format!("JAG-M-OPT-{}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        self.variant.run(pfx, |view| {
            let rects = jag_m_opt_view(&view, m);
            Partition::with_parts(rects, m)
        })
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        Ok(self.try_partition_seeded(pfx, m, None)?.0)
    }
}

impl JagMOpt {
    /// Warm-started twin of [`Partitioner::try_partition`]: `hint` is a
    /// *claimed* achievable bottleneck — typically the previous solve's
    /// partition re-priced on the patched Γ. Exactness never depends on
    /// the hint: one verification probe either tightens `ub` (hint
    /// feasible in this orientation) or raises `lb` (infeasible, so the
    /// optimum is above it), and the bisection converges to the same
    /// minimal feasible bottleneck as a cold solve — the result is
    /// **bit-identical**; only the probe count shrinks. Returns the
    /// partition and the net probes skipped (also charged to
    /// [`WarmStartProbesSkipped`](rectpart_obs::Counter::WarmStartProbesSkipped)).
    pub fn try_partition_seeded(
        &self,
        pfx: &PrefixSum2D,
        m: usize,
        hint: Option<u64>,
    ) -> Result<(Partition, u64), RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let check = Checker::active();
        let skipped = std::sync::atomic::AtomicU64::new(0);
        let part = self.variant.try_run(pfx, |view| {
            let (rects, s) = try_jag_m_opt_view(&view, m, check, hint)?;
            skipped.fetch_add(s, std::sync::atomic::Ordering::Relaxed);
            Ok(Partition::with_parts(rects, m))
        })?;
        Ok((part, skipped.load(std::sync::atomic::Ordering::Relaxed)))
    }
}

/// One-orientation exact m-way jagged optimum via parametric search.
fn jag_m_opt_view(view: &View<'_>, m: usize) -> Vec<Rect> {
    try_jag_m_opt_view(view, m, Checker::OFF, None)
        .map(|(rects, _)| rects)
        .unwrap_or_else(|_| jag_m_heur_view(view, m, isqrt(m).max(1).min(m)))
}

/// Cancellation-aware parametric search: the deadline is polled once per
/// parametric probe (each probe is one serial feasibility DP, the
/// algorithm's natural work quantum). An optional warm-start `hint` (a
/// claimed achievable bottleneck) is spent on one verification probe
/// that tightens whichever bound it can — the bisection then converges
/// to the same optimum from a narrower range. Returns the rectangles and
/// the net probes skipped by the hint (bit-length shrink of the range,
/// minus the verification probe).
fn try_jag_m_opt_view(
    view: &View<'_>,
    m: usize,
    check: Checker,
    hint: Option<u64>,
) -> Result<(Vec<Rect>, u64), RectpartError> {
    let n = view.n_main();
    let n_aux = view.n_aux();
    if n == 0 || n_aux == 0 {
        return Ok((Vec::new(), 0));
    }
    let pfx = view.prefix();
    let mut lb = pfx.lower_bound(m);
    // Incumbent: JAG-M-HEUR on the same orientation.
    let heur = try_jag_m_heur_view(view, m, isqrt(m).max(1).min(m), check)?;
    let mut ub = heur
        .iter()
        .map(|r| pfx.load(r))
        .max()
        .unwrap_or(pfx.total());
    if ub < lb {
        // Cannot happen for correct bounds; defensive.
        lb = ub;
    }
    // Binary search the smallest feasible bottleneck. One scratch arena
    // backs every feasibility DP of the search: after the first check
    // the inner loop never touches the allocator.
    let mut scratch = SolveScratch::new();
    let mut probe_idx = 0u64;
    let mut skipped = 0u64;
    if let Some(h) = hint {
        if h >= lb && h < ub {
            check.check()?;
            let before = u64::BITS - (ub - lb).leading_zeros();
            rectpart_obs::trace_point(
                rectpart_obs::TraceId::JagMOptBudget,
                view.axis() as u64,
                probe_idx,
                h,
            );
            probe_idx += 1;
            if feasible(view, m, h, &mut scratch) {
                ub = h;
            } else {
                lb = h + 1;
            }
            let after = u64::BITS - (ub - lb).leading_zeros();
            skipped = (before.saturating_sub(after).saturating_sub(1)) as u64;
            rectpart_obs::add(rectpart_obs::Counter::WarmStartProbesSkipped, skipped);
        }
    }
    while lb < ub {
        check.check()?;
        // lint:allow(checked-arith) -- lb <= ub in the loop, so
        // lb + (ub-lb)/2 <= ub: no overflow possible
        let mid = lb + (ub - lb) / 2;
        rectpart_obs::trace_point(
            rectpart_obs::TraceId::JagMOptBudget,
            view.axis() as u64,
            probe_idx,
            mid,
        );
        probe_idx += 1;
        if feasible(view, m, mid, &mut scratch) {
            ub = mid;
        } else {
            lb = mid + 1;
        }
    }
    check.check()?;
    if feasible(view, m, ub, &mut scratch) {
        Ok((reconstruct(view, ub, scratch.jag_choice()), skipped))
    } else {
        // The incumbent's own bottleneck is always feasible; if the DP
        // cannot see it (it can), fall back to the heuristic rectangles.
        Ok((heur, skipped))
    }
}

/// Exact feasibility: can the matrix be partitioned m-way jagged with
/// bottleneck ≤ `budget`? Computes `f[k]` = minimal processor count for
/// the suffix of stripes starting at main index `k` in `scratch`'s DP
/// buffers; on success the chosen next stripe boundary per position is
/// left in `scratch.jag_choice()` for [`reconstruct`].
///
/// Deliberately serial: `f[k]` reads every `f[i > k]`, and the inner
/// loop's pruning (`break`/`continue` against the running `best`) is what
/// makes the search fast — the parallelism lives in [`reconstruct`] and
/// in the `-BEST` orientation pair running two `feasible` searches
/// concurrently (each with its own scratch).
// The `i` loop breaks early on a monotone bound and indexes `f` at two
// offsets; an enumerate-based rewrite obscures that.
#[allow(clippy::needless_range_loop)]
fn feasible(view: &View<'_>, m: usize, budget: u64, scratch: &mut SolveScratch) -> bool {
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::JagMFeasibility);
    rectpart_obs::incr(rectpart_obs::Counter::JagMFeasibilityChecks);
    rectpart_obs::work::charge(view.n_main() as u64 + 1);
    let n = view.n_main();
    let n_aux = view.n_aux();
    const INF: usize = usize::MAX;
    let (f, choice) = scratch.jag_buffers(n + 1);
    f.resize(n + 1, INF);
    choice.resize(n + 1, 0);
    f[n] = 0;
    for k in (0..n).rev() {
        let mut best = INF;
        let mut best_i = k + 1;
        for i in k + 1..=n {
            if f[i] == INF {
                continue;
            }
            let stripe_load = view.load(k, i, 0, n_aux);
            // Cheap lower bound on the stripe's processor need.
            let cheap = if budget == 0 {
                if stripe_load > 0 {
                    INF
                } else {
                    1
                }
            } else {
                (stripe_load.div_ceil(budget)).max(1) as usize
            };
            if cheap >= best {
                // `cheap` is non-decreasing in i: nothing further helps.
                // Candidates i..=n are all avoided.
                rectpart_obs::add(rectpart_obs::Counter::JagMLazySkips, (n - i + 1) as u64);
                break;
            }
            if cheap.saturating_add(f[i]) >= best {
                rectpart_obs::incr(rectpart_obs::Counter::JagMLazySkips);
                continue;
            }
            rectpart_obs::incr(rectpart_obs::Counter::JagMLazyEvals);
            if let Some(pn) = stripe_parts(view, k, i, budget, best - f[i]) {
                if pn + f[i] < best {
                    best = pn + f[i];
                    best_i = i;
                }
            }
        }
        f[k] = best;
        choice[k] = best_i;
    }
    f[0] <= m
}

/// Minimal number of auxiliary intervals covering stripe `[k, i)` with
/// every interval ≤ `budget` (greedy maximal intervals — optimal for the
/// counting problem), or `None` if impossible or the count reaches `cap`.
fn stripe_parts(view: &View<'_>, k: usize, i: usize, budget: u64, cap: usize) -> Option<usize> {
    let n_aux = view.n_aux();
    let cost = FnCost::additive(n_aux, |a, b| view.load(k, i, a, b));
    let mut lo = 0usize;
    let mut parts = 0usize;
    while lo < n_aux {
        if cost.cost(lo, lo + 1) > budget {
            return None;
        }
        lo = cost.upper_bisect(lo, lo + 1, n_aux, budget);
        parts += 1;
        if parts >= cap {
            return None;
        }
    }
    Some(parts)
}

/// Builds the rectangles of the optimal solution from the feasibility
/// DP's stripe choices at the optimal budget. The chosen cut vector's
/// stripes are independent, so each stripe's greedy auxiliary split runs
/// on its own task; the in-order collect reproduces the serial rectangle
/// order exactly.
fn reconstruct(view: &View<'_>, budget: u64, choice: &[usize]) -> Vec<Rect> {
    let n = view.n_main();
    let n_aux = view.n_aux();
    let mut stripes = Vec::new();
    let mut k = 0usize;
    while k < n {
        let i = choice[k];
        debug_assert!(i > k);
        stripes.push((k, i));
        k = i;
    }
    rectpart_parallel::flat_map_slice(&stripes, |&(k, i)| {
        let cost = FnCost::additive(n_aux, |a, b| view.load(k, i, a, b));
        let mut rects = Vec::new();
        let mut lo = 0usize;
        while lo < n_aux {
            let hi = cost.upper_bisect(lo, lo + 1, n_aux, budget);
            rects.push(view.rect(k, i, lo, hi));
            lo = hi;
        }
        rects
    })
}

/// The paper's literal dynamic-programming formulation of `JAG-M-OPT`
/// (§3.2.2):
///
/// ```text
/// Lmax(n1, m) = min_{1≤k≤n1, 1≤x≤m} max( Lmax(k−1, m−x), 1D(k, n1, x) )
/// ```
///
/// Exact and unpruned — exponential care is *not* taken, so use it only
/// on test-sized instances to validate the parametric solver. Returns the
/// optimal bottleneck for the given orientation.
pub fn jag_m_opt_dp(pfx: &PrefixSum2D, axis: crate::geometry::Axis, m: usize) -> u64 {
    let view = pfx.view(axis);
    let n = view.n_main();
    let n_aux = view.n_aux();
    let mut memo: HashMap<(usize, usize), u64> = HashMap::new();
    // The same stripe solution `nicol([k, i), x)` recurs across many
    // `(i, q)` DP states; memoize it in the shared stripe cache. The
    // recursion is serial, so one scratch arena serves every miss.
    let stripes = StripeCache::new();
    let scratch = RefCell::new(SolveScratch::new());
    fn lmax(
        view: &View<'_>,
        n_aux: usize,
        i: usize,
        q: usize,
        memo: &mut HashMap<(usize, usize), u64>,
        stripes: &StripeCache,
        scratch: &RefCell<SolveScratch>,
    ) -> u64 {
        if i == 0 {
            return 0;
        }
        if q == 0 {
            return u64::MAX;
        }
        if let Some(&v) = memo.get(&(i, q)) {
            return v;
        }
        let mut best = u64::MAX;
        for k in 0..i {
            for x in 1..=q {
                let stripe = stripes.bottleneck(view.axis(), k, i, x, || {
                    let aux = FnCost::additive(n_aux, |a, b| view.load(k, i, a, b));
                    nicol_bottleneck(&aux, x, &mut scratch.borrow_mut())
                });
                let rest = lmax(view, n_aux, k, q - x, memo, stripes, scratch);
                if rest == u64::MAX {
                    continue;
                }
                best = best.min(stripe.max(rest));
            }
        }
        memo.insert((i, q), best);
        best
    }
    lmax(&view, n_aux, n, m, &mut memo, &stripes, &scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Axis;
    use crate::jagged::{JagMHeur, JagPqHeur};
    use crate::matrix::LoadMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64, zeros: bool) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            if zeros && rng.gen_bool(0.2) {
                0
            } else {
                rng.gen_range(1..50)
            }
        }))
    }

    #[test]
    fn pq_opt_is_valid_and_beats_heuristic() {
        for seed in 0..4 {
            let pfx = random_pfx(16, 16, seed, seed % 2 == 0);
            for m in [4, 9, 16] {
                let opt = JagPqOpt::default().partition(&pfx, m);
                assert!(opt.validate(&pfx).is_ok(), "seed={seed} m={m}");
                let heur = JagPqHeur::best().partition(&pfx, m);
                assert!(
                    opt.lmax(&pfx) <= heur.lmax(&pfx),
                    "seed={seed} m={m}: opt {} > heur {}",
                    opt.lmax(&pfx),
                    heur.lmax(&pfx)
                );
            }
        }
    }

    #[test]
    fn m_opt_is_valid_and_dominates_everything_jagged() {
        for seed in 0..4 {
            let pfx = random_pfx(12, 14, seed, seed % 2 == 1);
            for m in [2, 4, 6, 9] {
                let mo = JagMOpt::default().partition(&pfx, m);
                assert!(mo.validate(&pfx).is_ok(), "seed={seed} m={m}");
                let heur = JagMHeur::best().partition(&pfx, m);
                let pq = JagPqOpt::default().partition(&pfx, m);
                assert!(
                    mo.lmax(&pfx) <= heur.lmax(&pfx),
                    "vs heur seed={seed} m={m}"
                );
                assert!(
                    mo.lmax(&pfx) <= pq.lmax(&pfx),
                    "vs pq-opt seed={seed} m={m}"
                );
                assert!(mo.lmax(&pfx) >= pfx.lower_bound(m));
            }
        }
    }

    #[test]
    fn parametric_matches_literal_dp() {
        for seed in 0..6 {
            let pfx = random_pfx(7, 6, seed, seed % 3 == 0);
            for m in [1, 2, 3, 5] {
                for axis in [Axis::Rows, Axis::Cols] {
                    let dp = jag_m_opt_dp(&pfx, axis, m);
                    let view = pfx.view(axis);
                    let rects = jag_m_opt_view(&view, m);
                    let par = rects.iter().map(|r| pfx.load(r)).max().unwrap_or(0);
                    assert_eq!(par, dp, "seed={seed} m={m} axis={axis:?}");
                }
            }
        }
    }

    #[test]
    fn m_opt_equals_lower_bound_on_uniform_powers() {
        let mat = LoadMatrix::from_fn(8, 8, |_, _| 1);
        let pfx = PrefixSum2D::new(&mat);
        let p = JagMOpt::default().partition(&pfx, 16);
        assert_eq!(p.lmax(&pfx), 4); // 64 cells / 16 procs
    }

    #[test]
    fn m_opt_single_processor() {
        let pfx = random_pfx(5, 5, 3, false);
        let p = JagMOpt::default().partition(&pfx, 1);
        assert_eq!(p.lmax(&pfx), pfx.total());
        assert!(p.validate(&pfx).is_ok());
    }

    #[test]
    fn m_opt_many_processors() {
        let pfx = random_pfx(4, 4, 5, false);
        let p = JagMOpt::default().partition(&pfx, 40);
        assert!(p.validate(&pfx).is_ok());
        assert_eq!(p.lmax(&pfx), pfx.max_cell() as u64);
    }

    #[test]
    fn stripe_parts_counts_greedily() {
        let mat = LoadMatrix::from_vec(1, 6, vec![3, 3, 3, 3, 3, 3]);
        let pfx = PrefixSum2D::new(&mat);
        let view = pfx.view(Axis::Rows);
        assert_eq!(stripe_parts(&view, 0, 1, 6, 100), Some(3));
        assert_eq!(stripe_parts(&view, 0, 1, 18, 100), Some(1));
        assert_eq!(stripe_parts(&view, 0, 1, 2, 100), None); // cell 3 > 2
        assert_eq!(stripe_parts(&view, 0, 1, 6, 3), None); // cap reached
    }

    #[test]
    fn stripe_cache_is_shared_across_best_orientations() {
        let pfx = random_pfx(10, 12, 2, false);
        let cache = StripeCache::new();
        let _ = jag_pq_opt_view(&pfx.view(Axis::Rows), 2, 2, &cache);
        let rows_entries = cache.len();
        assert!(rows_entries > 0);
        let _ = jag_pq_opt_view(&pfx.view(Axis::Cols), 2, 2, &cache);
        assert!(
            cache.len() > rows_entries,
            "Cols run must add axis-keyed entries"
        );
        // A repeated orientation is answered from the cache alone.
        let before = cache.len();
        let _ = jag_pq_opt_view(&pfx.view(Axis::Rows), 2, 2, &cache);
        assert_eq!(cache.len(), before);
    }

    #[test]
    fn seeded_m_opt_is_bit_identical_for_any_hint() {
        for seed in 0..4 {
            let pfx = random_pfx(12, 10, seed, seed % 2 == 0);
            for m in [3, 6, 9] {
                let algo = JagMOpt::default();
                let cold = algo.try_partition(&pfx, m).unwrap();
                let cold_lmax = cold.lmax(&pfx);
                // Hints spanning the spectrum: the optimum itself, a stale
                // partition's (achievable) bottleneck, an absurdly tight
                // claim (infeasible — must only raise lb), and a useless
                // loose one (ignored).
                let stale = JagMHeur::best().partition(&pfx, m).lmax(&pfx);
                for hint in [cold_lmax, stale, pfx.lower_bound(m), u64::MAX] {
                    let (warm, _) = algo.try_partition_seeded(&pfx, m, Some(hint)).unwrap();
                    assert_eq!(warm.rects(), cold.rects(), "seed={seed} m={m} hint={hint}");
                }
            }
        }
    }

    #[test]
    fn seeded_m_opt_skips_probes_with_a_tight_hint() {
        // Skewed instances keep the heuristic incumbent well above the
        // optimum, so an optimal hint must collapse a multi-bit search
        // range on at least some of them.
        let mut total_skipped = 0u64;
        let algo = JagMOpt {
            variant: JaggedVariant::Hor,
        };
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(20, 20, |r, c| {
                // A hot diagonal band over a cold background.
                if r.abs_diff(c) <= 1 {
                    rng.gen_range(500..2000)
                } else {
                    rng.gen_range(0..5)
                }
            }));
            for m in [5, 9, 13] {
                let cold = algo.try_partition(&pfx, m).unwrap();
                let (warm, skipped) = algo
                    .try_partition_seeded(&pfx, m, Some(cold.lmax(&pfx)))
                    .unwrap();
                assert_eq!(warm.rects(), cold.rects(), "seed={seed} m={m}");
                total_skipped += skipped;
            }
        }
        assert!(
            total_skipped > 0,
            "optimal hints must skip probes somewhere across the sweep"
        );
    }

    #[test]
    fn warm_pq_opt_matches_cold_with_and_without_prior() {
        for seed in 0..4 {
            let pfx = random_pfx(14, 11, seed, seed % 2 == 1);
            for m in [4, 6, 9] {
                let algo = JagPqOpt::default();
                let cold = algo.partition(&pfx, m);
                let cache = StripeCache::new();
                let no_prior = algo.partition_warm(&pfx, m, &cache, None);
                assert_eq!(no_prior.rects(), cold.rects(), "seed={seed} m={m}");
                // Prior = the cold solution itself (the repeat-query case),
                // served against the already-warm cache.
                let with_prior = algo.partition_warm(&pfx, m, &cache, Some(&cold));
                assert_eq!(with_prior.rects(), cold.rects(), "seed={seed} m={m}");
                // A prior from a different algorithm must also be safe.
                let foreign = JagMHeur::best().partition(&pfx, m);
                let with_foreign = algo.partition_warm(&pfx, m, &cache, Some(&foreign));
                assert_eq!(with_foreign.rects(), cold.rects(), "seed={seed} m={m}");
            }
        }
    }

    #[test]
    fn pq_opt_explicit_grid() {
        let pfx = random_pfx(10, 10, 9, false);
        let algo = JagPqOpt {
            variant: JaggedVariant::Hor,
            grid: Some((2, 3)),
        };
        let p = algo.partition(&pfx, 6);
        assert!(p.validate(&pfx).is_ok());
        assert!(p.active_parts() <= 6);
    }
}
