//! Exhaustive search over *arbitrary* rectangle partitions.
//!
//! Computing the optimal arbitrary rectangle partition is NP-hard
//! (§1, §3.4), but on tiny matrices it can be enumerated: in any tiling,
//! the rectangle covering the top-left-most uncovered cell must have that
//! cell as its own top-left corner, so branching over the height and
//! width of that rectangle enumerates every tiling exactly once. This is
//! the ultimate test oracle — every restricted solution class must be
//! bounded below by it.

use crate::geometry::Rect;
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;

/// Optimal bottleneck over **all** rectangle partitions into at most `m`
/// parts, with the witness partition.
///
/// # Panics
///
/// Panics if the matrix has more than 64 cells (the coverage mask is a
/// `u64`); this is a deliberately small-instance oracle.
pub fn exhaustive_opt(pfx: &PrefixSum2D, m: usize) -> (Partition, u64) {
    assert!(m >= 1);
    let rows = pfx.rows();
    let cols = pfx.cols();
    assert!(
        rows * cols <= 64,
        "exhaustive search is limited to 64 cells"
    );
    let full = (rows * cols) as u32;
    let mut best_value = u64::MAX;
    let mut best_rects: Vec<Rect> = Vec::new();
    let mut stack: Vec<Rect> = Vec::new();
    search(
        pfx,
        0,
        full,
        m,
        0,
        &mut stack,
        &mut best_value,
        &mut best_rects,
    );
    (Partition::with_parts(best_rects, m), best_value)
}

#[allow(clippy::too_many_arguments)]
fn search(
    pfx: &PrefixSum2D,
    mask: u64,
    remaining_cells: u32,
    parts_left: usize,
    cur_max: u64,
    stack: &mut Vec<Rect>,
    best_value: &mut u64,
    best_rects: &mut Vec<Rect>,
) {
    if cur_max >= *best_value {
        return; // cannot improve
    }
    if remaining_cells == 0 {
        *best_value = cur_max;
        *best_rects = stack.clone();
        return;
    }
    if parts_left == 0 {
        return;
    }
    let rows = pfx.rows();
    let cols = pfx.cols();
    // Top-left-most uncovered cell; `remaining_cells > 0` guarantees one
    // exists, and an (impossible) full mask simply prunes this branch.
    let Some(idx) = (0..rows * cols).find(|&i| mask & (1u64 << i) == 0) else {
        return;
    };
    // lint:allow(panic-reach) -- this line only runs when the find over
    // 0..rows*cols produced an index, so cols >= 1
    let (r, c) = (idx / cols, idx % cols);
    // Average-based pruning: the remaining load cannot be spread better
    // than evenly over the remaining parts.
    let covered_load: u64 = stack.iter().map(|rr| pfx.load(rr)).sum();
    let remaining_load = pfx.total() - covered_load;
    if remaining_load.div_ceil(parts_left as u64) >= *best_value {
        return;
    }
    let mut max_w = cols - c;
    for h in 1..=rows - r {
        // Shrink the admissible width as soon as a covered cell blocks it.
        let row = r + h - 1;
        let mut w = 0;
        while w < max_w && mask & (1u64 << (row * cols + c + w)) == 0 {
            w += 1;
        }
        max_w = w;
        if max_w == 0 {
            break;
        }
        for w in 1..=max_w {
            let rect = Rect::new(r, r + h, c, c + w);
            let mut rect_mask = 0u64;
            for rr in r..r + h {
                for cc in c..c + w {
                    rect_mask |= 1u64 << (rr * cols + cc);
                }
            }
            let load = pfx.load(&rect);
            stack.push(rect);
            search(
                pfx,
                mask | rect_mask,
                remaining_cells - (h * w) as u32,
                parts_left - 1,
                cur_max.max(load),
                stack,
                best_value,
                best_rects,
            );
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier_opt::hier_opt_value;
    use crate::hierarchical::HierRb;
    use crate::jagged::JagMHeur;
    use crate::jagged_opt::JagMOpt;
    use crate::matrix::LoadMatrix;
    use crate::traits::Partitioner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(0..20)
        }))
    }

    #[test]
    fn witness_is_valid_and_attains_value() {
        for seed in 0..4 {
            let pfx = random_pfx(4, 4, seed);
            for m in [1, 2, 3, 4] {
                let (part, value) = exhaustive_opt(&pfx, m);
                assert!(part.validate(&pfx).is_ok(), "seed={seed} m={m}");
                assert_eq!(part.lmax(&pfx), value);
                assert!(value >= pfx.lower_bound(m) || value == pfx.lower_bound(m));
            }
        }
    }

    #[test]
    fn arbitrary_opt_bounds_every_class() {
        for seed in 0..3 {
            let pfx = random_pfx(4, 4, 100 + seed);
            for m in [2, 3, 4] {
                let (_, arb) = exhaustive_opt(&pfx, m);
                assert!(JagMOpt::default().partition(&pfx, m).lmax(&pfx) >= arb);
                assert!(hier_opt_value(&pfx, m) >= arb);
                assert!(HierRb::load().partition(&pfx, m).lmax(&pfx) >= arb);
                assert!(JagMHeur::best().partition(&pfx, m).lmax(&pfx) >= arb);
            }
        }
    }

    #[test]
    fn finds_the_windmill_when_it_wins() {
        // The classic non-guillotine case (paper fig. 1(f)): a pinwheel of
        // four rectangles around a center can beat hierarchical cuts.
        // 3x3 with a heavy center forces Lmax(hier) >= center row/col
        // combinations; the windmill isolates the center.
        let mat = LoadMatrix::from_vec(3, 3, vec![1, 1, 1, 1, 100, 1, 1, 1, 1]);
        let pfx = PrefixSum2D::new(&mat);
        let (_, arb) = exhaustive_opt(&pfx, 5);
        assert_eq!(arb, 100); // center alone; four windmill arms of 2 cells
        let hier = hier_opt_value(&pfx, 5);
        assert!(hier >= arb);
    }

    #[test]
    fn single_part_takes_whole_matrix() {
        let pfx = random_pfx(3, 3, 7);
        let (part, value) = exhaustive_opt(&pfx, 1);
        assert_eq!(value, pfx.total());
        assert_eq!(part.rects()[0], Rect::new(0, 3, 0, 3));
    }

    #[test]
    #[should_panic(expected = "64 cells")]
    fn rejects_large_matrices() {
        let pfx = random_pfx(9, 9, 1);
        let _ = exhaustive_opt(&pfx, 2);
    }
}
