//! Shared, thread-safe memoization for stripe subproblems.
//!
//! The optimal jagged algorithms solve the same 1D stripe subproblem —
//! "optimally split rows `[lo, hi)` into `parts` intervals along the
//! auxiliary dimension" — over and over: Nicol's parametric search probes
//! each interval many times, `-BEST` runs two orientations, and the
//! `JAG-M-OPT` literal DP revisits `(stripe, x)` states across processor
//! counts. Historically each call sites kept a private
//! `RefCell<HashMap>`, which is neither shareable across threads nor
//! across the `-BEST` orientation pair.
//!
//! [`StripeCache`] replaces that: a sharded `Mutex<HashMap>` map keyed by
//! `(axis, interval, parts)` that is `Send + Sync`, so one cache instance
//! serves both orientations of a `-BEST` run and every parallel stripe
//! evaluation inside them. Values are deterministic functions of the key
//! (the optimal bottleneck of the stripe), so a racing duplicate compute
//! is harmless — both writers insert the same value.
//!
//! The generic engine is [`ShardedMemo`]; `hier_opt` reuses it for its
//! sub-rectangle DP states.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

use crate::geometry::Axis;

/// Number of independently locked shards. A small power of two: the maps
/// are consulted from at most a handful of worker threads, and the keys
/// of one run spread evenly under the mixing function below.
const SHARDS: usize = 16;

/// A concurrent memo table sharded across [`SHARDS`] mutex-protected
/// hash maps.
///
/// Lookups lock exactly one shard; the compute callback of
/// [`get_or_insert_with`](ShardedMemo::get_or_insert_with) runs *outside*
/// any lock so long-running solves never serialize unrelated queries.
/// This is only sound for *deterministic* values: two threads may race on
/// the same key and both compute it, and the table keeps whichever lands
/// last. All users in this crate memoize pure functions of the key.
#[derive(Debug)]
pub struct ShardedMemo<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Eq + Hash, V: Clone> ShardedMemo<K, V> {
    /// An empty memo.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        // Fibonacci-mix the std hash down to a shard index.
        use std::collections::hash_map::RandomState;
        use std::hash::BuildHasher;
        use std::sync::OnceLock;
        static STATE: OnceLock<RandomState> = OnceLock::new();
        let h = STATE.get_or_init(RandomState::new).hash_one(key);
        &self.shards[(h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS]
    }

    /// The cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap().get(key).cloned()
    }

    /// Inserts `value` for `key`, replacing any previous entry.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().unwrap().insert(key, value);
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `compute` on a miss. `compute` runs without holding any lock; on a
    /// race the value that finishes last wins (all callers must compute
    /// the same value for the same key).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(v) = shard.lock().unwrap().get(&key) {
            return v.clone();
        }
        let v = compute();
        shard.lock().unwrap().insert(key, v.clone());
        v
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// `true` if no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMemo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Key of one memoized stripe solution: the optimal bottleneck of
/// splitting main-dimension interval `[lo, hi)` (of the orientation given
/// by `axis`) into `parts` intervals along the auxiliary dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StripeKey {
    /// Main (striped) dimension of the orientation that produced the
    /// stripe; keeps the two orientations of a `-BEST` run from
    /// colliding in the shared cache.
    pub axis: Axis,
    /// Start of the main-dimension interval (inclusive).
    pub lo: usize,
    /// End of the main-dimension interval (exclusive).
    pub hi: usize,
    /// Number of auxiliary intervals the stripe is split into.
    pub parts: usize,
}

/// Shared memo of optimal stripe bottlenecks, keyed by [`StripeKey`].
///
/// One instance is created per `partition` call and shared across the
/// `-BEST` orientation pair and all parallel stripe evaluations inside
/// it (see the module docs).
#[derive(Debug, Default)]
pub struct StripeCache {
    memo: ShardedMemo<StripeKey, u64>,
}

impl StripeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized optimal bottleneck of splitting `[lo, hi)` into
    /// `parts` auxiliary intervals, computing it with `solve` on a miss.
    pub fn bottleneck(
        &self,
        axis: Axis,
        lo: usize,
        hi: usize,
        parts: usize,
        solve: impl FnOnce() -> u64,
    ) -> u64 {
        self.memo.get_or_insert_with(
            StripeKey {
                axis,
                lo,
                hi,
                parts,
            },
            solve,
        )
    }

    /// Number of distinct stripe solutions cached so far.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// `true` if no stripe solution is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let memo: ShardedMemo<(usize, usize), u64> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo.get_or_insert_with((2, 5), || {
                calls.fetch_add(1, Ordering::Relaxed);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.get(&(2, 5)), Some(42));
        assert_eq!(memo.get(&(5, 2)), None);
    }

    #[test]
    fn stripe_cache_distinguishes_axes() {
        let cache = StripeCache::new();
        let a = cache.bottleneck(Axis::Rows, 0, 4, 2, || 10);
        let b = cache.bottleneck(Axis::Cols, 0, 4, 2, || 20);
        assert_eq!((a, b), (10, 20));
        assert_eq!(cache.len(), 2);
        // Hits do not recompute.
        assert_eq!(cache.bottleneck(Axis::Rows, 0, 4, 2, || 99), 10);
    }

    #[test]
    fn shared_across_threads() {
        let cache = StripeCache::new();
        let results = rectpart_parallel::with_threads(4, || {
            rectpart_parallel::map_range(64, |i| {
                cache.bottleneck(Axis::Rows, i % 8, i % 8 + 1, 1, || (i % 8) as u64)
            })
        });
        for (i, v) in results.into_iter().enumerate() {
            assert_eq!(v, (i % 8) as u64);
        }
        assert_eq!(cache.len(), 8);
    }
}
