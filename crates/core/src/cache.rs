//! Shared, thread-safe memoization for stripe subproblems.
//!
//! The optimal jagged algorithms solve the same 1D stripe subproblem —
//! "optimally split rows `[lo, hi)` into `parts` intervals along the
//! auxiliary dimension" — over and over: Nicol's parametric search probes
//! each interval many times, `-BEST` runs two orientations, and the
//! `JAG-M-OPT` literal DP revisits `(stripe, x)` states across processor
//! counts. Historically each call sites kept a private
//! `RefCell<HashMap>`, which is neither shareable across threads nor
//! across the `-BEST` orientation pair.
//!
//! [`StripeCache`] replaces that: a sharded `Mutex<HashMap>` map keyed by
//! `(axis, interval, parts)` that is `Send + Sync`, so one cache instance
//! serves both orientations of a `-BEST` run and every parallel stripe
//! evaluation inside them. Values are deterministic functions of the key
//! (the optimal bottleneck of the stripe), so a racing duplicate compute
//! is harmless — both writers insert the same value.
//!
//! The generic engine is [`ShardedMemo`]; `hier_opt` reuses it for its
//! sub-rectangle DP states.
//!
//! # Sharding key scheme
//!
//! A key is routed to one of [`ShardedMemo::shard_count`] (= 16) shards
//! by hashing its `Hash` impl with a **fixed-seed FNV-1a** 64-bit hasher,
//! Fibonacci-multiplying the result (`h · 2⁶⁴/φ`) to spread entropy into
//! the high bits, and taking the top bits modulo the shard count:
//!
//! ```text
//! shard(k) = (fnv1a(k) · 0x9E3779B97F4A7C15) >> 60  mod 16
//! ```
//!
//! The hasher is deliberately *not* `RandomState`: a fixed seed makes the
//! shard assignment — and therefore per-shard occupancy statistics
//! reported by [`ShardedMemo::shard_lens`] and the `obs` layer —
//! reproducible across runs and thread counts. Keys are not attacker
//! controlled, so HashDoS hardening buys nothing here.
//!
//! # Instrumentation
//!
//! With the `obs` feature enabled, [`StripeCache::bottleneck`] records
//! one `core.stripe_cache.lookups` per query and one
//! `core.stripe_cache.misses` per *first insert* of a distinct key (plus
//! the per-shard insert tally). Counting first-inserts rather than
//! "compute ran" keeps the numbers deterministic at any thread count:
//! when two threads race on the same key both may solve it, but exactly
//! one performs the first insert. Each miss-compute additionally runs
//! under a `core.stripe_solve` span, so flame/trace output attributes
//! stripe-solve work to the solver phase that triggered the miss.
//!
//! # Unbounded-cache invariant
//!
//! `ShardedMemo` never evicts: every shard map grows monotonically for
//! the lifetime of the cache (one `partition` call). The companion
//! counter `core.stripe_cache.evictions` therefore stays **0 by
//! construction** — it exists as a tripwire, pinned to zero by a test in
//! `obs_differential`, so that a future bounded/LRU cache must
//! consciously start incrementing it (and revisit the determinism
//! argument above, which leans on entries never disappearing).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::geometry::Axis;

/// Number of independently locked shards. A small power of two: the maps
/// are consulted from at most a handful of worker threads, and the keys
/// of one run spread evenly under the mixing function below.
const SHARDS: usize = 16;

/// Fixed-seed FNV-1a, so shard routing is deterministic across runs (see
/// the module docs).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// A concurrent memo table sharded across `SHARDS` mutex-protected
/// hash maps.
///
/// Lookups lock exactly one shard; the compute callback of
/// [`get_or_insert_with`](ShardedMemo::get_or_insert_with) runs *outside*
/// any lock so long-running solves never serialize unrelated queries.
/// This is only sound for *deterministic* values: two threads may race on
/// the same key and both compute it, and the table keeps whichever lands
/// last. All users in this crate memoize pure functions of the key.
#[derive(Debug)]
pub struct ShardedMemo<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Eq + Hash, V: Clone> ShardedMemo<K, V> {
    /// An empty memo.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The shard index `key` routes to (see the module docs for the
    /// scheme). Deterministic across runs and thread counts.
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = Fnv1a(Fnv1a::OFFSET_BASIS);
        key.hash(&mut hasher);
        (hasher.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        // lint:allow(panic-reach) -- shard_index ends in `% SHARDS` and
        // self.shards has exactly SHARDS entries
        &self.shards[self.shard_index(key)]
    }

    /// Locks a shard, shrugging off poisoning: every write is a plain
    /// insert of a value that is a pure function of its key, so a map
    /// abandoned mid-panic is still internally consistent and safe to
    /// keep using.
    fn lock(shard: &Mutex<HashMap<K, V>>) -> MutexGuard<'_, HashMap<K, V>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        Self::lock(self.shard(key)).get(key).cloned()
    }

    /// Inserts `value` for `key`, replacing any previous entry.
    pub fn insert(&self, key: K, value: V) {
        Self::lock(self.shard(&key)).insert(key, value);
    }

    /// Inserts `value` only if `key` is absent; returns `true` when this
    /// call performed the first insert. Exactly one of several racing
    /// inserters of the same key observes `true`, which is what makes
    /// first-insert counting deterministic (see the module docs).
    pub fn insert_if_absent(&self, key: K, value: V) -> bool {
        let mut shard = Self::lock(self.shard(&key));
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
                true
            }
        }
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `compute` on a miss. `compute` runs without holding any lock; on a
    /// race the value computed first is kept (all callers must compute
    /// the same value for the same key, so which write lands is
    /// unobservable).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert_if_absent(key, v.clone());
        v
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// `true` if no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (the capacity of the lock partition, not of the
    /// maps themselves — each shard grows unbounded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry count of every shard, in shard order. Deterministic across
    /// runs thanks to the fixed-seed sharding scheme.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::lock(s).len()).collect()
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMemo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Key of one memoized stripe solution: the optimal bottleneck of
/// splitting main-dimension interval `[lo, hi)` (of the orientation given
/// by `axis`) into `parts` intervals along the auxiliary dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StripeKey {
    /// Main (striped) dimension of the orientation that produced the
    /// stripe; keeps the two orientations of a `-BEST` run from
    /// colliding in the shared cache.
    pub axis: Axis,
    /// Start of the main-dimension interval (inclusive).
    pub lo: usize,
    /// End of the main-dimension interval (exclusive).
    pub hi: usize,
    /// Number of auxiliary intervals the stripe is split into.
    pub parts: usize,
}

/// Shared memo of optimal stripe bottlenecks, keyed by [`StripeKey`].
///
/// One instance is created per `partition` call and shared across the
/// `-BEST` orientation pair and all parallel stripe evaluations inside
/// it (see the module docs).
#[derive(Debug, Default)]
pub struct StripeCache {
    memo: ShardedMemo<StripeKey, u64>,
}

impl StripeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized optimal bottleneck of splitting `[lo, hi)` into
    /// `parts` auxiliary intervals, computing it with `solve` on a miss.
    pub fn bottleneck(
        &self,
        axis: Axis,
        lo: usize,
        hi: usize,
        parts: usize,
        solve: impl FnOnce() -> u64,
    ) -> u64 {
        let key = StripeKey {
            axis,
            lo,
            hi,
            parts,
        };
        rectpart_obs::incr(rectpart_obs::Counter::StripeCacheLookups);
        if let Some(v) = self.memo.get(&key) {
            return v;
        }
        let v = {
            let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::StripeSolve);
            solve()
        };
        if self.memo.insert_if_absent(key, v) {
            rectpart_obs::incr(rectpart_obs::Counter::StripeCacheMisses);
            rectpart_obs::record_shard_insert(self.memo.shard_index(&key));
        }
        v
    }

    /// Number of distinct stripe solutions cached so far.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// `true` if no stripe solution is cached.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Number of lock shards backing the cache.
    pub fn shard_count(&self) -> usize {
        self.memo.shard_count()
    }

    /// Entry count of every shard, in shard order (deterministic; see
    /// the module docs).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.memo.shard_lens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let memo: ShardedMemo<(usize, usize), u64> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo.get_or_insert_with((2, 5), || {
                calls.fetch_add(1, Ordering::Relaxed);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.get(&(2, 5)), Some(42));
        assert_eq!(memo.get(&(5, 2)), None);
    }

    #[test]
    fn stripe_cache_distinguishes_axes() {
        let cache = StripeCache::new();
        let a = cache.bottleneck(Axis::Rows, 0, 4, 2, || 10);
        let b = cache.bottleneck(Axis::Cols, 0, 4, 2, || 20);
        assert_eq!((a, b), (10, 20));
        assert_eq!(cache.len(), 2);
        // Hits do not recompute.
        assert_eq!(cache.bottleneck(Axis::Rows, 0, 4, 2, || 99), 10);
    }

    #[test]
    fn insert_if_absent_reports_first_insert_only() {
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new();
        assert!(memo.insert_if_absent(7, 1));
        assert!(!memo.insert_if_absent(7, 2));
        assert_eq!(memo.get(&7), Some(1));
    }

    #[test]
    fn shard_accessors_and_deterministic_routing() {
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new();
        assert_eq!(memo.shard_count(), 16);
        for k in 0..100u64 {
            memo.insert(k, k);
        }
        let lens = memo.shard_lens();
        assert_eq!(lens.len(), memo.shard_count());
        assert_eq!(lens.iter().sum::<usize>(), memo.len());
        // Routing is a pure function of the key: a fresh map with a
        // fresh hasher routes identically.
        let fresh: ShardedMemo<u64, u64> = ShardedMemo::new();
        for k in 0..100u64 {
            assert!(memo.shard_index(&k) < memo.shard_count());
            assert_eq!(memo.shard_index(&k), fresh.shard_index(&k));
        }
    }

    #[test]
    fn stripe_cache_exposes_shard_occupancy() {
        let cache = StripeCache::new();
        for lo in 0..10 {
            cache.bottleneck(Axis::Rows, lo, lo + 1, 2, || lo as u64);
        }
        assert_eq!(cache.shard_count(), 16);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), cache.len());
    }

    #[test]
    fn shared_across_threads() {
        let cache = StripeCache::new();
        let results = rectpart_parallel::with_threads(4, || {
            rectpart_parallel::map_range(64, |i| {
                cache.bottleneck(Axis::Rows, i % 8, i % 8 + 1, 1, || (i % 8) as u64)
            })
        });
        for (i, v) in results.into_iter().enumerate() {
            assert_eq!(v, (i % 8) as u64);
        }
        assert_eq!(cache.len(), 8);
    }
}
