//! JSON (de)serialization of the public data types, preserving the field
//! layout of the repo's existing output files (`{"rects": [{"r0": ..}]}`
//! etc.). Enabled with the `json` feature (the legacy `serde` feature is
//! an alias).

use rectpart_json::{Error, FromJson, Json, ToJson};

use crate::geometry::{Axis, Rect};
use crate::matrix::LoadMatrix;
use crate::solution::Partition;

impl ToJson for Rect {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("r0", self.r0.to_json()),
            ("r1", self.r1.to_json()),
            ("c0", self.c0.to_json()),
            ("c1", self.c1.to_json()),
        ])
    }
}

impl FromJson for Rect {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let field = |key| json.field(key).and_then(usize::from_json);
        let (r0, r1) = (field("r0")?, field("r1")?);
        let (c0, c1) = (field("c0")?, field("c1")?);
        if r0 > r1 || c0 > c1 {
            return Err(Error::decode("inverted rectangle bounds"));
        }
        Ok(Rect { r0, r1, c0, c1 })
    }
}

impl ToJson for Axis {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Axis::Rows => "Rows",
                Axis::Cols => "Cols",
            }
            .into(),
        )
    }
}

impl FromJson for Axis {
    fn from_json(json: &Json) -> Result<Self, Error> {
        match json.as_str() {
            Some("Rows") => Ok(Axis::Rows),
            Some("Cols") => Ok(Axis::Cols),
            _ => Err(Error::decode("expected \"Rows\" or \"Cols\"")),
        }
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> Json {
        Json::obj(vec![("rects", self.rects().to_vec().to_json())])
    }
}

impl FromJson for Partition {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let rects: Vec<Rect> = Vec::from_json(json.field("rects")?)?;
        if rects.is_empty() {
            return Err(Error::decode("a partition needs at least one part"));
        }
        Ok(Partition::new(rects))
    }
}

impl ToJson for LoadMatrix {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rows", self.rows().to_json()),
            ("cols", self.cols().to_json()),
            ("data", self.data().to_vec().to_json()),
        ])
    }
}

impl FromJson for LoadMatrix {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let rows = usize::from_json(json.field("rows")?)?;
        let cols = usize::from_json(json.field("cols")?)?;
        let data: Vec<u32> = Vec::from_json(json.field("data")?)?;
        if data.len() != rows * cols {
            return Err(Error::decode("row-major data length mismatch"));
        }
        Ok(LoadMatrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip_preserves_layout() {
        let p = Partition::new(vec![Rect::new(0, 2, 0, 3), Rect::new(2, 4, 0, 3)]);
        let text = rectpart_json::to_string_pretty(&p);
        assert!(text.contains("\"rects\""));
        assert!(text.contains("\"r0\""));
        let back: Partition = rectpart_json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = LoadMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as u32);
        let back: LoadMatrix =
            rectpart_json::from_str(&rectpart_json::to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn axis_roundtrip() {
        for axis in [Axis::Rows, Axis::Cols] {
            let back: Axis =
                rectpart_json::from_str(&rectpart_json::to_string_pretty(&axis)).unwrap();
            assert_eq!(back, axis);
        }
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(rectpart_json::from_str::<Partition>("{\"rects\": []}").is_err());
        assert!(rectpart_json::from_str::<Axis>("\"Diagonal\"").is_err());
        assert!(
            rectpart_json::from_str::<LoadMatrix>("{\"rows\": 2, \"cols\": 2, \"data\": [1]}")
                .is_err()
        );
    }
}
