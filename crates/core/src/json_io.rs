//! JSON (de)serialization of the public data types, preserving the field
//! layout of the repo's existing output files (`{"rects": [{"r0": ..}]}`
//! etc.). Enabled with the `json` feature (the legacy `serde` feature is
//! an alias).

use rectpart_json::{Error, FromJson, Json, ToJson};

use crate::geometry::{Axis, Rect};
use crate::matrix::LoadMatrix;
use crate::solution::Partition;

impl ToJson for Rect {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("r0", self.r0.to_json()),
            ("r1", self.r1.to_json()),
            ("c0", self.c0.to_json()),
            ("c1", self.c1.to_json()),
        ])
    }
}

impl FromJson for Rect {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let field = |key| json.field(key).and_then(usize::from_json);
        let (r0, r1) = (field("r0")?, field("r1")?);
        let (c0, c1) = (field("c0")?, field("c1")?);
        if r0 > r1 || c0 > c1 {
            return Err(Error::decode("inverted rectangle bounds"));
        }
        Ok(Rect { r0, r1, c0, c1 })
    }
}

impl ToJson for Axis {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Axis::Rows => "Rows",
                Axis::Cols => "Cols",
            }
            .into(),
        )
    }
}

impl FromJson for Axis {
    fn from_json(json: &Json) -> Result<Self, Error> {
        match json.as_str() {
            Some("Rows") => Ok(Axis::Rows),
            Some("Cols") => Ok(Axis::Cols),
            _ => Err(Error::decode("expected \"Rows\" or \"Cols\"")),
        }
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> Json {
        Json::obj(vec![("rects", self.rects().to_vec().to_json())])
    }
}

impl FromJson for Partition {
    fn from_json(json: &Json) -> Result<Self, Error> {
        let rects: Vec<Rect> = Vec::from_json(json.field("rects")?)?;
        if rects.is_empty() {
            return Err(Error::decode("a partition needs at least one part"));
        }
        Ok(Partition::new(rects))
    }
}

impl ToJson for LoadMatrix {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rows", self.rows().to_json()),
            ("cols", self.cols().to_json()),
            ("data", self.data().to_vec().to_json()),
        ])
    }
}

impl FromJson for LoadMatrix {
    /// Accepts either the flat form `{"rows": R, "cols": C, "data":
    /// [..]}` or the nested form `{"rows_data": [[..], ..]}`. Both are
    /// validated at the boundary: zero-dimension matrices, a data length
    /// that disagrees with the declared dimensions, and ragged nested
    /// rows are structured decode errors, never downstream panics.
    fn from_json(json: &Json) -> Result<Self, Error> {
        if let Ok(nested) = json.field("rows_data") {
            let rows: Vec<Vec<u32>> = Vec::from_json(nested)?;
            let matrix =
                LoadMatrix::try_from_rows(&rows).map_err(|e| Error::decode(e.to_string()))?;
            if matrix.rows() == 0 || matrix.cols() == 0 {
                return Err(Error::decode("matrix has zero rows or columns"));
            }
            return Ok(matrix);
        }
        let rows = usize::from_json(json.field("rows")?)?;
        let cols = usize::from_json(json.field("cols")?)?;
        if rows == 0 || cols == 0 {
            return Err(Error::decode("matrix has zero rows or columns"));
        }
        let data: Vec<u32> = Vec::from_json(json.field("data")?)?;
        LoadMatrix::try_from_vec(rows, cols, data).map_err(|e| Error::decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip_preserves_layout() {
        let p = Partition::new(vec![Rect::new(0, 2, 0, 3), Rect::new(2, 4, 0, 3)]);
        let text = rectpart_json::to_string_pretty(&p);
        assert!(text.contains("\"rects\""));
        assert!(text.contains("\"r0\""));
        let back: Partition = rectpart_json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = LoadMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as u32);
        let back: LoadMatrix =
            rectpart_json::from_str(&rectpart_json::to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn axis_roundtrip() {
        for axis in [Axis::Rows, Axis::Cols] {
            let back: Axis =
                rectpart_json::from_str(&rectpart_json::to_string_pretty(&axis)).unwrap();
            assert_eq!(back, axis);
        }
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(rectpart_json::from_str::<Partition>("{\"rects\": []}").is_err());
        assert!(rectpart_json::from_str::<Axis>("\"Diagonal\"").is_err());
        assert!(
            rectpart_json::from_str::<LoadMatrix>("{\"rows\": 2, \"cols\": 2, \"data\": [1]}")
                .is_err()
        );
    }

    #[test]
    fn nested_rows_form_is_accepted_and_validated() {
        let m: LoadMatrix = rectpart_json::from_str("{\"rows_data\": [[1, 2], [3, 4]]}").unwrap();
        assert_eq!(m, LoadMatrix::from_vec(2, 2, vec![1, 2, 3, 4]));
        // Ragged nested rows are a structured decode error.
        let err =
            rectpart_json::from_str::<LoadMatrix>("{\"rows_data\": [[1, 2], [3]]}").unwrap_err();
        assert!(err.to_string().contains("row 1"), "{err}");
    }

    #[test]
    fn zero_dimension_matrices_are_rejected() {
        for text in [
            "{\"rows\": 0, \"cols\": 4, \"data\": []}",
            "{\"rows\": 4, \"cols\": 0, \"data\": []}",
            "{\"rows_data\": []}",
            "{\"rows_data\": [[], []]}",
        ] {
            assert!(
                rectpart_json::from_str::<LoadMatrix>(text).is_err(),
                "{text}"
            );
        }
    }
}
