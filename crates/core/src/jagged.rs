//! Jagged partition heuristics (§3.2): `JAG-PQ-HEUR` and the paper's new
//! `JAG-M-HEUR`.
//!
//! A jagged partition splits the *main* dimension into `P` stripes with an
//! optimal 1D algorithm; each stripe is then partitioned independently
//! along the auxiliary dimension. `P×Q`-way partitions give every stripe
//! the same `Q` processors; *m-way* partitions (the paper's contribution)
//! distribute the `m` processors across stripes proportionally to the
//! stripe loads, which Theorem 3 shows improves the worst case and §4
//! shows dominates in practice.

use rectpart_onedim::{nicol, Cuts, FnCost, SolveScratch};

use crate::cancel::Checker;
use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::prefix::{PrefixSum2D, View};
use crate::solution::Partition;
use crate::traits::{grid_dims, isqrt, Partitioner};

/// Orientation policy for jagged partitioners (paper §4.1): which
/// dimension is the main (striped) one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JaggedVariant {
    /// Stripes along rows (`-HOR`).
    Hor,
    /// Stripes along columns (`-VER`).
    Ver,
    /// Try both orientations, keep the better (`-BEST`). The paper's
    /// default for the jagged heuristics, since they are cheap enough to
    /// run twice.
    #[default]
    Best,
}

impl JaggedVariant {
    pub(crate) fn suffix(self) -> &'static str {
        match self {
            JaggedVariant::Hor => "HOR",
            JaggedVariant::Ver => "VER",
            JaggedVariant::Best => "BEST",
        }
    }

    /// Runs `f` for the orientation(s) selected and returns the partition
    /// with the lowest bottleneck.
    pub(crate) fn run(
        self,
        pfx: &PrefixSum2D,
        f: impl Fn(View<'_>) -> Partition + Sync,
    ) -> Partition {
        match self {
            JaggedVariant::Hor => f(pfx.view(Axis::Rows)),
            JaggedVariant::Ver => f(pfx.view(Axis::Cols)),
            JaggedVariant::Best => {
                // The two orientations are independent: evaluate them on
                // separate tasks (deterministic — both are pure).
                let (a, b) =
                    rectpart_parallel::join(|| f(pfx.view(Axis::Rows)), || f(pfx.view(Axis::Cols)));
                if a.lmax(pfx) <= b.lmax(pfx) {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Fallible twin of [`run`](JaggedVariant::run) for the
    /// cancellation-aware solve paths. Under `-BEST` both orientations
    /// still run (on separate tasks); if either observes the cancellation
    /// deadline the whole solve reports `Cancelled` — partial work is
    /// discarded wholesale, so the nondeterministic interleaving of the
    /// two tasks never leaks into a completed result.
    pub(crate) fn try_run(
        self,
        pfx: &PrefixSum2D,
        f: impl Fn(View<'_>) -> Result<Partition, RectpartError> + Sync,
    ) -> Result<Partition, RectpartError> {
        match self {
            JaggedVariant::Hor => f(pfx.view(Axis::Rows)),
            JaggedVariant::Ver => f(pfx.view(Axis::Cols)),
            JaggedVariant::Best => {
                let (a, b) =
                    rectpart_parallel::join(|| f(pfx.view(Axis::Rows)), || f(pfx.view(Axis::Cols)));
                let (a, b) = (a?, b?);
                Ok(if a.lmax(pfx) <= b.lmax(pfx) { a } else { b })
            }
        }
    }
}

/// `JAG-PQ-HEUR` (§3.2.1): optimal 1D split of the main-dimension
/// projection into `P` stripes, then an optimal 1D split of each stripe
/// into `Q` rectangles. A `(1 + ΔP/n1)(1 + ΔQ/n2)`-approximation on
/// positive matrices (Theorem 1).
#[derive(Clone, Debug, Default)]
pub struct JagPqHeur {
    /// Orientation policy.
    pub variant: JaggedVariant,
    /// Explicit `(P, Q)`; defaults to the near-square factorization of `m`.
    pub grid: Option<(usize, usize)>,
}

impl JagPqHeur {
    /// The paper's default configuration (`-BEST`).
    pub fn best() -> Self {
        Self::default()
    }
}

impl Partitioner for JagPqHeur {
    fn name(&self) -> String {
        format!("JAG-PQ-HEUR-{}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");
        self.variant.run(pfx, |view| {
            pq_heur_view(&view, m, p, q, Checker::OFF)
                .unwrap_or_else(|_| one_part_partition(&view, m))
        })
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");
        let check = Checker::active();
        self.variant
            .try_run(pfx, |view| pq_heur_view(&view, m, p, q, check))
    }
}

/// The `JAG-PQ-HEUR` core on a fixed orientation. The main-dimension cut
/// is the serial cancellation checkpoint; the per-stripe solves are
/// independent parallel quanta and run to completion once launched.
fn pq_heur_view(
    view: &View<'_>,
    m: usize,
    p: usize,
    q: usize,
    check: Checker,
) -> Result<Partition, RectpartError> {
    let main = main_cuts(view, p, check)?;
    check.check()?;
    let stripes: Vec<(usize, usize)> = main.intervals().filter(|(a, b)| a < b).collect();
    // Stripes are independent 1D problems (paper §3.2.1): fan out.
    let rects: Vec<Rect> =
        rectpart_parallel::flat_map_slice(&stripes, |&(s0, s1)| stripe_rects(view, s0, s1, q));
    Ok(Partition::with_parts(rects, m))
}

/// Discharges the unreachable `Err` arm of the infallible entry points:
/// with [`Checker::OFF`] the checked cores can never cancel, but the
/// fallback must still be a valid partition rather than a panic.
fn one_part_partition(view: &View<'_>, m: usize) -> Partition {
    Partition::with_parts(vec![view.rect(0, view.n_main(), 0, view.n_aux())], m)
}

/// Stripe-count policy for [`JagMHeur`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StripeCount {
    /// `P = ⌊√m⌋` — the paper's practical choice (§3.2.2: the Theorem 4
    /// optimum depends on Δ, which extremal cells make unreliable).
    #[default]
    SqrtM,
    /// Fixed stripe count (used by the figure-9 sensitivity sweep).
    Fixed(usize),
    /// The Theorem 4 continuous optimum
    /// `P = m(√(Δ(Δ+n2)) − Δ)/n2`, rounded and clamped; falls back to
    /// `⌊√m⌋` when Δ is undefined (matrix contains zeros).
    TheoremFour,
}

/// `JAG-M-HEUR` (§3.2.2, new in the paper): optimal 1D split of the main
/// projection into `P` stripes, then each stripe `S` receives
/// `QS = ⌈(m−P)·L(S)/L⌉` processors (plus a greedy distribution of the
/// remainder to the stripes maximizing load-per-processor) and is split
/// optimally into `QS` rectangles.
#[derive(Clone, Debug, Default)]
pub struct JagMHeur {
    /// Orientation policy.
    pub variant: JaggedVariant,
    /// Stripe-count policy.
    pub stripes: StripeCount,
}

impl JagMHeur {
    /// The paper's default configuration (`-BEST`, `P = ⌊√m⌋`).
    pub fn best() -> Self {
        Self::default()
    }

    /// Fixed stripe count, `-BEST` orientation.
    pub fn with_stripes(p: usize) -> Self {
        Self {
            variant: JaggedVariant::Best,
            stripes: StripeCount::Fixed(p),
        }
    }

    fn resolve_p(&self, pfx: &PrefixSum2D, view: &View<'_>, m: usize) -> usize {
        let p = match self.stripes {
            StripeCount::SqrtM => isqrt(m).max(1),
            StripeCount::Fixed(p) => p,
            StripeCount::TheoremFour => match pfx.delta() {
                Some(delta) => {
                    crate::bounds::jag_m_heur_best_p(delta, m, view.n_aux()).round() as usize
                }
                None => isqrt(m).max(1),
            },
        };
        p.clamp(1, m.min(view.n_main().max(1)))
    }
}

impl Partitioner for JagMHeur {
    fn name(&self) -> String {
        let stripes = match self.stripes {
            StripeCount::SqrtM => String::new(),
            StripeCount::Fixed(p) => format!("-P{p}"),
            StripeCount::TheoremFour => "-THM4".into(),
        };
        format!("JAG-M-HEUR-{}{stripes}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        self.variant.run(pfx, |view| {
            let p = self.resolve_p(pfx, &view, m);
            Partition::with_parts(jag_m_heur_view(&view, m, p), m)
        })
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let check = Checker::active();
        self.variant.try_run(pfx, |view| {
            let p = self.resolve_p(pfx, &view, m);
            let rects = try_jag_m_heur_view(&view, m, p, check)?;
            Ok(Partition::with_parts(rects, m))
        })
    }
}

/// The `JAG-M-HEUR` core on a fixed orientation, returning the raw
/// rectangles; also used by `JAG-M-OPT` to seed its upper bound.
pub(crate) fn jag_m_heur_view(view: &View<'_>, m: usize, p: usize) -> Vec<Rect> {
    try_jag_m_heur_view(view, m, p, Checker::OFF)
        .unwrap_or_else(|_| vec![view.rect(0, view.n_main(), 0, view.n_aux())])
}

/// Cancellation-aware `JAG-M-HEUR` core: the main-dimension cut and the
/// inter-phase boundary poll the deadline; the per-stripe solves are
/// uninterruptible parallel quanta.
pub(crate) fn try_jag_m_heur_view(
    view: &View<'_>,
    m: usize,
    p: usize,
    check: Checker,
) -> Result<Vec<Rect>, RectpartError> {
    let main = main_cuts(view, p, check)?;
    check.check()?;
    let stripes: Vec<(usize, usize)> = main.intervals().filter(|(a, b)| a < b).collect();
    let loads: Vec<u64> = stripes
        .iter()
        .map(|&(s0, s1)| view.load(s0, s1, 0, view.n_aux()))
        .collect();
    let procs = allocate_processors(&loads, m, p.min(m));
    // Stripes are independent 1D problems (paper §3.2.1): fan out; the
    // in-order collect keeps the processor numbering deterministic.
    let tasks: Vec<((usize, usize), usize)> = stripes.into_iter().zip(procs).collect();
    Ok(rectpart_parallel::flat_map_slice(
        &tasks,
        |&((s0, s1), qs)| stripe_rects(view, s0, s1, qs),
    ))
}

/// Optimal 1D cuts of the main-dimension projection (no materialized
/// projection: interval loads come straight from Γ, §3.2.1). Polls the
/// cancellation deadline once per candidate part when `check` is live.
fn main_cuts(view: &View<'_>, p: usize, check: Checker) -> Result<Cuts, RectpartError> {
    let n_aux = view.n_aux();
    let cost = FnCost::additive(view.n_main(), |a, b| view.load(a, b, 0, n_aux));
    let mut scratch = SolveScratch::new();
    Ok(check.nicol_in(&cost, p, &mut scratch)?.cuts)
}

/// Optimally partitions stripe `[s0, s1)` into `q` rectangles along the
/// auxiliary dimension.
fn stripe_rects(view: &View<'_>, s0: usize, s1: usize, q: usize) -> Vec<Rect> {
    let cost = FnCost::additive(view.n_aux(), |a, b| view.load(s0, s1, a, b));
    let cuts = nicol(&cost, q).cuts;
    cuts.intervals()
        .filter(|(a0, a1)| a0 < a1)
        .map(|(a0, a1)| view.rect(s0, s1, a0, a1))
        .collect()
}

/// Distributes `m` processors over stripes proportionally to their loads
/// (paper §3.2.2): `QS = max(1, ⌈(m−P)·loadS/total⌉)`, then adjusts to
/// sum exactly to `m` by greedily adding to (or removing from) the
/// stripe with the highest (lowest) load per processor. `p` is the
/// stripe count whose worth of processors is held back before the
/// proportional rounding (the paper's `m − P` trick that makes the
/// ceilings safe).
///
/// Exposed for reuse by higher-dimensional jagged partitioners.
pub fn allocate_processors(loads: &[u64], m: usize, p: usize) -> Vec<usize> {
    let stripes = loads.len();
    assert!(stripes <= m, "more stripes than processors");
    if stripes == 0 {
        return Vec::new();
    }
    let total: u64 = loads.iter().sum();
    let spare = (m - p.min(m)) as u128;
    let mut procs: Vec<usize> = loads
        .iter()
        .map(|&l| {
            if total == 0 {
                1
            } else {
                let q = (spare * l as u128).div_ceil(total as u128) as usize;
                q.max(1)
            }
        })
        .collect();
    let mut sum: usize = procs.iter().sum();
    // Trim (only possible when zero-load stripes were forced to 1 or the
    // ceilings collided): remove from the stripe with the lowest
    // load-per-processor after removal.
    while sum > m {
        let victim = (0..stripes)
            .filter(|&s| procs[s] > 1)
            .min_by(|&a, &b| {
                let ka = loads[a] as u128 * (procs[b] - 1) as u128;
                let kb = loads[b] as u128 * (procs[a] - 1) as u128;
                ka.cmp(&kb)
            })
            // lint:allow(panic) -- invariant: sum > m >= stripes, so some stripe still holds at least two processors
            .expect("invariant: sum > m leaves a stripe with procs > 1");
        procs[victim] -= 1;
        sum -= 1;
    }
    // Distribute the leftovers to the stripe with the highest load per
    // currently assigned processor (paper §3.2.2).
    while sum < m {
        let target = (0..stripes)
            .max_by(|&a, &b| {
                let ka = loads[a] as u128 * procs[b] as u128;
                let kb = loads[b] as u128 * procs[a] as u128;
                ka.cmp(&kb)
            })
            // lint:allow(panic) -- invariant: stripes >= 1, so the max over stripe indices exists
            .expect("invariant: at least one stripe to receive leftovers");
        procs[target] += 1;
        sum += 1;
    }
    procs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LoadMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(1..100)
        }))
    }

    #[test]
    fn pq_heur_produces_valid_partitions() {
        let pfx = random_pfx(24, 18, 1);
        for m in [1, 2, 4, 9, 12, 16, 25] {
            for variant in [JaggedVariant::Hor, JaggedVariant::Ver, JaggedVariant::Best] {
                let algo = JagPqHeur {
                    variant,
                    grid: None,
                };
                let part = algo.partition(&pfx, m);
                assert!(part.validate(&pfx).is_ok(), "m={m} {variant:?}");
                assert_eq!(part.parts(), m);
            }
        }
    }

    #[test]
    fn m_heur_produces_valid_partitions() {
        let pfx = random_pfx(24, 18, 2);
        for m in [1, 2, 5, 9, 13, 16, 30] {
            for variant in [JaggedVariant::Hor, JaggedVariant::Ver, JaggedVariant::Best] {
                let algo = JagMHeur {
                    variant,
                    stripes: StripeCount::SqrtM,
                };
                let part = algo.partition(&pfx, m);
                assert!(part.validate(&pfx).is_ok(), "m={m} {variant:?}");
            }
        }
    }

    #[test]
    fn best_variant_picks_minimum() {
        let pfx = random_pfx(16, 48, 3);
        let hor = JagPqHeur {
            variant: JaggedVariant::Hor,
            grid: None,
        }
        .partition(&pfx, 8)
        .lmax(&pfx);
        let ver = JagPqHeur {
            variant: JaggedVariant::Ver,
            grid: None,
        }
        .partition(&pfx, 8)
        .lmax(&pfx);
        let best = JagPqHeur::best().partition(&pfx, 8).lmax(&pfx);
        assert_eq!(best, hor.min(ver));
    }

    #[test]
    fn m_heur_beats_or_matches_pq_heur_on_skewed_instances() {
        // Strong diagonal concentration rewards uneven per-stripe counts.
        let mat = LoadMatrix::from_fn(32, 32, |r, c| {
            let d = (r as i64 - c as i64).unsigned_abs() as u32;
            1 + 1000 / (1 + d)
        });
        let pfx = PrefixSum2D::new(&mat);
        let mut wins = 0;
        let mut ties = 0;
        for m in [16, 25, 36, 49, 64] {
            let pq = JagPqHeur::best().partition(&pfx, m).lmax(&pfx);
            let mw = JagMHeur::best().partition(&pfx, m).lmax(&pfx);
            if mw < pq {
                wins += 1;
            } else if mw == pq {
                ties += 1;
            }
        }
        assert!(
            wins + ties >= 4,
            "m-way should rarely lose to PxQ (wins={wins}, ties={ties})"
        );
    }

    #[test]
    fn allocate_processors_proportional() {
        let procs = allocate_processors(&[100, 100, 200], 8, 3);
        assert_eq!(procs.iter().sum::<usize>(), 8);
        assert!(procs[2] >= procs[0]);
        assert!(procs.iter().all(|&q| q >= 1));
    }

    #[test]
    fn allocate_processors_zero_load_stripes() {
        let procs = allocate_processors(&[0, 50, 0], 5, 3);
        assert_eq!(procs.iter().sum::<usize>(), 5);
        assert!(procs.iter().all(|&q| q >= 1));
        assert_eq!(procs[1], 3);
    }

    #[test]
    fn allocate_processors_all_zero() {
        let procs = allocate_processors(&[0, 0], 4, 2);
        assert_eq!(procs.iter().sum::<usize>(), 4);
    }

    #[test]
    fn allocate_processors_exact_fit() {
        let procs = allocate_processors(&[10, 10, 10, 10], 4, 4);
        assert_eq!(procs, vec![1, 1, 1, 1]);
    }

    #[test]
    fn theorem_guarantee_holds_on_positive_matrices() {
        use crate::bounds::{jag_m_heur_ratio, jag_pq_heur_ratio};
        let pfx = random_pfx(40, 40, 7);
        let delta = pfx.delta().unwrap();
        for m in [9, 16, 25] {
            let (p, q) = grid_dims(m);
            let pq = JagPqHeur::best().partition(&pfx, m);
            let ratio = pq.lmax(&pfx) as f64 / pfx.average_load(m);
            let bound = jag_pq_heur_ratio(delta, p, q, 40, 40);
            assert!(ratio <= bound + 1e-9, "PQ m={m}: {ratio} > {bound}");

            let p = isqrt(m);
            if p < m {
                let mw = JagMHeur::best().partition(&pfx, m);
                let ratio = mw.lmax(&pfx) as f64 / pfx.average_load(m);
                let bound = jag_m_heur_ratio(delta, p, m, 40, 40);
                assert!(ratio <= bound + 1e-9, "M m={m}: {ratio} > {bound}");
            }
        }
    }

    #[test]
    fn stripe_count_policies() {
        let pfx = random_pfx(30, 30, 11);
        for stripes in [
            StripeCount::SqrtM,
            StripeCount::Fixed(3),
            StripeCount::Fixed(12),
            StripeCount::TheoremFour,
        ] {
            let algo = JagMHeur {
                variant: JaggedVariant::Best,
                stripes,
            };
            let part = algo.partition(&pfx, 12);
            assert!(part.validate(&pfx).is_ok(), "{stripes:?}");
        }
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(JagPqHeur::best().name(), "JAG-PQ-HEUR-BEST");
        assert_eq!(JagMHeur::best().name(), "JAG-M-HEUR-BEST");
        assert_eq!(JagMHeur::with_stripes(7).name(), "JAG-M-HEUR-BEST-P7");
    }
}
