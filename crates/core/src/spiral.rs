//! Spiral partitions (§3.4, figure 1(e)).
//!
//! The paper observes that *any* recursively defined pattern with
//! polynomially many choices per level admits an optimal
//! dynamic-programming algorithm of the same flavour as the hierarchical
//! one, and that each such DP induces an average-load-relaxed heuristic
//! à la `HIER-RELAXED`. This module instantiates that observation for
//! the spiral pattern: at every level a full-width stripe is peeled off
//! one side of the remaining rectangle — sides rotating top → right →
//! bottom → left — given `j` processors, and split optimally along its
//! length; the remainder recurses with the next side.
//!
//! * [`SpiralRelaxed`] — the induced heuristic (`SPIRAL-RELAXED`),
//!   `O(m² log max(n1, n2))` like `HIER-RELAXED`;
//! * [`spiral_opt_value`] — the exact DP, memoized over
//!   `(rectangle, m, side)`; a small-instance oracle exactly like
//!   [`crate::hier_opt`].

use std::collections::HashMap;

use rectpart_onedim::{nicol, FnCost};

use crate::geometry::Rect;
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;
use crate::traits::Partitioner;

/// The side the next stripe is peeled from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Peel rows from the top.
    Top,
    /// Peel columns from the right.
    Right,
    /// Peel rows from the bottom.
    Bottom,
    /// Peel columns from the left.
    Left,
}

impl Side {
    /// Spiral rotation order.
    pub fn next(self) -> Side {
        match self {
            Side::Top => Side::Right,
            Side::Right => Side::Bottom,
            Side::Bottom => Side::Left,
            Side::Left => Side::Top,
        }
    }

    /// Splits `rect` by peeling `depth` cells from this side; returns
    /// `(stripe, rest)`. `depth` must not exceed the side's extent.
    fn peel(self, rect: &Rect, depth: usize) -> (Rect, Rect) {
        match self {
            Side::Top => (
                Rect::new(rect.r0, rect.r0 + depth, rect.c0, rect.c1),
                Rect::new(rect.r0 + depth, rect.r1, rect.c0, rect.c1),
            ),
            Side::Bottom => (
                Rect::new(rect.r1 - depth, rect.r1, rect.c0, rect.c1),
                Rect::new(rect.r0, rect.r1 - depth, rect.c0, rect.c1),
            ),
            Side::Left => (
                Rect::new(rect.r0, rect.r1, rect.c0, rect.c0 + depth),
                Rect::new(rect.r0, rect.r1, rect.c0 + depth, rect.c1),
            ),
            Side::Right => (
                Rect::new(rect.r0, rect.r1, rect.c1 - depth, rect.c1),
                Rect::new(rect.r0, rect.r1, rect.c0, rect.c1 - depth),
            ),
        }
    }

    /// Extent available for peeling from this side.
    fn max_depth(self, rect: &Rect) -> usize {
        match self {
            Side::Top | Side::Bottom => rect.height(),
            Side::Left | Side::Right => rect.width(),
        }
    }
}

/// `SPIRAL-RELAXED` — the average-load-relaxed spiral heuristic. At each
/// node the peel depth `t` and the stripe's processor share `j` minimize
/// `max(L(stripe)/j, L(rest)/(m−j))`; the stripe is then split optimally
/// into `j` rectangles along its length (a 1D problem), and the rest
/// recurses with the rotated side.
#[derive(Clone, Debug)]
pub struct SpiralRelaxed {
    /// First side to peel (the figure's spirals start at the top).
    pub start: Side,
    /// Same near-tie stabilization as
    /// [`crate::HierRelaxed::balance_bias`].
    pub balance_bias: f64,
}

impl Default for SpiralRelaxed {
    fn default() -> Self {
        Self {
            start: Side::Top,
            balance_bias: 1e-3,
        }
    }
}

impl Partitioner for SpiralRelaxed {
    fn name(&self) -> String {
        "SPIRAL-RELAXED".into()
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let mut rects = Vec::with_capacity(m);
        let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
        self.recurse(pfx, full, m, self.start, &mut rects);
        debug_assert_eq!(rects.len(), m);
        Partition::new(rects)
    }
}

impl SpiralRelaxed {
    fn recurse(&self, pfx: &PrefixSum2D, rect: Rect, m: usize, side: Side, out: &mut Vec<Rect>) {
        if m == 1 || rect.area() <= 1 {
            out.push(rect);
            out.extend(std::iter::repeat_n(Rect::EMPTY, m - 1));
            return;
        }
        let mut side = side;
        if side.max_depth(&rect) < 2 {
            // This side cannot be peeled without consuming the whole
            // rectangle; rotate once (the perpendicular extent is ≥ 2
            // because the area is ≥ 2).
            side = side.next();
        }
        let depth_max = side.max_depth(&rect);
        // A peeled stripe is subdivided 1D along its length, so it can
        // keep at most that many processors busy; offering it more only
        // idles them (and at large m would starve the spiral's interior).
        let stripe_len = match side {
            Side::Top | Side::Bottom => rect.width(),
            Side::Left | Side::Right => rect.height(),
        };
        let j_cap = stripe_len.min(m - 1);
        let mut best: Option<(f64, usize, usize)> = None;
        for step in 0..m - 1 {
            // Balanced-outward processor shares, as in HIER-RELAXED.
            let half = m / 2;
            let j = if step % 2 == 0 {
                half - step / 2
            } else {
                half + step.div_ceil(2)
            };
            if j == 0 || j >= m || j > j_cap {
                continue;
            }
            // Peel depth balancing L(stripe)/j against L(rest)/(m-j):
            // stripe load grows with depth, rest load shrinks — bisect the
            // crossing.
            let (mut a, mut b) = (1usize, depth_max - 1);
            while a < b {
                let mid = a + (b - a) / 2;
                let (stripe, rest) = side.peel(&rect, mid);
                if pfx.load(&stripe) as u128 * (m - j) as u128
                    >= pfx.load(&rest) as u128 * j as u128
                {
                    b = mid;
                } else {
                    a = mid + 1;
                }
            }
            for t in [a, (a - 1).max(1)] {
                let (stripe, rest) = side.peel(&rect, t);
                // Granularity-aware stripe estimate: a length-L stripe
                // split into j intervals has some interval of at least
                // ⌈L/j⌉ cells, so the average-per-processor relaxation is
                // sharpened by the ⌈L/j⌉-cells-at-mean-density floor —
                // without it, thin stripes with j ≈ L look perfect while
                // their realizable 1D bottleneck is ~2× the average.
                let stripe_load = pfx.load(&stripe) as f64;
                let granularity = stripe_load / stripe_len as f64 * stripe_len.div_ceil(j) as f64;
                let key = (stripe_load / j as f64)
                    .max(granularity)
                    .max(pfx.load(&rest) as f64 / (m - j) as f64);
                if best.is_none_or(|(bk, ..)| key < bk * (1.0 - self.balance_bias)) {
                    best = Some((key, t, j));
                }
            }
        }
        // lint:allow(panic) -- invariant: recurse is only entered with area >= 2, and any such rect admits a 1-deep peel
        let (_, t, j) = best.expect("invariant: area >= 2 always admits a peel");
        let (stripe, rest) = side.peel(&rect, t);
        split_stripe(pfx, &stripe, side, j, out);
        self.recurse(pfx, rest, m - j, side.next(), out);
    }
}

/// Optimally splits a peeled stripe into `j` rectangles along its length
/// with the exact 1D solver.
fn split_stripe(pfx: &PrefixSum2D, stripe: &Rect, side: Side, j: usize, out: &mut Vec<Rect>) {
    let along_cols = matches!(side, Side::Top | Side::Bottom);
    let n = if along_cols {
        stripe.width()
    } else {
        stripe.height()
    };
    let cost = FnCost::additive(n, |a, b| {
        if along_cols {
            pfx.load4(stripe.r0, stripe.r1, stripe.c0 + a, stripe.c0 + b)
        } else {
            pfx.load4(stripe.r0 + a, stripe.r0 + b, stripe.c0, stripe.c1)
        }
    });
    let cuts = nicol(&cost, j).cuts;
    let mut emitted = 0;
    for (a, b) in cuts.intervals() {
        let rect = if along_cols {
            Rect::new(stripe.r0, stripe.r1, stripe.c0 + a, stripe.c0 + b)
        } else {
            Rect::new(stripe.r0 + a, stripe.r0 + b, stripe.c0, stripe.c1)
        };
        out.push(rect);
        emitted += 1;
    }
    debug_assert_eq!(emitted, j);
}

type SpiralKey = (usize, usize, usize, usize, usize, Side);

/// Exact optimal spiral-partition bottleneck (small-instance oracle;
/// memoized over `(rectangle, m, side)` states).
pub fn spiral_opt_value(pfx: &PrefixSum2D, m: usize, start: Side) -> u64 {
    assert!(m >= 1);
    let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
    let mut memo = HashMap::new();
    solve(pfx, &full, m, start, &mut memo)
}

fn solve(
    pfx: &PrefixSum2D,
    rect: &Rect,
    m: usize,
    side: Side,
    memo: &mut HashMap<SpiralKey, u64>,
) -> u64 {
    if m == 1 || rect.area() <= 1 {
        return pfx.load(rect);
    }
    let mut side = side;
    if side.max_depth(rect) < 2 {
        side = side.next();
    }
    let key = (rect.r0, rect.r1, rect.c0, rect.c1, m, side);
    if let Some(&v) = memo.get(&key) {
        return v;
    }
    let mut best = u64::MAX;
    for t in 1..side.max_depth(rect) {
        let (stripe, rest) = side.peel(rect, t);
        for j in 1..m {
            let stripe_opt = stripe_opt_value(pfx, &stripe, side, j);
            if stripe_opt >= best {
                // Larger j only helps the stripe; deeper t only grows it.
                continue;
            }
            let rest_opt = solve(pfx, &rest, m - j, side.next(), memo);
            best = best.min(stripe_opt.max(rest_opt));
        }
    }
    memo.insert(key, best);
    best
}

/// Optimal 1D bottleneck of a stripe split along its length.
fn stripe_opt_value(pfx: &PrefixSum2D, stripe: &Rect, side: Side, j: usize) -> u64 {
    let along_cols = matches!(side, Side::Top | Side::Bottom);
    let n = if along_cols {
        stripe.width()
    } else {
        stripe.height()
    };
    let cost = FnCost::additive(n, |a, b| {
        if along_cols {
            pfx.load4(stripe.r0, stripe.r1, stripe.c0 + a, stripe.c0 + b)
        } else {
            pfx.load4(stripe.r0 + a, stripe.r0 + b, stripe.c0, stripe.c1)
        }
    });
    nicol(&cost, j).bottleneck
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LoadMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(0..40)
        }))
    }

    #[test]
    fn produces_valid_partitions() {
        for seed in 0..5 {
            let pfx = random_pfx(20, 26, seed);
            for m in [1, 2, 3, 5, 8, 16, 31] {
                let p = SpiralRelaxed::default().partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "seed={seed} m={m}");
                assert_eq!(p.parts(), m);
                assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
            }
        }
    }

    #[test]
    fn oracle_bounds_heuristic() {
        for seed in 0..4 {
            let pfx = random_pfx(7, 7, 100 + seed);
            for m in [2, 3, 4] {
                let opt = spiral_opt_value(&pfx, m, Side::Top);
                let heur = SpiralRelaxed::default().partition(&pfx, m).lmax(&pfx);
                assert!(heur >= opt, "seed={seed} m={m}: {heur} < {opt}");
                assert!(opt >= pfx.lower_bound(m));
            }
        }
    }

    #[test]
    fn spiral_shape_rotates_sides() {
        // On a uniform matrix with m = 4 and generous geometry, the four
        // rectangles must touch the four different sides in spiral order.
        let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(16, 16, |_, _| 1));
        let p = SpiralRelaxed::default().partition(&pfx, 4);
        assert!(p.validate(&pfx).is_ok());
        let rects = p.rects();
        assert_eq!(rects[0].r0, 0, "first stripe peels from the top");
        assert_eq!(rects[1].c1, 16, "second stripe peels from the right");
    }

    #[test]
    fn thin_rectangles_rotate_to_a_peelable_side() {
        let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(1, 32, |_, c| (c + 1) as u32));
        for m in [2, 4, 7] {
            let p = SpiralRelaxed::default().partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok(), "m={m}");
            assert!(p.active_parts() > 1);
        }
    }

    #[test]
    fn single_cell_many_processors() {
        let pfx = PrefixSum2D::new(&LoadMatrix::from_vec(1, 1, vec![9]));
        let p = SpiralRelaxed::default().partition(&pfx, 3);
        assert!(p.validate(&pfx).is_ok());
        assert_eq!(p.lmax(&pfx), 9);
    }

    #[test]
    fn side_rotation_cycle() {
        assert_eq!(Side::Top.next(), Side::Right);
        assert_eq!(Side::Right.next(), Side::Bottom);
        assert_eq!(Side::Bottom.next(), Side::Left);
        assert_eq!(Side::Left.next(), Side::Top);
    }

    #[test]
    fn peel_geometry() {
        let r = Rect::new(2, 10, 3, 9);
        let (s, rest) = Side::Top.peel(&r, 2);
        assert_eq!(s, Rect::new(2, 4, 3, 9));
        assert_eq!(rest, Rect::new(4, 10, 3, 9));
        let (s, rest) = Side::Right.peel(&r, 3);
        assert_eq!(s, Rect::new(2, 10, 6, 9));
        assert_eq!(rest, Rect::new(2, 10, 3, 6));
        let (s, _) = Side::Bottom.peel(&r, 1);
        assert_eq!(s, Rect::new(9, 10, 3, 9));
        let (s, _) = Side::Left.peel(&r, 2);
        assert_eq!(s, Rect::new(2, 10, 3, 5));
    }
}
