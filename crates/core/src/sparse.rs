//! Sparse (CSR-like) prefix sums for zero-heavy load matrices.
//!
//! Dense Γ spends `8·(rows+1)·(cols+1)` bytes no matter how many cells
//! are zero; the SLAC-style projected meshes of the paper's experiments
//! are mostly zeros, and *Rectangle Tiling Binary Arrays* (arXiv
//! 2007.14142) shows how much structure that sparsity carries. A
//! [`SparsePrefixSum`] stores, per row, only the maximal **runs** of
//! consecutive nonzero cells, each cell carrying its within-row
//! cumulative prefix. A rectangle query sums per-row run lookups; the
//! two common degenerate shapes — full-width stripes (the main-dimension
//! projection every jagged solver cuts first) and full-height stripes —
//! are answered in O(1) from dense per-row / per-column prefix borders.
//!
//! Queries return **bit-identical** values to the dense backend: both
//! compute exact `u64` sums of the same non-negative cells. Construction
//! surfaces overflow as [`RectpartError::Overflow`] under exactly the
//! same condition as the dense path (the grand total reaching 2⁶⁴), and
//! honors the same fault-injection gate.

use crate::error::RectpartError;
use crate::matrix::LoadMatrix;
use crate::prefix::GammaBackend;

/// CSR-like sparse Γ: per-row nonzero prefix runs.
///
/// Storage is ~16 bytes per nonzero cell in the worst case (isolated
/// nonzeros) plus small dense borders, versus 8 bytes per *cell* for the
/// dense array — a ≥5× saving at ≥90% zeros.
///
/// ```
/// use rectpart_core::{GammaBackend, LoadMatrix, Rect, SparsePrefixSum};
///
/// let m = LoadMatrix::from_fn(8, 8, |r, c| if (r + c) % 4 == 0 { 3 } else { 0 });
/// let s = SparsePrefixSum::try_new(&m).unwrap();
/// assert_eq!(s.sum(&Rect::new(0, 8, 0, 8)), m.total());
/// assert_eq!(s.sum(&Rect::new(1, 3, 2, 7)), 9);
/// ```
#[derive(Clone, Debug)]
pub struct SparsePrefixSum {
    rows: usize,
    cols: usize,
    /// `rows + 1` run-index bounds: row `r` owns runs
    /// `row_ptr[r]..row_ptr[r+1]`.
    row_ptr: Vec<u32>,
    /// First column of each run.
    run_col0: Vec<u32>,
    /// `runs + 1` offsets into `vals`: run `i` owns
    /// `vals[run_val0[i]..run_val0[i+1]]` (runs are laid out
    /// contiguously, so each run's end is the next run's start).
    run_val0: Vec<u32>,
    /// Within-row *inclusive* prefix sum at each nonzero cell, in row
    /// order (zeros between runs contribute nothing, so one running sum
    /// per row serves every run of that row).
    vals: Vec<u64>,
    /// `rows + 1` prefix of full row totals (`Γ[r][cols]`): O(1)
    /// full-width queries.
    row_pfx: Vec<u64>,
    /// `cols + 1` full-height column prefix (`Γ[rows][c]`): O(1)
    /// full-height queries.
    col_pfx: Vec<u64>,
    total: u64,
    max_cell: u32,
    min_cell: u32,
}

impl SparsePrefixSum {
    /// Builds the sparse representation, surfacing accumulation overflow
    /// as [`RectpartError::Overflow`] exactly like the dense
    /// [`PrefixSum2D`](crate::PrefixSum2D) path. Also errs on matrices
    /// whose cell count does not fit the `u32` run indices (≥ 2³² cells
    /// — build Γ dense instead; 4-byte indices buy nothing there).
    ///
    /// Construction is a single serial O(cells) scan touching O(nnz)
    /// memory, so the result is trivially identical at any thread count.
    pub fn try_new(a: &LoadMatrix) -> Result<Self, RectpartError> {
        rectpart_obs::incr(rectpart_obs::Counter::GammaBuilds);
        let _timer = rectpart_obs::phase(rectpart_obs::Phase::Gamma);
        rectpart_obs::work::charge((a.rows() * a.cols()) as u64 + 1);
        #[cfg(feature = "faultinject")]
        if rectpart_obs::fault::gamma_should_overflow() {
            return Err(RectpartError::Overflow);
        }
        Self::build(a)
    }

    /// `true` when the matrix shape fits this backend's `u32` indices.
    pub(crate) fn indexable(rows: usize, cols: usize) -> bool {
        rows < u32::MAX as usize
            && cols < u32::MAX as usize
            && rows.saturating_mul(cols) < u32::MAX as usize
    }

    /// The scan proper; also used by the [`PrefixSum2D`] facade dispatch
    /// (which performs its own instrumentation and fault gating).
    ///
    /// [`PrefixSum2D`]: crate::PrefixSum2D
    pub(crate) fn build(a: &LoadMatrix) -> Result<Self, RectpartError> {
        let rows = a.rows();
        let cols = a.cols();
        if !Self::indexable(rows, cols) {
            return Err(RectpartError::Overflow);
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        let mut run_col0: Vec<u32> = Vec::new();
        let mut run_val0: Vec<u32> = Vec::new();
        let mut vals: Vec<u64> = Vec::new();
        let mut row_pfx = Vec::with_capacity(rows + 1);
        row_pfx.push(0u64);
        let mut col_pfx = vec![0u64; cols + 1];
        let mut max_cell = 0u32;
        let mut min_nonzero = u32::MAX;
        let mut running = 0u64;
        for r in 0..rows {
            let src = a.row(r);
            let mut row_sum = 0u64;
            let mut in_run = false;
            for (c, &v) in src.iter().enumerate() {
                if v == 0 {
                    in_run = false;
                    continue;
                }
                max_cell = max_cell.max(v);
                min_nonzero = min_nonzero.min(v);
                if !in_run {
                    run_col0.push(c as u32);
                    run_val0.push(vals.len() as u32);
                    in_run = true;
                }
                row_sum = row_sum
                    .checked_add(v as u64)
                    .ok_or(RectpartError::Overflow)?;
                vals.push(row_sum);
                // Per-column totals feed the full-height border.
                col_pfx[c + 1] = col_pfx[c + 1]
                    .checked_add(v as u64)
                    .ok_or(RectpartError::Overflow)?;
            }
            row_ptr.push(run_col0.len() as u32);
            running = running
                .checked_add(row_sum)
                .ok_or(RectpartError::Overflow)?;
            row_pfx.push(running);
        }
        run_val0.push(vals.len() as u32);
        // Column totals → full-height prefix Γ[rows][c].
        for c in 1..=cols {
            let prev = col_pfx[c - 1];
            col_pfx[c] = prev
                .checked_add(col_pfx[c])
                .ok_or(RectpartError::Overflow)?;
        }
        let cells = rows * cols;
        let nnz = vals.len();
        let min_cell = if cells == 0 || nnz < cells {
            0
        } else {
            min_nonzero
        };
        let max_cell = if cells == 0 { 0 } else { max_cell };
        rectpart_obs::add(
            rectpart_obs::Counter::SparseGammaRuns,
            run_col0.len() as u64,
        );
        Ok(Self {
            rows,
            cols,
            row_ptr,
            run_col0,
            run_val0,
            vals,
            row_pfx,
            col_pfx,
            total: running,
            max_cell,
            min_cell,
        })
    }

    /// Rebuilds the structure around a set of replaced rows: changed
    /// rows are rescanned from `a` (which must already hold the new
    /// contents), unchanged rows' run storage is spliced over verbatim —
    /// within-row prefixes depend on nothing outside their row — and the
    /// dense borders are recomputed in the same accumulation order as
    /// [`build`](Self::build), so the result is bit-identical to a fresh
    /// build of the updated matrix. `changed` must be sorted and
    /// de-duplicated; `max_cell`/`min_cell` are supplied by the caller
    /// (the facade tracks them via `RowExtrema`).
    ///
    /// Charges [`SparseGammaRuns`](rectpart_obs::Counter::SparseGammaRuns)
    /// only for the rescanned rows' runs — spliced runs are reused, not
    /// rebuilt. The caller must have pre-checked that the new grand
    /// total fits `u64`; every internal sum is bounded by it, so the
    /// checked adds below cannot fail after that check.
    pub(crate) fn patched_rows(
        &self,
        a: &LoadMatrix,
        changed: &[usize],
        max_cell: u32,
        min_cell: u32,
    ) -> Result<Self, RectpartError> {
        let rows = self.rows;
        let cols = self.cols;
        debug_assert!(changed.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(a.rows() == rows && a.cols() == cols);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        let mut run_col0: Vec<u32> = Vec::with_capacity(self.run_col0.len());
        let mut run_val0: Vec<u32> = Vec::with_capacity(self.run_val0.len());
        let mut vals: Vec<u64> = Vec::with_capacity(self.vals.len());
        let mut row_pfx = Vec::with_capacity(rows + 1);
        row_pfx.push(0u64);
        let mut col_pfx = vec![0u64; cols + 1];
        let mut running = 0u64;
        let mut next = 0usize;
        let mut new_runs = 0u64;
        for r in 0..rows {
            if next < changed.len() && changed[next] == r {
                next += 1;
                // Rescan the replaced row exactly like `build` does.
                let src = a.row(r);
                let mut row_sum = 0u64;
                let mut in_run = false;
                for (c, &v) in src.iter().enumerate() {
                    if v == 0 {
                        in_run = false;
                        continue;
                    }
                    if !in_run {
                        run_col0.push(c as u32);
                        run_val0.push(vals.len() as u32);
                        in_run = true;
                        new_runs += 1;
                    }
                    row_sum = row_sum
                        .checked_add(v as u64)
                        .ok_or(RectpartError::Overflow)?;
                    vals.push(row_sum);
                    col_pfx[c + 1] = col_pfx[c + 1]
                        .checked_add(v as u64)
                        .ok_or(RectpartError::Overflow)?;
                }
                running = running
                    .checked_add(row_sum)
                    .ok_or(RectpartError::Overflow)?;
            } else {
                // Splice the old row's runs; cell values fall out of
                // within-row prefix differences for the column border.
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                for i in lo..hi {
                    let v0 = self.run_val0[i] as usize;
                    let v1 = self.run_val0[i + 1] as usize;
                    run_col0.push(self.run_col0[i]);
                    run_val0.push(vals.len() as u32);
                    vals.extend_from_slice(&self.vals[v0..v1]);
                    let c0 = self.run_col0[i] as usize;
                    let mut prev = if i > lo { self.vals[v0 - 1] } else { 0 };
                    for (j, &pv) in self.vals[v0..v1].iter().enumerate() {
                        let cell = pv - prev;
                        prev = pv;
                        col_pfx[c0 + j + 1] = col_pfx[c0 + j + 1]
                            .checked_add(cell)
                            .ok_or(RectpartError::Overflow)?;
                    }
                }
                let row_sum = self.row_pfx[r + 1] - self.row_pfx[r];
                running = running
                    .checked_add(row_sum)
                    .ok_or(RectpartError::Overflow)?;
            }
            row_ptr.push(run_col0.len() as u32);
            row_pfx.push(running);
        }
        run_val0.push(vals.len() as u32);
        for c in 1..=cols {
            let prev = col_pfx[c - 1];
            col_pfx[c] = prev
                .checked_add(col_pfx[c])
                .ok_or(RectpartError::Overflow)?;
        }
        rectpart_obs::add(rectpart_obs::Counter::SparseGammaRuns, new_runs);
        Ok(Self {
            rows,
            cols,
            row_ptr,
            run_col0,
            run_val0,
            vals,
            row_pfx,
            col_pfx,
            total: running,
            max_cell,
            min_cell,
        })
    }

    /// The raw CSR arrays, for bit-identity assertions in tests.
    #[cfg(test)]
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(&self) -> (&[u32], &[u32], &[u32], &[u64], &[u64], &[u64]) {
        (
            &self.row_ptr,
            &self.run_col0,
            &self.run_val0,
            &self.vals,
            &self.row_pfx,
            &self.col_pfx,
        )
    }

    /// Number of stored nonzero cells.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of stored nonzero runs.
    pub fn runs(&self) -> usize {
        self.run_col0.len()
    }

    /// Largest single-cell load.
    pub fn max_cell(&self) -> u32 {
        self.max_cell
    }

    /// Smallest single-cell load (0 when any zero cell exists).
    pub fn min_cell(&self) -> u32 {
        self.min_cell
    }

    /// Sum of row `r`'s cells in columns `< c` — the within-row prefix.
    /// O(log runs-in-row) by binary search on run starts.
    #[inline]
    fn rowpfx(&self, r: usize, c: usize) -> u64 {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        // Last run starting before column c, if any.
        let k = self.run_col0[lo..hi].partition_point(|&c0| (c0 as usize) < c);
        if k == 0 {
            return 0;
        }
        let i = lo + k - 1;
        let start = self.run_col0[i] as usize;
        let v0 = self.run_val0[i] as usize;
        let v1 = self.run_val0[i + 1] as usize;
        if c >= start + (v1 - v0) {
            // The whole run lies left of c.
            self.vals[v1 - 1]
        } else {
            // Run straddles c; c > start because run starts are < c.
            self.vals[v0 + (c - start) - 1]
        }
    }

    /// Load of rows `[r0, r1)` × cols `[c0, c1)`.
    ///
    /// O(1) for full-width and full-height queries (the border arrays),
    /// O((r1−r0)·log runs-per-row) otherwise. Values are bit-identical
    /// to the dense backend's `load4`.
    #[inline]
    pub fn sum4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        if c0 == 0 && c1 == self.cols {
            return self.row_pfx[r1] - self.row_pfx[r0];
        }
        if r0 == 0 && r1 == self.rows {
            return self.col_pfx[c1] - self.col_pfx[c0];
        }
        let mut acc = 0u64;
        for r in r0..r1 {
            if self.row_ptr[r] == self.row_ptr[r + 1] {
                continue; // empty row
            }
            acc += self.rowpfx(r, c1) - self.rowpfx(r, c0);
        }
        acc
    }

    /// Heap bytes held by the sparse representation (the Γ memory the
    /// substrate benchmark compares against the dense array).
    pub fn gamma_bytes(&self) -> usize {
        self.row_ptr.len() * 4
            + self.run_col0.len() * 4
            + self.run_val0.len() * 4
            + self.vals.len() * 8
            + self.row_pfx.len() * 8
            + self.col_pfx.len() * 8
    }
}

impl GammaBackend for SparsePrefixSum {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn sum4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        SparsePrefixSum::sum4(self, r0, r1, c0, c1)
    }

    fn gamma_bytes(&self) -> usize {
        SparsePrefixSum::gamma_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixSum2D;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sparse_matrix(rows: usize, cols: usize, seed: u64, zero_p: f64) -> LoadMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LoadMatrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(zero_p) {
                0
            } else {
                rng.gen_range(1..100)
            }
        })
    }

    #[test]
    fn matches_dense_on_random_rects() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(rows, cols, zero_p) in &[
            (1usize, 9usize, 0.5),
            (13, 7, 0.9),
            (40, 33, 0.95),
            (17, 64, 0.0),
            (5, 5, 1.0),
        ] {
            let m = sparse_matrix(rows, cols, 7 * rows as u64 + cols as u64, zero_p);
            let d = PrefixSum2D::try_new(&m).unwrap();
            let s = SparsePrefixSum::try_new(&m).unwrap();
            assert_eq!(s.total, d.total());
            assert_eq!(s.max_cell, d.max_cell());
            assert_eq!(s.min_cell, d.min_cell());
            for _ in 0..300 {
                let r0 = rng.gen_range(0..=rows);
                let r1 = rng.gen_range(r0..=rows);
                let c0 = rng.gen_range(0..=cols);
                let c1 = rng.gen_range(c0..=cols);
                assert_eq!(
                    s.sum4(r0, r1, c0, c1),
                    d.load4(r0, r1, c0, c1),
                    "{rows}x{cols} zero_p={zero_p} [{r0},{r1})x[{c0},{c1})"
                );
            }
        }
    }

    #[test]
    fn fast_paths_match_generic_path() {
        let m = sparse_matrix(20, 30, 99, 0.8);
        let s = SparsePrefixSum::try_new(&m).unwrap();
        for r0 in 0..20 {
            for r1 in r0..=20 {
                // full width
                let generic: u64 = (r0..r1).map(|r| s.rowpfx(r, 30) - s.rowpfx(r, 0)).sum();
                assert_eq!(s.sum4(r0, r1, 0, 30), generic);
            }
        }
        for c0 in 0..30 {
            for c1 in c0..=30 {
                let generic: u64 = (0..20).map(|r| s.rowpfx(r, c1) - s.rowpfx(r, c0)).sum();
                assert_eq!(s.sum4(0, 20, c0, c1), generic);
            }
        }
    }

    #[test]
    fn runs_and_nnz_counts() {
        let m = LoadMatrix::from_vec(2, 6, vec![1, 1, 0, 2, 0, 3, 0, 0, 0, 0, 0, 0]);
        let s = SparsePrefixSum::try_new(&m).unwrap();
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.runs(), 3);
        assert_eq!(s.total, 7);
        assert_eq!(s.min_cell(), 0);
        assert_eq!(s.sum4(0, 1, 3, 6), 5);
        assert_eq!(s.sum4(1, 2, 0, 6), 0);
    }

    #[test]
    fn all_nonzero_min_cell() {
        let m = LoadMatrix::from_vec(2, 2, vec![4, 2, 9, 5]);
        let s = SparsePrefixSum::try_new(&m).unwrap();
        assert_eq!(s.min_cell(), 2);
        assert_eq!(s.runs(), 2); // one maximal run per row
    }

    #[test]
    fn empty_matrix() {
        let m = LoadMatrix::zeros(0, 0);
        let s = SparsePrefixSum::try_new(&m).unwrap();
        assert_eq!(s.total, 0);
        assert_eq!(s.min_cell(), 0);
        assert_eq!(s.max_cell(), 0);
        assert_eq!(s.sum4(0, 0, 0, 0), 0);
    }

    #[test]
    fn memory_beats_dense_on_sparse_instances() {
        let m = sparse_matrix(128, 128, 5, 0.95);
        let d = PrefixSum2D::try_new(&m).unwrap();
        let s = SparsePrefixSum::try_new(&m).unwrap();
        assert!(
            s.gamma_bytes() * 5 <= d.gamma_bytes(),
            "sparse {} vs dense {}",
            s.gamma_bytes(),
            d.gamma_bytes()
        );
    }
}
