//! Rectilinear partitions (§3.1): a P×Q grid of row and column cuts.
//!
//! * [`RectUniform`] — the `MPI_Cart`-style baseline that balances *area*,
//!   not load.
//! * [`RectNicol`] — Nicol's iterative refinement: fixing the cuts of one
//!   dimension, the other dimension is re-partitioned optimally under the
//!   max-over-stripes interval cost, alternating until the grid stops
//!   improving.

use rectpart_onedim::{nicol_in, Cuts, FnCost, SolveScratch};

use crate::cancel::Checker;
use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;
use crate::traits::{grid_dims, Partitioner};

/// `RECT-UNIFORM`: splits rows into `P` and columns into `Q` intervals of
/// near-equal *size* (the naive distribution used by `MPI_Cart`).
#[derive(Clone, Debug, Default)]
pub struct RectUniform {
    /// Explicit `(P, Q)` grid; `P·Q ≤ m` is required. Defaults to the
    /// near-square factorization of `m`.
    pub grid: Option<(usize, usize)>,
}

impl Partitioner for RectUniform {
    fn name(&self) -> String {
        "RECT-UNIFORM".into()
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");
        let rows = Cuts::uniform(pfx.rows(), p);
        let cols = Cuts::uniform(pfx.cols(), q);
        Partition::with_parts(grid_rects(&rows, &cols), m)
    }
}

/// `RECT-NICOL`: iterative refinement of a rectilinear grid (Nicol 1994;
/// Manne & Sørevik 1996). Given the cuts of the *fixed* dimension, the
/// other dimension is partitioned optimally for the 1D problem whose
/// interval load is the **maximum** over the fixed stripes (the grid's
/// bottleneck is then exactly the 1D bottleneck). Dimensions alternate
/// until the bottleneck stops improving or `max_iters` is reached (the
/// paper observes 3–10 iterations in practice).
#[derive(Clone, Debug)]
pub struct RectNicol {
    /// Explicit `(P, Q)` grid; defaults to the near-square factorization.
    pub grid: Option<(usize, usize)>,
    /// Refinement-iteration cap (one iteration = refine both dimensions).
    pub max_iters: usize,
}

impl Default for RectNicol {
    fn default() -> Self {
        Self {
            grid: None,
            max_iters: 10,
        }
    }
}

impl RectNicol {
    /// Like [`Partitioner::partition`] but also reports how many
    /// refinement iterations ran before convergence (the paper observes
    /// 3–10 on a 514² matrix up to 10 000 processors; the `extH`
    /// experiment checks that claim).
    pub fn partition_with_iterations(&self, pfx: &PrefixSum2D, m: usize) -> (Partition, usize) {
        assert!(m >= 1);
        self.refine_with_checker(pfx, m, Checker::OFF)
            .unwrap_or_else(|_| {
                // Unreachable with Checker::OFF; a valid grid regardless.
                let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
                let rows = Cuts::uniform(pfx.rows(), p);
                let cols = Cuts::uniform(pfx.cols(), q);
                (Partition::with_parts(grid_rects(&rows, &cols), m), 0)
            })
    }

    /// The refinement loop with a cancellation checkpoint per iteration
    /// (one iteration = one row + one column optimal 1D re-solve, the
    /// algorithm's natural serial quantum).
    fn refine_with_checker(
        &self,
        pfx: &PrefixSum2D,
        m: usize,
        check: Checker,
    ) -> Result<(Partition, usize), RectpartError> {
        let (p, q) = self.grid.unwrap_or_else(|| grid_dims(m));
        assert!(p * q <= m, "grid {p}x{q} exceeds {m} processors");

        // One scratch arena for the whole refinement: every 1D solve in
        // the loop below reuses the same incumbent buffer.
        let mut scratch = SolveScratch::new();
        check.check()?;
        // Start from the optimal 1D partition of the row projection.
        let row_proj = FnCost::additive(pfx.rows(), |a, b| pfx.load4(a, b, 0, pfx.cols()));
        let mut rows = nicol_in(&row_proj, p, &mut scratch).cuts;
        let mut cols = refine(pfx, &rows, Axis::Cols, q, &mut scratch).cuts;
        let mut best = grid_lmax(pfx, &rows, &cols);
        let mut iterations = 1; // the initial row+column refinement
        rectpart_obs::incr(rectpart_obs::Counter::RectNicolRefineIters);
        rectpart_obs::trace_point(rectpart_obs::TraceId::RectNicolLmax, 0, 0, best);

        for _ in 0..self.max_iters {
            check.check()?;
            let new_rows = refine(pfx, &cols, Axis::Rows, p, &mut scratch);
            let new_cols = refine(pfx, &new_rows.cuts, Axis::Cols, q, &mut scratch);
            let lmax = grid_lmax(pfx, &new_rows.cuts, &new_cols.cuts);
            iterations += 1;
            rectpart_obs::incr(rectpart_obs::Counter::RectNicolRefineIters);
            rectpart_obs::trace_point(
                rectpart_obs::TraceId::RectNicolLmax,
                0,
                iterations as u64 - 1,
                lmax,
            );
            if lmax >= best {
                break;
            }
            best = lmax;
            rows = new_rows.cuts;
            cols = new_cols.cuts;
        }
        Ok((
            Partition::with_parts(grid_rects(&rows, &cols), m),
            iterations,
        ))
    }
}

impl Partitioner for RectNicol {
    fn name(&self) -> String {
        "RECT-NICOL".into()
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        self.partition_with_iterations(pfx, m).0
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        self.refine_with_checker(pfx, m, Checker::active())
            .map(|(part, _)| part)
    }
}

/// Optimally partitions `refined` (the dimension given by `refined_axis`)
/// against the fixed stripes of the other dimension, under the
/// max-over-stripes interval cost.
///
/// Each fixed stripe's projection onto the refined dimension is
/// materialized as a 1D prefix array up front — the per-stripe builds are
/// independent and fan out across worker threads — so every cost query
/// inside Nicol's search is a max over plain array differences instead of
/// `stripes` four-corner Γ lookups. The prefix differences are exactly
/// the `load4` values (both subtract the same Γ entries), so the refined
/// cuts are bit-identical to the direct evaluation.
fn refine(
    pfx: &PrefixSum2D,
    fixed: &Cuts,
    refined_axis: Axis,
    parts: usize,
    scratch: &mut SolveScratch,
) -> rectpart_onedim::OneDimResult {
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::RectNicolRefine);
    let stripes: Vec<(usize, usize)> = fixed.intervals().filter(|(a, b)| a < b).collect();
    let n = match refined_axis {
        Axis::Rows => pfx.rows(),
        Axis::Cols => pfx.cols(),
    };
    let stripe_prefix: Vec<Vec<u64>> = rectpart_parallel::map_slice(&stripes, |&(s0, s1)| {
        (0..=n)
            .map(|i| match refined_axis {
                Axis::Rows => pfx.load4(0, i, s0, s1),
                Axis::Cols => pfx.load4(s0, s1, 0, i),
            })
            .collect()
    });
    let cost = FnCost::new(n, move |a, b| {
        stripe_prefix.iter().map(|p| p[b] - p[a]).max().unwrap_or(0)
    });
    nicol_in(&cost, parts, scratch)
}

/// Bottleneck of the rectilinear grid defined by the two cut sets. The
/// row stripes are scanned on separate tasks; `max` is order-independent,
/// so the result matches the serial double loop exactly.
fn grid_lmax(pfx: &PrefixSum2D, rows: &Cuts, cols: &Cuts) -> u64 {
    let row_ivs: Vec<(usize, usize)> = rows.intervals().collect();
    let col_ivs: Vec<(usize, usize)> = cols.intervals().collect();
    rectpart_parallel::map_slice(&row_ivs, |&(r0, r1)| {
        col_ivs
            .iter()
            .map(|&(c0, c1)| pfx.load4(r0, r1, c0, c1))
            .max()
            .unwrap_or(0)
    })
    .into_iter()
    .max()
    .unwrap_or(0)
}

fn grid_rects(rows: &Cuts, cols: &Cuts) -> Vec<Rect> {
    let mut rects = Vec::with_capacity(rows.parts() * cols.parts());
    for (r0, r1) in rows.intervals() {
        for (c0, c1) in cols.intervals() {
            rects.push(Rect::new(r0, r1, c0, c1));
        }
    }
    rects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LoadMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(1..100)
        }))
    }

    #[test]
    fn uniform_grid_tiles_matrix() {
        let pfx = random_pfx(17, 23, 1);
        for m in [1, 4, 6, 9, 16, 25] {
            let p = RectUniform::default().partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok(), "m={m}");
            assert_eq!(p.parts(), m);
        }
    }

    #[test]
    fn uniform_balances_area_not_load() {
        // All the load in one corner: uniform still cuts mid-matrix.
        let mut mat = LoadMatrix::zeros(8, 8);
        *mat.get_mut(0, 0) = 100;
        let pfx = PrefixSum2D::new(&mat);
        let p = RectUniform::default().partition(&pfx, 4);
        assert_eq!(p.lmax(&pfx), 100);
        assert_eq!(p.rects()[0], Rect::new(0, 4, 0, 4));
    }

    #[test]
    fn nicol_beats_uniform_in_aggregate() {
        // Per-instance, Nicol refinement converges to a *local* optimum
        // and can occasionally lose to the area-uniform grid on
        // near-uniform random instances; in aggregate it must win.
        let mut nicol_total = 0u64;
        let mut uniform_total = 0u64;
        for seed in 0..5 {
            let pfx = random_pfx(32, 32, seed);
            for m in [4, 9, 16, 25] {
                uniform_total += RectUniform::default().partition(&pfx, m).lmax(&pfx);
                nicol_total += RectNicol::default().partition(&pfx, m).lmax(&pfx);
            }
        }
        assert!(
            nicol_total < uniform_total,
            "nicol {nicol_total} >= uniform {uniform_total}"
        );
    }

    #[test]
    fn nicol_partition_is_valid_grid() {
        let pfx = random_pfx(20, 30, 3);
        let p = RectNicol::default().partition(&pfx, 12);
        assert!(p.validate(&pfx).is_ok());
        assert_eq!(p.parts(), 12);
        assert_eq!(
            p.active_parts(),
            p.rects().iter().filter(|r| !r.is_empty()).count()
        );
    }

    #[test]
    fn nicol_exact_on_uniform_matrix() {
        let mat = LoadMatrix::from_fn(16, 16, |_, _| 1);
        let pfx = PrefixSum2D::new(&mat);
        let p = RectNicol::default().partition(&pfx, 16);
        assert_eq!(p.lmax(&pfx), 16); // perfect 4x4 grid of 4x4 blocks
    }

    #[test]
    fn explicit_grid_is_respected() {
        let pfx = random_pfx(16, 16, 9);
        let algo = RectUniform { grid: Some((2, 3)) };
        let p = algo.partition(&pfx, 8);
        assert_eq!(p.active_parts(), 6);
        assert!(p.validate(&pfx).is_ok());
    }

    #[test]
    fn refine_respects_stripe_maximum() {
        // Two stripes with loads concentrated in different columns: the
        // refined cut must consider the max across stripes.
        let mat = LoadMatrix::from_vec(2, 4, vec![9, 1, 1, 1, 1, 1, 1, 9]);
        let pfx = PrefixSum2D::new(&mat);
        let rows = Cuts::new(vec![0, 1, 2]);
        let r = refine(&pfx, &rows, Axis::Cols, 2, &mut SolveScratch::new());
        // Any column split leaves a 9 on each side; best bottleneck is
        // max over stripes.
        assert_eq!(r.bottleneck, grid_lmax(&pfx, &rows, &r.cuts));
        assert!(r.bottleneck <= 12);
    }

    #[test]
    fn convergence_is_fast_like_the_paper_says() {
        // Paper §3.1: "in practice the convergence is faster (about 3-10
        // iterations for a 514*514 matrix up to 10,000 processors)".
        let pfx = random_pfx(64, 64, 13);
        for m in [16, 64, 144] {
            let (part, iters) = RectNicol::default().partition_with_iterations(&pfx, m);
            assert!(part.validate(&pfx).is_ok());
            assert!(
                (1..=10).contains(&iters),
                "m={m}: converged in {iters} iterations"
            );
        }
    }

    #[test]
    fn single_processor() {
        let pfx = random_pfx(5, 5, 2);
        for algo in [
            &RectUniform::default() as &dyn Partitioner,
            &RectNicol::default(),
        ] {
            let p = algo.partition(&pfx, 1);
            assert_eq!(p.rects()[0], Rect::new(0, 5, 0, 5));
        }
    }
}
