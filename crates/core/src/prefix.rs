//! 2D prefix sums (the paper's Γ array) and axis-oriented views.

use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::matrix::LoadMatrix;

/// The 2D prefix-sum array Γ of a load matrix:
/// `Γ[r][c] = Σ_{r'<r, c'<c} A[r'][c']` with a zero border, so any
/// rectangle load is four lookups (paper §2.1).
///
/// Construction also records the matrix totals and extrema used by the
/// lower bounds and the Δ-based guarantee formulas.
///
/// ```
/// use rectpart_core::{LoadMatrix, PrefixSum2D, Rect};
///
/// let m = LoadMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as u32);
/// let pfx = PrefixSum2D::new(&m);
/// assert_eq!(pfx.load(&Rect::new(1, 3, 1, 3)), 5 + 6 + 9 + 10);
/// assert_eq!(pfx.total(), m.total());
/// assert!(pfx.lower_bound(4) >= pfx.total() / 4);
/// ```
#[derive(Clone, Debug)]
pub struct PrefixSum2D {
    rows: usize,
    cols: usize,
    /// (rows+1) × (cols+1), row-major, first row/col all zero.
    g: Vec<u64>,
    total: u64,
    max_cell: u32,
    min_cell: u32,
}

/// Below this many cells the serial single-pass construction wins over
/// the two-pass parallel scan (thread spawn + extra memory sweep).
const PARALLEL_CELLS_MIN: usize = 1 << 16;

impl PrefixSum2D {
    /// Builds Γ, aborting on overflow. Thin shim over [`Self::try_new`]
    /// for tests and trusted callers; the fallible path is `try_new`.
    ///
    /// # Panics
    ///
    /// Panics if the running sum overflows `u64` (same condition on both
    /// paths: overflow of any Γ entry).
    pub fn new(a: &LoadMatrix) -> Self {
        // lint:allow(panic) -- boundary shim: trusted callers opt into abort-on-overflow; the fallible path is try_new
        Self::try_new(a).expect("2D prefix sum overflow")
    }

    /// Builds Γ, surfacing overflow as [`RectpartError::Overflow`]
    /// instead of aborting. Uses a two-pass parallel scan (per-row
    /// prefix sums, then a blocked column scan) when more than one
    /// thread is available and the matrix is large enough; exact integer
    /// addition makes the result bit-identical to the serial single pass
    /// at any thread count, and both paths report overflow under exactly
    /// the same condition (overflow of any Γ entry).
    pub fn try_new(a: &LoadMatrix) -> Result<Self, RectpartError> {
        rectpart_obs::incr(rectpart_obs::Counter::GammaBuilds);
        let _timer = rectpart_obs::phase(rectpart_obs::Phase::Gamma);
        let rows = a.rows();
        let cols = a.cols();
        rectpart_obs::work::charge((rows * cols) as u64 + 1);
        #[cfg(feature = "faultinject")]
        if rectpart_obs::fault::gamma_should_overflow() {
            return Err(RectpartError::Overflow);
        }
        if rectpart_parallel::current_threads() >= 2
            && rows >= 2
            && rows * cols >= PARALLEL_CELLS_MIN
        {
            return Self::try_new_parallel(a);
        }
        Self::try_new_serial(a)
    }

    /// Builds Γ under an explicit parallelism override; see
    /// [`ParallelismConfig`](rectpart_parallel::ParallelismConfig).
    pub fn with_config(a: &LoadMatrix, cfg: rectpart_parallel::ParallelismConfig) -> Self {
        cfg.run(|| Self::new(a))
    }

    /// [`Self::try_new`] under an explicit parallelism override.
    pub fn try_with_config(
        a: &LoadMatrix,
        cfg: rectpart_parallel::ParallelismConfig,
    ) -> Result<Self, RectpartError> {
        cfg.run(|| Self::try_new(a))
    }

    /// The original one-pass construction.
    fn try_new_serial(a: &LoadMatrix) -> Result<Self, RectpartError> {
        let rows = a.rows();
        let cols = a.cols();
        let w = cols + 1;
        let mut g = vec![0u64; (rows + 1) * w];
        let mut max_cell = 0u32;
        let mut min_cell = u32::MAX;
        for r in 0..rows {
            let mut row_sum = 0u64;
            let src = a.row(r);
            for c in 0..cols {
                let v = src[c];
                max_cell = max_cell.max(v);
                min_cell = min_cell.min(v);
                row_sum = row_sum
                    .checked_add(v as u64)
                    .ok_or(RectpartError::Overflow)?;
                let above = g[r * w + (c + 1)];
                g[(r + 1) * w + (c + 1)] =
                    above.checked_add(row_sum).ok_or(RectpartError::Overflow)?;
            }
        }
        if rows == 0 || cols == 0 {
            min_cell = 0;
        }
        let total = g[(rows + 1) * w - 1];
        Ok(Self {
            rows,
            cols,
            g,
            total,
            max_cell,
            min_cell,
        })
    }

    /// Two-pass blocked scan.
    ///
    /// 1. Every row `r` gets its 1D prefix sums written into Γ row `r+1`
    ///    (parallel over rows; also collects per-row extrema).
    /// 2. Rows are grouped into contiguous blocks. Each block accumulates
    ///    its rows top-to-bottom (parallel over blocks); the running
    ///    block offsets — the true Γ values of each block's last row —
    ///    are then folded serially and added back to every row of the
    ///    later blocks (parallel over blocks again).
    ///
    /// All sums are exact `u64` additions of non-negative values, so the
    /// intermediate values never exceed the final Γ entries and the
    /// checked additions report overflow exactly when the serial pass
    /// would. Workers never panic on overflow — each closure returns a
    /// success flag and the forking thread surfaces the `Err`.
    fn try_new_parallel(a: &LoadMatrix) -> Result<Self, RectpartError> {
        let rows = a.rows();
        let cols = a.cols();
        let w = cols + 1;
        let mut g = vec![0u64; (rows + 1) * w];

        // Pass 1: per-row prefix sums + extrema. Γ row r+1 is the chunk
        // of length w starting at (r+1)*w; chunking g[w..] by w visits
        // exactly the non-border rows. `None` marks an overflowing row.
        let extrema: Vec<Option<(u32, u32)>> =
            rectpart_parallel::map_chunks_mut(&mut g[w..], w, |r, grow| {
                let src = a.row(r);
                let mut row_sum = 0u64;
                let mut mx = 0u32;
                let mut mn = u32::MAX;
                for c in 0..cols {
                    let v = src[c];
                    mx = mx.max(v);
                    mn = mn.min(v);
                    row_sum = row_sum.checked_add(v as u64)?;
                    grow[c + 1] = row_sum;
                }
                Some((mx, mn))
            });
        let mut max_cell = 0u32;
        let mut min_cell = u32::MAX;
        for row_extrema in extrema {
            let (rmx, rmn) = row_extrema.ok_or(RectpartError::Overflow)?;
            max_cell = max_cell.max(rmx);
            min_cell = min_cell.min(rmn);
        }

        // Pass 2a: block-local column accumulation (`false` = overflow).
        let threads = rectpart_parallel::current_threads();
        let block_rows = rows.div_ceil(threads.max(2)).max(1);
        let ok = rectpart_parallel::map_chunks_mut(&mut g[w..], block_rows * w, |_, block| {
            let n_rows = block.len() / w;
            for r in 1..n_rows {
                for c in 1..w {
                    match block[r * w + c].checked_add(block[(r - 1) * w + c]) {
                        Some(v) => block[r * w + c] = v,
                        None => return false,
                    }
                }
            }
            true
        });
        if ok.contains(&false) {
            return Err(RectpartError::Overflow);
        }

        // Pass 2b: serial fold of block offsets. After 2a, each block's
        // last row holds the block-local column sums, so the running
        // prefix over those is the true Γ row at each block boundary —
        // the offset the next block needs. O(threads · cols) work.
        let n_blocks = rows.div_ceil(block_rows);
        let mut offsets: Vec<Vec<u64>> = Vec::with_capacity(n_blocks.saturating_sub(1));
        let mut running = vec![0u64; w];
        for b in 0..n_blocks.saturating_sub(1) {
            let last_row = (b + 1) * block_rows; // 1-based Γ row; never the final block
            for c in 0..w {
                running[c] = running[c]
                    .checked_add(g[last_row * w + c])
                    .ok_or(RectpartError::Overflow)?;
            }
            offsets.push(running.clone());
        }

        // Pass 2c: add each block's offset to all of its rows.
        let offsets = &offsets;
        let ok = rectpart_parallel::map_chunks_mut(&mut g[w..], block_rows * w, |b, block| {
            if b == 0 {
                return true;
            }
            let off = &offsets[b - 1];
            let n_rows = block.len() / w;
            for r in 0..n_rows {
                for c in 1..w {
                    match block[r * w + c].checked_add(off[c]) {
                        Some(v) => block[r * w + c] = v,
                        None => return false,
                    }
                }
            }
            true
        });
        if ok.contains(&false) {
            return Err(RectpartError::Overflow);
        }

        if rows == 0 || cols == 0 {
            min_cell = 0;
            max_cell = 0;
        }
        let total = g[(rows + 1) * w - 1];
        Ok(Self {
            rows,
            cols,
            g,
            total,
            max_cell,
            min_cell,
        })
    }

    /// Number of rows of the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the underlying matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total load of the matrix.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-cell load (a lower bound on any `Lmax`).
    pub fn max_cell(&self) -> u32 {
        self.max_cell
    }

    /// Smallest single-cell load.
    pub fn min_cell(&self) -> u32 {
        self.min_cell
    }

    /// Δ = max/min cell load; `None` when a zero cell exists.
    pub fn delta(&self) -> Option<f64> {
        if self.min_cell == 0 {
            None
        } else {
            Some(self.max_cell as f64 / self.min_cell as f64)
        }
    }

    /// Load of rows `[r0, r1)` × cols `[c0, c1)` in O(1).
    #[inline]
    pub fn load4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let w = self.cols + 1;
        self.g[r1 * w + c1] + self.g[r0 * w + c0] - self.g[r0 * w + c1] - self.g[r1 * w + c0]
    }

    /// Load of a rectangle in O(1).
    #[inline]
    pub fn load(&self, r: &Rect) -> u64 {
        self.load4(r.r0, r.r1, r.c0, r.c1)
    }

    /// The two classical lower bounds on the optimal maximum load
    /// (paper §2.1): `⌈total/m⌉` and the largest cell.
    pub fn lower_bound(&self, m: usize) -> u64 {
        assert!(m >= 1);
        let avg = self.total.div_ceil(m as u64);
        avg.max(self.max_cell as u64)
    }

    /// Average per-processor load `total / m` as a float (denominator of
    /// the load-imbalance metric).
    pub fn average_load(&self, m: usize) -> f64 {
        self.total as f64 / m as f64
    }

    /// An axis-oriented view with `axis` as the main dimension.
    pub fn view(&self, axis: Axis) -> View<'_> {
        View { pfx: self, axis }
    }
}

/// A zero-cost re-orientation of a [`PrefixSum2D`]: algorithms written for
/// "main × auxiliary" coordinates work on either orientation (the paper's
/// `-HOR`/`-VER` variants) through this adapter.
#[derive(Clone, Copy)]
pub struct View<'a> {
    pfx: &'a PrefixSum2D,
    axis: Axis,
}

impl<'a> View<'a> {
    /// Length of the main dimension.
    pub fn n_main(&self) -> usize {
        match self.axis {
            Axis::Rows => self.pfx.rows(),
            Axis::Cols => self.pfx.cols(),
        }
    }

    /// Length of the auxiliary dimension.
    pub fn n_aux(&self) -> usize {
        match self.axis {
            Axis::Rows => self.pfx.cols(),
            Axis::Cols => self.pfx.rows(),
        }
    }

    /// The main axis of this view.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The underlying prefix sums.
    pub fn prefix(&self) -> &'a PrefixSum2D {
        self.pfx
    }

    /// Load of main `[m0, m1)` × aux `[a0, a1)`.
    #[inline]
    pub fn load(&self, m0: usize, m1: usize, a0: usize, a1: usize) -> u64 {
        match self.axis {
            Axis::Rows => self.pfx.load4(m0, m1, a0, a1),
            Axis::Cols => self.pfx.load4(a0, a1, m0, m1),
        }
    }

    /// Maps view coordinates back to a matrix-space rectangle.
    pub fn rect(&self, m0: usize, m1: usize, a0: usize, a1: usize) -> Rect {
        match self.axis {
            Axis::Rows => Rect::new(m0, m1, a0, a1),
            Axis::Cols => Rect::new(a0, a1, m0, m1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn prefix_matches_naive_on_random_matrix() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = LoadMatrix::from_fn(13, 9, |_, _| rng.gen_range(0..50));
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.total(), m.total());
        for _ in 0..200 {
            let r0 = rng.gen_range(0..=13);
            let r1 = rng.gen_range(r0..=13);
            let c0 = rng.gen_range(0..=9);
            let c1 = rng.gen_range(c0..=9);
            let rect = Rect::new(r0, r1, c0, c1);
            assert_eq!(p.load(&rect), m.load_naive(&rect), "{rect:?}");
        }
    }

    #[test]
    fn extrema_and_delta() {
        let m = LoadMatrix::from_vec(2, 2, vec![2, 8, 4, 6]);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.max_cell(), 8);
        assert_eq!(p.min_cell(), 2);
        assert_eq!(p.delta(), Some(4.0));
        assert_eq!(p.total(), 20);
    }

    #[test]
    fn lower_bound_combines_average_and_max_cell() {
        let m = LoadMatrix::from_vec(1, 4, vec![10, 1, 1, 1]);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.lower_bound(2), 10); // max cell dominates
        assert_eq!(p.lower_bound(1), 13);
        let u = LoadMatrix::from_vec(1, 4, vec![3, 3, 3, 3]);
        let pu = PrefixSum2D::new(&u);
        assert_eq!(pu.lower_bound(2), 6); // average dominates
        assert_eq!(pu.lower_bound(3), 4); // ceil(12/3)=4 > 3
    }

    #[test]
    fn view_reorients_coordinates() {
        let m = LoadMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as u32);
        let p = PrefixSum2D::new(&m);
        let vr = p.view(Axis::Rows);
        let vc = p.view(Axis::Cols);
        assert_eq!(vr.n_main(), 3);
        assert_eq!(vr.n_aux(), 5);
        assert_eq!(vc.n_main(), 5);
        assert_eq!(vc.n_aux(), 3);
        // Same region through both views.
        let direct = p.load4(1, 3, 2, 4);
        assert_eq!(vr.load(1, 3, 2, 4), direct);
        assert_eq!(vc.load(2, 4, 1, 3), direct);
        assert_eq!(vr.rect(1, 3, 2, 4), Rect::new(1, 3, 2, 4));
        assert_eq!(vc.rect(2, 4, 1, 3), Rect::new(1, 3, 2, 4));
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols) in [(1, 7), (2, 2), (37, 53), (64, 1), (100, 257)] {
            let m = LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0..1000));
            let serial = PrefixSum2D::try_new_serial(&m).unwrap();
            for t in [1, 2, 3, 8] {
                let par = rectpart_parallel::with_threads(t, || {
                    PrefixSum2D::try_new_parallel(&m).unwrap()
                });
                assert_eq!(par.g, serial.g, "{rows}x{cols} threads={t}");
                assert_eq!(par.max_cell, serial.max_cell);
                assert_eq!(par.min_cell, serial.min_cell);
                assert_eq!(par.total, serial.total);
            }
        }
    }

    #[test]
    fn with_config_forces_thread_budget() {
        let m = LoadMatrix::from_fn(12, 12, |r, c| (r + c) as u32);
        let cfg = rectpart_parallel::ParallelismConfig::threads(4);
        let p = PrefixSum2D::with_config(&m, cfg);
        assert_eq!(p.total(), m.total());
    }

    #[test]
    fn empty_matrix() {
        let m = LoadMatrix::zeros(0, 0);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.total(), 0);
        assert_eq!(p.delta(), None);
        assert_eq!(p.min_cell(), 0);
    }

    #[test]
    fn try_new_surfaces_overflow_on_both_paths() {
        // A row of u32::MAX cells long enough to overflow u64 would need
        // ~2^32 cells; instead overflow the *column* accumulation across
        // rows cannot be forced cheaply either — u64 genuinely needs
        // ≥ 2^32 max-load cells. So this test only pins the Ok side and
        // the charge; the Err side is exercised by fault injection.
        let m = LoadMatrix::from_vec(2, 2, vec![u32::MAX; 4]);
        rectpart_obs::work::reset();
        let p = PrefixSum2D::try_new(&m).unwrap();
        assert_eq!(p.total(), 4 * u32::MAX as u64);
        assert!(rectpart_obs::work::spent() >= 5);
    }
}
