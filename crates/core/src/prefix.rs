//! 2D prefix sums (the paper's Γ array) and axis-oriented views.
//!
//! # Substrate layout (DESIGN.md §13)
//!
//! [`PrefixSum2D`] is a facade over two interchangeable backends behind
//! the [`GammaBackend`] query contract:
//!
//! * the **dense** array — `(rows+1)·(cols+1)` `u64`s, O(1) queries,
//!   built by a cache-blocked tiled sweep whose overflow checks are
//!   hoisted to tile boundaries (the per-cell-checked original survives
//!   as [`PrefixSum2D::try_new_reference`], the differential oracle and
//!   benchmark baseline);
//! * the **sparse** CSR-like [`SparsePrefixSum`] — per-row nonzero
//!   prefix runs, for zero-heavy instances.
//!
//! Backend choice is explicit ([`GammaMode`]), automatic above a
//! zero-density threshold ([`PrefixSum2D::try_new_auto`]), or forced
//! process-wide through the `RECTPART_GAMMA` environment variable (how
//! CI runs the whole differential suite against the sparse backend).
//! Queries are bit-identical across backends, so solver output never
//! depends on the choice.

use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::matrix::LoadMatrix;
use crate::sparse::SparsePrefixSum;

/// Query contract shared by every Γ backend: exact `u64` rectangle
/// loads over a fixed `rows × cols` matrix. Implementations must answer
/// bit-identically for the same matrix — the differential suite holds
/// the dense and sparse backends to that.
pub trait GammaBackend {
    /// Number of rows of the underlying matrix.
    fn rows(&self) -> usize;
    /// Number of columns of the underlying matrix.
    fn cols(&self) -> usize;
    /// Total load of the matrix.
    fn total(&self) -> u64;
    /// Load of rows `[r0, r1)` × cols `[c0, c1)`.
    fn sum4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64;
    /// Load of a rectangle.
    fn sum(&self, r: &Rect) -> u64 {
        self.sum4(r.r0, r.r1, r.c0, r.c1)
    }
    /// Heap bytes held by the Γ representation.
    fn gamma_bytes(&self) -> usize;
}

/// Γ backend selection policy (CLI `--gamma dense|sparse|auto`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GammaMode {
    /// The dense prefix array — the paper's Γ, O(1) queries.
    #[default]
    Dense,
    /// The CSR-like [`SparsePrefixSum`] — compact on zero-heavy input.
    Sparse,
    /// Dense below [`SPARSE_ZERO_FRACTION_PERCENT`] zero density, sparse above.
    Auto,
}

impl GammaMode {
    /// Parses `"dense"`, `"sparse"`, or `"auto"` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<GammaMode> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("dense") {
            Some(GammaMode::Dense)
        } else if s.eq_ignore_ascii_case("sparse") {
            Some(GammaMode::Sparse)
        } else if s.eq_ignore_ascii_case("auto") {
            Some(GammaMode::Auto)
        } else {
            None
        }
    }

    /// The process-wide override from the `RECTPART_GAMMA` environment
    /// variable, read once per process. Unset or unparsable → `None`.
    pub fn from_env() -> Option<GammaMode> {
        static MODE: std::sync::OnceLock<Option<GammaMode>> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            std::env::var("RECTPART_GAMMA")
                .ok()
                .and_then(|s| GammaMode::parse(&s))
        })
    }

    /// The lowercase name [`parse`](Self::parse) accepts — the spelling
    /// used in stats JSON and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            GammaMode::Dense => "dense",
            GammaMode::Sparse => "sparse",
            GammaMode::Auto => "auto",
        }
    }
}

/// Zero-cell fraction above which [`PrefixSum2D::try_new_auto`] picks
/// the sparse backend. At 75% zeros the run storage is already well
/// under half the dense footprint; below it, dense O(1) queries win.
pub const SPARSE_ZERO_FRACTION_PERCENT: u32 = 75;

/// The two storage backends behind the facade.
#[derive(Clone, Debug)]
enum Repr {
    /// `(rows+1) × (cols+1)`, row-major, first row/col all zero.
    Dense(Vec<u64>),
    Sparse(SparsePrefixSum),
}

/// The 2D prefix-sum array Γ of a load matrix:
/// `Γ[r][c] = Σ_{r'<r, c'<c} A[r'][c']` with a zero border, so any
/// rectangle load is four lookups (paper §2.1).
///
/// Construction also records the matrix totals and extrema used by the
/// lower bounds and the Δ-based guarantee formulas.
///
/// ```
/// use rectpart_core::{LoadMatrix, PrefixSum2D, Rect};
///
/// let m = LoadMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as u32);
/// let pfx = PrefixSum2D::new(&m);
/// assert_eq!(pfx.load(&Rect::new(1, 3, 1, 3)), 5 + 6 + 9 + 10);
/// assert_eq!(pfx.total(), m.total());
/// assert!(pfx.lower_bound(4) >= pfx.total() / 4);
/// ```
#[derive(Clone, Debug)]
pub struct PrefixSum2D {
    rows: usize,
    cols: usize,
    repr: Repr,
    total: u64,
    max_cell: u32,
    min_cell: u32,
}

/// Below this many cells the serial single-pass construction wins over
/// the two-pass parallel scan (thread spawn + extra memory sweep).
const PARALLEL_CELLS_MIN: usize = 1 << 16;

/// Column-tile width of the blocked construction: `512 · 8 B = 4 KiB`
/// per Γ row segment, so a tile's current row, previous row, and source
/// cells sit in L1 together while the three inner loops stay
/// branch-light and autovectorizable.
const TILE: usize = 512;

/// Row-prefix carry bound under which a whole tile of `u32` additions
/// provably cannot overflow `u64` — the guard that hoists the per-cell
/// checked adds to one check per tile.
const TILE_CARRY_GUARD: u64 = u64::MAX - (TILE as u64) * (u32::MAX as u64);

impl PrefixSum2D {
    /// Builds Γ, aborting on overflow. Thin shim over [`Self::try_new`]
    /// for tests and trusted callers; the fallible path is `try_new`.
    ///
    /// # Panics
    ///
    /// Panics if the running sum overflows `u64` (same condition on both
    /// paths: overflow of any Γ entry).
    pub fn new(a: &LoadMatrix) -> Self {
        // lint:allow(panic) -- boundary shim: trusted callers opt into abort-on-overflow; the fallible path is try_new
        Self::try_new(a).expect("2D prefix sum overflow")
    }

    /// Builds Γ, surfacing overflow as [`RectpartError::Overflow`]
    /// instead of aborting. Uses the dense backend unless the
    /// `RECTPART_GAMMA` environment variable overrides the choice; for
    /// explicit control use [`Self::try_new_with`].
    ///
    /// The dense build uses a two-pass parallel scan when more than one
    /// thread is available and the matrix is large enough; exact integer
    /// addition makes the result bit-identical to the serial pass at any
    /// thread count, and both paths report overflow under exactly the
    /// same condition (overflow of any Γ entry — equivalently, the grand
    /// total reaching 2⁶⁴).
    pub fn try_new(a: &LoadMatrix) -> Result<Self, RectpartError> {
        Self::try_new_with(a, GammaMode::from_env().unwrap_or(GammaMode::Dense))
    }

    /// [`Self::try_new`] with automatic backend selection: sparse above
    /// [`SPARSE_ZERO_FRACTION_PERCENT`] zero cells, dense otherwise.
    /// `RECTPART_GAMMA` still takes precedence when set.
    pub fn try_new_auto(a: &LoadMatrix) -> Result<Self, RectpartError> {
        Self::try_new_with(a, GammaMode::from_env().unwrap_or(GammaMode::Auto))
    }

    /// [`Self::try_new`] forcing the sparse backend (no env override).
    pub fn try_new_sparse(a: &LoadMatrix) -> Result<Self, RectpartError> {
        Self::try_new_with(a, GammaMode::Sparse)
    }

    /// Builds Γ with an explicit backend policy. `Sparse` falls back to
    /// the dense array when the matrix shape exceeds the sparse
    /// backend's `u32` indices (≥ 2³² cells).
    pub fn try_new_with(a: &LoadMatrix, mode: GammaMode) -> Result<Self, RectpartError> {
        rectpart_obs::incr(rectpart_obs::Counter::GammaBuilds);
        let _timer = rectpart_obs::phase(rectpart_obs::Phase::Gamma);
        let rows = a.rows();
        let cols = a.cols();
        let sparse = match mode {
            GammaMode::Dense => false,
            GammaMode::Sparse => SparsePrefixSum::indexable(rows, cols),
            GammaMode::Auto => Self::auto_picks_sparse(a),
        };
        let _span = rectpart_obs::span::enter(if sparse {
            rectpart_obs::span::SpanKind::GammaSparse
        } else {
            rectpart_obs::span::SpanKind::GammaDense
        });
        rectpart_obs::work::charge((rows * cols) as u64 + 1);
        #[cfg(feature = "faultinject")]
        if rectpart_obs::fault::gamma_should_overflow() {
            return Err(RectpartError::Overflow);
        }
        if sparse {
            let s = SparsePrefixSum::build(a)?;
            return Ok(Self {
                rows,
                cols,
                total: s.total(),
                max_cell: s.max_cell(),
                min_cell: s.min_cell(),
                repr: Repr::Sparse(s),
            });
        }
        if rectpart_parallel::current_threads() >= 2
            && rows >= 2
            && rows * cols >= PARALLEL_CELLS_MIN
        {
            return Self::try_new_parallel(a);
        }
        Self::try_new_serial(a)
    }

    /// `true` when [`GammaMode::Auto`] selects the sparse backend: the
    /// zero-cell fraction reaches [`SPARSE_ZERO_FRACTION_PERCENT`] and
    /// the shape fits the sparse indices. One O(cells) scan — noise next
    /// to the build it steers.
    fn auto_picks_sparse(a: &LoadMatrix) -> bool {
        let cells = a.rows() * a.cols();
        if cells == 0 || !SparsePrefixSum::indexable(a.rows(), a.cols()) {
            return false;
        }
        let zeros = a.data().iter().filter(|&&v| v == 0).count();
        (zeros as u128) * 100 >= (cells as u128) * SPARSE_ZERO_FRACTION_PERCENT as u128
    }

    /// Builds Γ under an explicit parallelism override; see
    /// [`ParallelismConfig`](rectpart_parallel::ParallelismConfig).
    pub fn with_config(a: &LoadMatrix, cfg: rectpart_parallel::ParallelismConfig) -> Self {
        cfg.run(|| Self::new(a))
    }

    /// [`Self::try_new`] under an explicit parallelism override.
    pub fn try_with_config(
        a: &LoadMatrix,
        cfg: rectpart_parallel::ParallelismConfig,
    ) -> Result<Self, RectpartError> {
        cfg.run(|| Self::try_new(a))
    }

    /// The original one-pass construction with **two checked additions
    /// per cell**, kept verbatim as the differential oracle for the
    /// blocked builds and as the substrate benchmark's "before"
    /// baseline. Produces bit-identical results to [`Self::try_new`]
    /// under the dense backend and errs under the identical condition.
    pub fn try_new_reference(a: &LoadMatrix) -> Result<Self, RectpartError> {
        rectpart_obs::incr(rectpart_obs::Counter::GammaBuilds);
        let rows = a.rows();
        let cols = a.cols();
        let w = cols + 1;
        let mut g = vec![0u64; (rows + 1) * w];
        let mut max_cell = 0u32;
        let mut min_cell = u32::MAX;
        for r in 0..rows {
            let mut row_sum = 0u64;
            let src = a.row(r);
            for c in 0..cols {
                let v = src[c];
                max_cell = max_cell.max(v);
                min_cell = min_cell.min(v);
                row_sum = row_sum
                    .checked_add(v as u64)
                    .ok_or(RectpartError::Overflow)?;
                let above = g[r * w + (c + 1)];
                g[(r + 1) * w + (c + 1)] =
                    above.checked_add(row_sum).ok_or(RectpartError::Overflow)?;
            }
        }
        rectpart_obs::exec_add(
            rectpart_obs::ExecStat::GammaCheckedOps,
            2 * (rows * cols) as u64,
        );
        if rows == 0 || cols == 0 {
            min_cell = 0;
        }
        let total = g[(rows + 1) * w - 1];
        Ok(Self::from_dense(rows, cols, g, total, max_cell, min_cell))
    }

    fn from_dense(
        rows: usize,
        cols: usize,
        g: Vec<u64>,
        total: u64,
        max_cell: u32,
        min_cell: u32,
    ) -> Self {
        Self {
            rows,
            cols,
            repr: Repr::Dense(g),
            total,
            max_cell,
            min_cell,
        }
    }

    /// Blocked single-thread construction. Each row is swept in
    /// [`TILE`]-column tiles with three branch-light inner loops —
    /// extrema, row-prefix scan, column add — and the overflow checks
    /// hoisted to tile boundaries:
    ///
    /// * the row-prefix scan runs unchecked whenever the incoming carry
    ///   is below [`TILE_CARRY_GUARD`] (a whole tile of `u32` additions
    ///   then provably cannot wrap), falling back to per-cell checked
    ///   adds only in the astronomically rare tail;
    /// * the column add exploits that exact Γ entries are monotone in
    ///   `c` within a row: a single `checked_add` on the tile's **last**
    ///   lane overflows exactly when any lane of the tile would, so the
    ///   other lanes use plain wrapping adds (wrapped intermediates are
    ///   never kept — the boundary check errs out first).
    ///
    /// Both arguments of every boundary check are exact by induction
    /// (previous rows and the current row-prefix passed their checks),
    /// so this errs **iff** the per-cell-checked
    /// [`Self::try_new_reference`] errs — iff the grand total reaches
    /// 2⁶⁴ — and is bit-identical on success.
    fn try_new_serial(a: &LoadMatrix) -> Result<Self, RectpartError> {
        let rows = a.rows();
        let cols = a.cols();
        let w = cols + 1;
        let mut g = vec![0u64; (rows + 1) * w];
        let mut max_cell = 0u32;
        let mut min_cell = u32::MAX;
        let mut checked_ops = 0u64;
        for r in 0..rows {
            let src = a.row(r);
            // lint:allow(panic-reach) -- g.len() = (rows+1)*w and r < rows,
            // so the midpoint (r+1)*w <= rows*w is always in bounds
            let (head, tail) = g.split_at_mut((r + 1) * w);
            // lint:allow(panic-reach) -- head.len() = (r+1)*w > r*w
            let prev = &head[r * w..];
            // lint:allow(panic-reach) -- tail.len() = (rows-r)*w >= w
            let cur = &mut tail[..w];
            let mut carry = 0u64;
            let mut t0 = 0usize;
            while t0 < cols {
                let t1 = (t0 + TILE).min(cols);
                for &v in &src[t0..t1] {
                    max_cell = max_cell.max(v);
                    min_cell = min_cell.min(v);
                }
                if carry <= TILE_CARRY_GUARD {
                    // One guard check covers the whole tile.
                    checked_ops += 1;
                    let mut rs = carry;
                    for c in t0..t1 {
                        rs += src[c] as u64;
                        cur[c + 1] = rs;
                    }
                    carry = rs;
                } else {
                    for c in t0..t1 {
                        carry = carry
                            .checked_add(src[c] as u64)
                            .ok_or(RectpartError::Overflow)?;
                        cur[c + 1] = carry;
                    }
                    checked_ops += (t1 - t0) as u64;
                }
                for c in t0 + 1..t1 {
                    cur[c] = cur[c].wrapping_add(prev[c]);
                }
                cur[t1] = cur[t1]
                    .checked_add(prev[t1])
                    .ok_or(RectpartError::Overflow)?;
                checked_ops += 1;
                t0 = t1;
            }
        }
        rectpart_obs::add(
            rectpart_obs::Counter::GammaTileSweeps,
            (rows * cols.div_ceil(TILE)) as u64,
        );
        rectpart_obs::exec_add(rectpart_obs::ExecStat::GammaCheckedOps, checked_ops);
        if rows == 0 || cols == 0 {
            min_cell = 0;
        }
        let total = g[(rows + 1) * w - 1];
        Ok(Self::from_dense(rows, cols, g, total, max_cell, min_cell))
    }

    /// Two-pass blocked scan.
    ///
    /// 1. Every row `r` gets its 1D prefix sums written into Γ row `r+1`
    ///    (parallel over rows; also collects per-row extrema). Rows are
    ///    swept in the same [`TILE`]-column tiles as the serial path,
    ///    with the same hoisted carry guard.
    /// 2. Rows are grouped into contiguous blocks. Each block accumulates
    ///    its rows top-to-bottom (parallel over blocks); the running
    ///    block offsets — the true Γ values of each block's last row —
    ///    are then folded serially and added back to every row of the
    ///    later blocks (parallel over blocks again). Every row of these
    ///    passes is monotone in `c`, so a single `checked_add` on the
    ///    last column stands in for per-cell checks (see
    ///    [`Self::try_new_serial`] for the argument).
    ///
    /// All sums are exact `u64` additions of non-negative values, so the
    /// intermediate values never exceed the final Γ entries and the
    /// boundary checks report overflow exactly when the serial pass
    /// would. Workers never panic on overflow — each closure returns a
    /// success marker and the forking thread surfaces the `Err`.
    fn try_new_parallel(a: &LoadMatrix) -> Result<Self, RectpartError> {
        let rows = a.rows();
        let cols = a.cols();
        let w = cols + 1;
        let mut g = vec![0u64; (rows + 1) * w];
        let mut checked_ops = 0u64;

        // Pass 1: per-row prefix sums + extrema. Γ row r+1 is the chunk
        // of length w starting at (r+1)*w; chunking g[w..] by w visits
        // exactly the non-border rows. `None` marks an overflowing row.
        let extrema: Vec<Option<(u32, u32, u64)>> =
            rectpart_parallel::map_chunks_mut(&mut g[w..], w, |r, grow| {
                let src = a.row(r);
                let mut mx = 0u32;
                let mut mn = u32::MAX;
                let mut ops = 0u64;
                let mut carry = 0u64;
                let mut t0 = 0usize;
                while t0 < cols {
                    let t1 = (t0 + TILE).min(cols);
                    for &v in &src[t0..t1] {
                        mx = mx.max(v);
                        mn = mn.min(v);
                    }
                    if carry <= TILE_CARRY_GUARD {
                        ops += 1;
                        let mut rs = carry;
                        for c in t0..t1 {
                            rs += src[c] as u64;
                            grow[c + 1] = rs;
                        }
                        carry = rs;
                    } else {
                        for c in t0..t1 {
                            carry = carry.checked_add(src[c] as u64)?;
                            grow[c + 1] = carry;
                        }
                        ops += (t1 - t0) as u64;
                    }
                    t0 = t1;
                }
                Some((mx, mn, ops))
            });
        let mut max_cell = 0u32;
        let mut min_cell = u32::MAX;
        for row_extrema in extrema {
            let (rmx, rmn, ops) = row_extrema.ok_or(RectpartError::Overflow)?;
            max_cell = max_cell.max(rmx);
            min_cell = min_cell.min(rmn);
            checked_ops += ops;
        }

        // Pass 2a: block-local column accumulation (`None` = overflow).
        // Accumulated rows are monotone in c, so each row needs only one
        // boundary check on its last column.
        let threads = rectpart_parallel::current_threads();
        let block_rows = rows.div_ceil(threads.max(2)).max(1);
        let ok = rectpart_parallel::map_chunks_mut(&mut g[w..], block_rows * w, |_, block| {
            let n_rows = block.len() / w;
            let mut ops = 0u64;
            for r in 1..n_rows {
                let (prev, cur) = block.split_at_mut(r * w);
                let prev = &prev[(r - 1) * w..];
                for c in 1..w - 1 {
                    cur[c] = cur[c].wrapping_add(prev[c]);
                }
                cur[w - 1] = cur[w - 1].checked_add(prev[w - 1])?;
                ops += 1;
            }
            Some(ops)
        });
        for block_ops in ok {
            checked_ops += block_ops.ok_or(RectpartError::Overflow)?;
        }

        // Pass 2b: serial fold of block offsets. After 2a, each block's
        // last row holds the block-local column sums, so the running
        // prefix over those is the true Γ row at each block boundary —
        // the offset the next block needs. O(threads · cols) work; the
        // running row is monotone in c, so one boundary check per block.
        let n_blocks = rows.div_ceil(block_rows);
        let mut offsets: Vec<Vec<u64>> = Vec::with_capacity(n_blocks.saturating_sub(1));
        let mut running = vec![0u64; w];
        for b in 0..n_blocks.saturating_sub(1) {
            let last_row = (b + 1) * block_rows; // 1-based Γ row; never the final block
            for c in 0..w - 1 {
                running[c] = running[c].wrapping_add(g[last_row * w + c]);
            }
            running[w - 1] = running[w - 1]
                .checked_add(g[last_row * w + w - 1])
                .ok_or(RectpartError::Overflow)?;
            checked_ops += 1;
            offsets.push(running.clone());
        }

        // Pass 2c: add each block's offset to all of its rows. Offset
        // and row are both monotone in c: one boundary check per row.
        let offsets = &offsets;
        let ok = rectpart_parallel::map_chunks_mut(&mut g[w..], block_rows * w, |b, block| {
            if b == 0 {
                return Some(0u64);
            }
            let off = &offsets[b - 1];
            let n_rows = block.len() / w;
            let mut ops = 0u64;
            for r in 0..n_rows {
                let row = &mut block[r * w..(r + 1) * w];
                for c in 1..w - 1 {
                    row[c] = row[c].wrapping_add(off[c]);
                }
                row[w - 1] = row[w - 1].checked_add(off[w - 1])?;
                ops += 1;
            }
            Some(ops)
        });
        for block_ops in ok {
            checked_ops += block_ops.ok_or(RectpartError::Overflow)?;
        }

        rectpart_obs::add(
            rectpart_obs::Counter::GammaTileSweeps,
            (rows * cols.div_ceil(TILE)) as u64,
        );
        rectpart_obs::exec_add(rectpart_obs::ExecStat::GammaCheckedOps, checked_ops);
        if rows == 0 || cols == 0 {
            min_cell = 0;
            max_cell = 0;
        }
        let total = g[(rows + 1) * w - 1];
        Ok(Self::from_dense(rows, cols, g, total, max_cell, min_cell))
    }

    /// Number of rows of the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the underlying matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total load of the matrix.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-cell load (a lower bound on any `Lmax`).
    pub fn max_cell(&self) -> u32 {
        self.max_cell
    }

    /// Smallest single-cell load.
    pub fn min_cell(&self) -> u32 {
        self.min_cell
    }

    /// Δ = max/min cell load; `None` when a zero cell exists.
    pub fn delta(&self) -> Option<f64> {
        if self.min_cell == 0 {
            None
        } else {
            Some(self.max_cell as f64 / self.min_cell as f64)
        }
    }

    /// `true` when this instance holds the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// The backend actually selected ([`GammaMode::Dense`] or
    /// [`GammaMode::Sparse`], never `Auto`).
    pub fn backend(&self) -> GammaMode {
        match self.repr {
            Repr::Dense(_) => GammaMode::Dense,
            Repr::Sparse(_) => GammaMode::Sparse,
        }
    }

    /// Heap bytes held by the Γ representation.
    pub fn gamma_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(g) => g.len() * std::mem::size_of::<u64>(),
            Repr::Sparse(s) => s.gamma_bytes(),
        }
    }

    /// The dense Γ entries, when the dense backend is active (tests
    /// compare constructions entry by entry).
    #[cfg(test)]
    pub(crate) fn dense_entries(&self) -> Option<&[u64]> {
        match &self.repr {
            Repr::Dense(g) => Some(g),
            Repr::Sparse(_) => None,
        }
    }

    /// Load of rows `[r0, r1)` × cols `[c0, c1)`. O(1) on the dense
    /// backend; see [`SparsePrefixSum::sum4`] for the sparse costs.
    #[inline]
    pub fn load4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        match &self.repr {
            Repr::Dense(g) => {
                let w = self.cols + 1;
                // lint:allow(panic-reach) -- API contract (debug_assert
                // above): r* <= rows, c* <= cols, and g.len() = (rows+1)*w,
                // so every corner index r*w + c <= rows*w + cols < g.len()
                g[r1 * w + c1] + g[r0 * w + c0] - g[r0 * w + c1] - g[r1 * w + c0]
            }
            Repr::Sparse(s) => s.sum4(r0, r1, c0, c1),
        }
    }

    /// Load of a rectangle (O(1) on the dense backend).
    #[inline]
    pub fn load(&self, r: &Rect) -> u64 {
        self.load4(r.r0, r.r1, r.c0, r.c1)
    }

    /// The two classical lower bounds on the optimal maximum load
    /// (paper §2.1): `⌈total/m⌉` and the largest cell.
    pub fn lower_bound(&self, m: usize) -> u64 {
        assert!(m >= 1);
        let avg = self.total.div_ceil(m as u64);
        avg.max(self.max_cell as u64)
    }

    /// Average per-processor load `total / m` as a float (denominator of
    /// the load-imbalance metric).
    pub fn average_load(&self, m: usize) -> f64 {
        self.total as f64 / m as f64
    }

    /// An axis-oriented view with `axis` as the main dimension.
    pub fn view(&self, axis: Axis) -> View<'_> {
        View { pfx: self, axis }
    }

    /// Applies row-granular delta updates to `a` **and** patches this Γ
    /// in place, keeping the two consistent — the resident engine's
    /// alternative to a full rebuild when only a few rows moved.
    ///
    /// Each [`RowUpdate`] replaces one whole matrix row. Updates are
    /// applied in order (a later update to the same row wins). The
    /// patched Γ is **bit-identical** to a fresh build from the updated
    /// matrix on either backend:
    ///
    /// * **dense** — a changed row `r` shifts every Γ row `> r` by that
    ///   row's column-prefix delta. The deltas are folded into one
    ///   cumulative per-column correction and swept down the table once,
    ///   in two's-complement (`wrapping`) arithmetic: the true new
    ///   entries are exact sums below 2⁶⁴ (pre-checked), so arithmetic
    ///   mod 2⁶⁴ reproduces them exactly. O(changed·n + span·n) where
    ///   `span` is the distance from the first changed row to the
    ///   bottom, versus O(rows·n) for a rebuild — and no Γ allocation.
    /// * **sparse** — changed rows are rescanned, unchanged rows' run
    ///   storage is spliced over verbatim (within-row prefixes do not
    ///   depend on other rows), and the dense borders are recomputed in
    ///   the same accumulation order as a fresh
    ///   [`SparsePrefixSum::build`], so every array matches it
    ///   bit-for-bit.
    ///
    /// Overflow (new grand total ≥ 2⁶⁴) and validation errors are
    /// detected **before** anything is mutated: on `Err`, matrix, Γ, and
    /// `extrema` are all unchanged.
    ///
    /// `extrema` must describe `a` (build it once per resident matrix
    /// with [`RowExtrema::new`]); it is patched along with Γ so the
    /// facade's [`max_cell`](Self::max_cell)/[`min_cell`](Self::min_cell)
    /// stay exact in O(rows) instead of O(cells) per delta.
    ///
    /// Charges [`DeltaRowsPatched`](rectpart_obs::Counter::DeltaRowsPatched)
    /// and `changed·(cols+1) + 1` work units (the row-repair work proxy;
    /// a rebuild charges `rows·cols + 1`). Returns the number of rows
    /// patched (after de-duplication).
    pub fn apply_row_updates(
        &mut self,
        a: &mut LoadMatrix,
        updates: &[RowUpdate],
        extrema: &mut RowExtrema,
    ) -> Result<u64, RectpartError> {
        let rows = self.rows;
        let cols = self.cols;
        if a.rows() != rows || a.cols() != cols || extrema.max.len() != rows {
            return Err(RectpartError::DimMismatch {
                rows,
                cols,
                len: a.data().len(),
            });
        }
        // Validate, then de-duplicate keeping the last update per row.
        let mut slot: Vec<Option<&[u32]>> = vec![None; rows];
        for u in updates {
            if u.row >= rows {
                return Err(RectpartError::RowOutOfRange { row: u.row, rows });
            }
            if u.cells.len() != cols {
                return Err(RectpartError::RaggedRow {
                    row: u.row,
                    expected: cols,
                    got: u.cells.len(),
                });
            }
            // lint:allow(panic-reach) -- u.row < rows = slot.len() just checked
            slot[u.row] = Some(&u.cells);
        }
        let deduped: Vec<(usize, &[u32])> = slot
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|cells| (r, cells)))
            .collect();
        if deduped.is_empty() {
            return Ok(0);
        }
        // Pre-check the new grand total so the patch cannot overflow
        // mid-sweep — the same error condition as a cold build (total
        // reaching 2⁶⁴), detected before any state changes.
        let mut new_total = self.total as i128;
        for &(r, cells) in &deduped {
            let old: i128 = a.row(r).iter().map(|&v| v as i128).sum();
            let new: i128 = cells.iter().map(|&v| v as i128).sum();
            new_total += new - old;
        }
        if new_total >= (1i128 << 64) {
            return Err(RectpartError::Overflow);
        }
        let k = deduped.len() as u64;
        let _timer = rectpart_obs::phase(rectpart_obs::Phase::Gamma);
        rectpart_obs::add(rectpart_obs::Counter::DeltaRowsPatched, k);
        rectpart_obs::work::charge(k * (cols as u64 + 1) + 1);

        if let Repr::Dense(g) = &mut self.repr {
            // Sweep once from the first changed row to the bottom,
            // folding each changed row's column-prefix delta into a
            // cumulative per-column correction as it is passed.
            let w = cols + 1;
            let mut cum = vec![0u64; w];
            let first = deduped[0].0;
            let mut next = 0usize;
            for i in (first + 1)..=rows {
                let r = i - 1;
                if next < deduped.len() && deduped[next].0 == r {
                    let cells = deduped[next].1;
                    next += 1;
                    let src = a.row(r);
                    let mut old_p = 0u64;
                    let mut new_p = 0u64;
                    for c in 0..cols {
                        old_p = old_p.wrapping_add(src[c] as u64);
                        new_p = new_p.wrapping_add(cells[c] as u64);
                        // lint:allow(panic-reach) -- c < cols < w = cum.len()
                        cum[c + 1] = cum[c + 1].wrapping_add(new_p.wrapping_sub(old_p));
                    }
                }
                // lint:allow(panic-reach) -- g.len() = (rows+1)*w and i <= rows
                let grow = &mut g[i * w..(i + 1) * w];
                for c in 1..w {
                    grow[c] = grow[c].wrapping_add(cum[c]);
                }
            }
        }
        // Commit the rows to the matrix and the extrema scratch.
        for &(r, cells) in &deduped {
            // lint:allow(panic-reach) -- r < rows, cells.len() == cols
            a.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(cells);
            extrema.set_row(r, cells);
        }
        let (max_cell, min_cell) = extrema.fold(rows * cols);
        // Sparse backend: splice a fresh structure around the changed
        // rows (cannot fail past the total pre-check above).
        let patched = match &self.repr {
            Repr::Sparse(s) => {
                let changed: Vec<usize> = deduped.iter().map(|&(r, _)| r).collect();
                Some(s.patched_rows(a, &changed, max_cell, min_cell)?)
            }
            Repr::Dense(_) => None,
        };
        if let Some(s) = patched {
            self.repr = Repr::Sparse(s);
        }
        self.total = new_total as u64;
        self.max_cell = max_cell;
        self.min_cell = min_cell;
        Ok(k)
    }
}

/// One replaced row of a delta update (see
/// [`PrefixSum2D::apply_row_updates`]): the full new contents of
/// matrix row `row`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowUpdate {
    /// Row index to replace.
    pub row: usize,
    /// New cell loads; must be exactly `cols` long.
    pub cells: Vec<u32>,
}

/// Per-row cell extrema of a resident matrix — the O(rows) scratch that
/// lets [`PrefixSum2D::apply_row_updates`] keep the global
/// `max_cell`/`min_cell` exact without rescanning the whole matrix
/// (the previous maximum may have lived in a row the delta shrank).
#[derive(Clone, Debug)]
pub struct RowExtrema {
    max: Vec<u32>,
    min: Vec<u32>,
}

impl RowExtrema {
    /// Scans `a` once and records each row's max and min cell.
    pub fn new(a: &LoadMatrix) -> Self {
        let rows = a.rows();
        let mut max = Vec::with_capacity(rows);
        let mut min = Vec::with_capacity(rows);
        for r in 0..rows {
            let (mut mx, mut mn) = (0u32, u32::MAX);
            for &v in a.row(r) {
                mx = mx.max(v);
                mn = mn.min(v);
            }
            max.push(mx);
            min.push(mn);
        }
        Self { max, min }
    }

    /// Re-records row `r` from its new contents.
    fn set_row(&mut self, r: usize, cells: &[u32]) {
        let (mut mx, mut mn) = (0u32, u32::MAX);
        for &v in cells {
            mx = mx.max(v);
            mn = mn.min(v);
        }
        // lint:allow(panic-reach) -- callers validate r against the row count
        self.max[r] = mx;
        self.min[r] = mn;
    }

    /// Global `(max_cell, min_cell)` under the build conventions:
    /// `(0, 0)` for a degenerate matrix.
    fn fold(&self, cells: usize) -> (u32, u32) {
        if cells == 0 {
            return (0, 0);
        }
        let mut mx = 0u32;
        let mut mn = u32::MAX;
        for i in 0..self.max.len() {
            mx = mx.max(self.max[i]);
            mn = mn.min(self.min[i]);
        }
        (mx, mn)
    }
}

impl GammaBackend for PrefixSum2D {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn sum4(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        self.load4(r0, r1, c0, c1)
    }

    fn gamma_bytes(&self) -> usize {
        PrefixSum2D::gamma_bytes(self)
    }
}

/// A zero-cost re-orientation of a [`PrefixSum2D`]: algorithms written for
/// "main × auxiliary" coordinates work on either orientation (the paper's
/// `-HOR`/`-VER` variants) through this adapter.
#[derive(Clone, Copy)]
pub struct View<'a> {
    pfx: &'a PrefixSum2D,
    axis: Axis,
}

impl<'a> View<'a> {
    /// Length of the main dimension.
    pub fn n_main(&self) -> usize {
        match self.axis {
            Axis::Rows => self.pfx.rows(),
            Axis::Cols => self.pfx.cols(),
        }
    }

    /// Length of the auxiliary dimension.
    pub fn n_aux(&self) -> usize {
        match self.axis {
            Axis::Rows => self.pfx.cols(),
            Axis::Cols => self.pfx.rows(),
        }
    }

    /// The main axis of this view.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The underlying prefix sums.
    pub fn prefix(&self) -> &'a PrefixSum2D {
        self.pfx
    }

    /// Load of main `[m0, m1)` × aux `[a0, a1)`.
    #[inline]
    pub fn load(&self, m0: usize, m1: usize, a0: usize, a1: usize) -> u64 {
        match self.axis {
            Axis::Rows => self.pfx.load4(m0, m1, a0, a1),
            Axis::Cols => self.pfx.load4(a0, a1, m0, m1),
        }
    }

    /// Maps view coordinates back to a matrix-space rectangle.
    pub fn rect(&self, m0: usize, m1: usize, a0: usize, a1: usize) -> Rect {
        match self.axis {
            Axis::Rows => Rect::new(m0, m1, a0, a1),
            Axis::Cols => Rect::new(a0, a1, m0, m1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn prefix_matches_naive_on_random_matrix() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = LoadMatrix::from_fn(13, 9, |_, _| rng.gen_range(0..50));
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.total(), m.total());
        for _ in 0..200 {
            let r0 = rng.gen_range(0..=13);
            let r1 = rng.gen_range(r0..=13);
            let c0 = rng.gen_range(0..=9);
            let c1 = rng.gen_range(c0..=9);
            let rect = Rect::new(r0, r1, c0, c1);
            assert_eq!(p.load(&rect), m.load_naive(&rect), "{rect:?}");
        }
    }

    #[test]
    fn extrema_and_delta() {
        let m = LoadMatrix::from_vec(2, 2, vec![2, 8, 4, 6]);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.max_cell(), 8);
        assert_eq!(p.min_cell(), 2);
        assert_eq!(p.delta(), Some(4.0));
        assert_eq!(p.total(), 20);
    }

    #[test]
    fn lower_bound_combines_average_and_max_cell() {
        let m = LoadMatrix::from_vec(1, 4, vec![10, 1, 1, 1]);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.lower_bound(2), 10); // max cell dominates
        assert_eq!(p.lower_bound(1), 13);
        let u = LoadMatrix::from_vec(1, 4, vec![3, 3, 3, 3]);
        let pu = PrefixSum2D::new(&u);
        assert_eq!(pu.lower_bound(2), 6); // average dominates
        assert_eq!(pu.lower_bound(3), 4); // ceil(12/3)=4 > 3
    }

    #[test]
    fn view_reorients_coordinates() {
        let m = LoadMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as u32);
        let p = PrefixSum2D::new(&m);
        let vr = p.view(Axis::Rows);
        let vc = p.view(Axis::Cols);
        assert_eq!(vr.n_main(), 3);
        assert_eq!(vr.n_aux(), 5);
        assert_eq!(vc.n_main(), 5);
        assert_eq!(vc.n_aux(), 3);
        // Same region through both views.
        let direct = p.load4(1, 3, 2, 4);
        assert_eq!(vr.load(1, 3, 2, 4), direct);
        assert_eq!(vc.load(2, 4, 1, 3), direct);
        assert_eq!(vr.rect(1, 3, 2, 4), Rect::new(1, 3, 2, 4));
        assert_eq!(vc.rect(2, 4, 1, 3), Rect::new(1, 3, 2, 4));
    }

    #[test]
    fn blocked_serial_is_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        // Shapes around the tile boundary, plus degenerate ones.
        for (rows, cols) in [
            (1, 7),
            (3, TILE - 1),
            (3, TILE),
            (3, TILE + 1),
            (2, 2 * TILE + 5),
            (64, 1),
            (9, 300),
        ] {
            let m = LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0..1000));
            let reference = PrefixSum2D::try_new_reference(&m).unwrap();
            let blocked = PrefixSum2D::try_new_serial(&m).unwrap();
            assert_eq!(
                blocked.dense_entries(),
                reference.dense_entries(),
                "{rows}x{cols}"
            );
            assert_eq!(blocked.max_cell, reference.max_cell);
            assert_eq!(blocked.min_cell, reference.min_cell);
            assert_eq!(blocked.total, reference.total);
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols) in [(1, 7), (2, 2), (37, 53), (64, 1), (100, 257), (4, 1100)] {
            let m = LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0..1000));
            let serial = PrefixSum2D::try_new_serial(&m).unwrap();
            for t in [1, 2, 3, 8] {
                let par = rectpart_parallel::with_threads(t, || {
                    PrefixSum2D::try_new_parallel(&m).unwrap()
                });
                assert_eq!(
                    par.dense_entries(),
                    serial.dense_entries(),
                    "{rows}x{cols} threads={t}"
                );
                assert_eq!(par.max_cell, serial.max_cell);
                assert_eq!(par.min_cell, serial.min_cell);
                assert_eq!(par.total, serial.total);
            }
        }
    }

    #[test]
    fn sparse_backend_answers_identically_through_the_facade() {
        let mut rng = StdRng::seed_from_u64(44);
        let m = LoadMatrix::from_fn(31, 57, |_, _| {
            if rng.gen_bool(0.9) {
                0
            } else {
                rng.gen_range(1..100)
            }
        });
        let dense = PrefixSum2D::try_new_with(&m, GammaMode::Dense).unwrap();
        let sparse = PrefixSum2D::try_new_with(&m, GammaMode::Sparse).unwrap();
        assert!(!dense.is_sparse());
        assert!(sparse.is_sparse());
        assert_eq!(sparse.backend(), GammaMode::Sparse);
        assert_eq!(dense.total(), sparse.total());
        assert_eq!(dense.max_cell(), sparse.max_cell());
        assert_eq!(dense.min_cell(), sparse.min_cell());
        assert!(sparse.gamma_bytes() < dense.gamma_bytes());
        for _ in 0..300 {
            let r0 = rng.gen_range(0..=31);
            let r1 = rng.gen_range(r0..=31);
            let c0 = rng.gen_range(0..=57);
            let c1 = rng.gen_range(c0..=57);
            assert_eq!(
                dense.load4(r0, r1, c0, c1),
                sparse.load4(r0, r1, c0, c1),
                "[{r0},{r1})x[{c0},{c1})"
            );
        }
    }

    #[test]
    fn auto_mode_obeys_the_zero_density_threshold() {
        let dense_m = LoadMatrix::from_fn(16, 16, |_, _| 1);
        let p = PrefixSum2D::try_new_with(&dense_m, GammaMode::Auto).unwrap();
        assert!(!p.is_sparse(), "no zeros must stay dense");
        let sparse_m =
            LoadMatrix::from_fn(16, 16, |r, c| if (r * 16 + c) % 10 == 0 { 5 } else { 0 });
        let p = PrefixSum2D::try_new_with(&sparse_m, GammaMode::Auto).unwrap();
        assert!(p.is_sparse(), "90% zeros must go sparse");
    }

    #[test]
    fn gamma_mode_parses() {
        assert_eq!(GammaMode::parse("dense"), Some(GammaMode::Dense));
        assert_eq!(GammaMode::parse(" SPARSE "), Some(GammaMode::Sparse));
        assert_eq!(GammaMode::parse("Auto"), Some(GammaMode::Auto));
        assert_eq!(GammaMode::parse("fast"), None);
    }

    #[test]
    fn with_config_forces_thread_budget() {
        let m = LoadMatrix::from_fn(12, 12, |r, c| (r + c) as u32);
        let cfg = rectpart_parallel::ParallelismConfig::threads(4);
        let p = PrefixSum2D::with_config(&m, cfg);
        assert_eq!(p.total(), m.total());
    }

    #[test]
    fn empty_matrix() {
        let m = LoadMatrix::zeros(0, 0);
        let p = PrefixSum2D::new(&m);
        assert_eq!(p.total(), 0);
        assert_eq!(p.delta(), None);
        assert_eq!(p.min_cell(), 0);
    }

    fn random_updates(
        rng: &mut StdRng,
        rows: usize,
        cols: usize,
        k: usize,
        hi: u32,
    ) -> Vec<RowUpdate> {
        (0..k)
            .map(|_| RowUpdate {
                row: rng.gen_range(0..rows),
                cells: (0..cols).map(|_| rng.gen_range(0..hi)).collect(),
            })
            .collect()
    }

    #[test]
    fn dense_patch_is_bit_identical_to_rebuild() {
        let mut rng = StdRng::seed_from_u64(91);
        for (rows, cols, k) in [(1, 6, 1), (9, 13, 3), (40, 17, 8), (7, 7, 12)] {
            let mut m = LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0..500));
            let mut p = PrefixSum2D::try_new_with(&m, GammaMode::Dense).unwrap();
            let mut ex = RowExtrema::new(&m);
            let updates = random_updates(&mut rng, rows, cols, k, 500);
            p.apply_row_updates(&mut m, &updates, &mut ex).unwrap();
            let fresh = PrefixSum2D::try_new_with(&m, GammaMode::Dense).unwrap();
            assert_eq!(p.dense_entries(), fresh.dense_entries(), "{rows}x{cols}");
            assert_eq!(p.total(), fresh.total());
            assert_eq!(p.max_cell(), fresh.max_cell());
            assert_eq!(p.min_cell(), fresh.min_cell());
        }
    }

    #[test]
    fn sparse_patch_is_bit_identical_to_rebuild() {
        let mut rng = StdRng::seed_from_u64(92);
        for (rows, cols, k) in [(1, 6, 1), (11, 19, 4), (33, 24, 9)] {
            let mut m = LoadMatrix::from_fn(rows, cols, |_, _| {
                if rng.gen_bool(0.8) {
                    0
                } else {
                    rng.gen_range(1..100)
                }
            });
            let mut p = PrefixSum2D::try_new_with(&m, GammaMode::Sparse).unwrap();
            let mut ex = RowExtrema::new(&m);
            let mut updates = random_updates(&mut rng, rows, cols, k, 4);
            // Bias updates toward zeros so run structure genuinely changes.
            for u in &mut updates {
                for c in &mut u.cells {
                    if *c == 1 {
                        *c = 0;
                    }
                }
            }
            p.apply_row_updates(&mut m, &updates, &mut ex).unwrap();
            let fresh = PrefixSum2D::try_new_with(&m, GammaMode::Sparse).unwrap();
            let (Repr::Sparse(ps), Repr::Sparse(fs)) = (&p.repr, &fresh.repr) else {
                panic!("sparse backend expected");
            };
            assert_eq!(ps.raw_parts(), fs.raw_parts(), "{rows}x{cols}");
            assert_eq!(p.total(), fresh.total());
            assert_eq!(p.max_cell(), fresh.max_cell());
            assert_eq!(p.min_cell(), fresh.min_cell());
        }
    }

    #[test]
    fn patch_dedups_later_update_wins_and_shrinks_extrema() {
        let mut m = LoadMatrix::from_vec(3, 2, vec![9, 1, 2, 3, 4, 5]);
        let mut p = PrefixSum2D::try_new(&m).unwrap();
        let mut ex = RowExtrema::new(&m);
        assert_eq!(p.max_cell(), 9);
        let updates = vec![
            RowUpdate {
                row: 0,
                cells: vec![7, 7],
            },
            RowUpdate {
                row: 0,
                cells: vec![2, 2],
            },
        ];
        let n = p.apply_row_updates(&mut m, &updates, &mut ex).unwrap();
        assert_eq!(n, 1, "duplicates collapse to one patched row");
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(p.max_cell(), 5, "old max row was overwritten");
        assert_eq!(p.total(), 2 + 2 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn patch_validation_errors_leave_state_unchanged() {
        let mut m = LoadMatrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let mut p = PrefixSum2D::try_new(&m).unwrap();
        let mut ex = RowExtrema::new(&m);
        let bad_row = vec![RowUpdate {
            row: 5,
            cells: vec![0, 0],
        }];
        assert!(matches!(
            p.apply_row_updates(&mut m, &bad_row, &mut ex),
            Err(RectpartError::RowOutOfRange { row: 5, rows: 2 })
        ));
        let ragged = vec![RowUpdate {
            row: 0,
            cells: vec![0, 0, 0],
        }];
        assert!(matches!(
            p.apply_row_updates(&mut m, &ragged, &mut ex),
            Err(RectpartError::RaggedRow { .. })
        ));
        assert_eq!(m.data(), &[1, 2, 3, 4]);
        assert_eq!(p.total(), 10);
        assert_eq!(
            p.apply_row_updates(&mut m, &[], &mut ex).unwrap(),
            0,
            "empty delta is a no-op"
        );
    }

    #[test]
    fn try_new_surfaces_overflow_on_both_paths() {
        // A row of u32::MAX cells long enough to overflow u64 would need
        // ~2^32 cells; instead overflow the *column* accumulation across
        // rows cannot be forced cheaply either — u64 genuinely needs
        // ≥ 2^32 max-load cells. So this test only pins the Ok side and
        // the charge; the Err side is exercised by fault injection.
        let m = LoadMatrix::from_vec(2, 2, vec![u32::MAX; 4]);
        rectpart_obs::work::reset();
        let p = PrefixSum2D::try_new(&m).unwrap();
        assert_eq!(p.total(), 4 * u32::MAX as u64);
        assert!(rectpart_obs::work::spent() >= 5);
        let r = PrefixSum2D::try_new_reference(&m).unwrap();
        assert_eq!(r.total(), p.total());
    }
}
