//! Optimal hierarchical bipartitioning (§3.3, equations 1–5).
//!
//! The paper gives a polynomial dynamic program over
//! `(x1, x2, y1, y2, m)` sub-rectangle states — and notes its complexity
//! is too high for real systems ("we expect it to run in hours even on
//! small instances"), extracting `HIER-RELAXED` from it instead. We
//! implement the DP faithfully (with the paper's binary-search refinement
//! of the cut position) as a *test oracle*: on small matrices it bounds
//! every hierarchical heuristic from below and validates `HIER-RELAXED`'s
//! derivation.

use crate::cache::ShardedMemo;
use crate::geometry::{Axis, Rect};
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;

type Key = (usize, usize, usize, usize, usize);

/// Concurrent memo over sub-rectangle × processor-count states. The DP
/// values are pure functions of the state, so sharing one memo across
/// worker tasks is sound (a racing duplicate solve inserts the same
/// value) and lets the root-level candidates below proceed in parallel.
type Memo = ShardedMemo<Key, u64>;

/// Computes an optimal hierarchical bipartition of the whole matrix into
/// `m` rectangles. Memoized over sub-rectangle × processor-count states;
/// use on small instances only (the state space is `O(n1²n2²m)`).
pub fn hier_opt(pfx: &PrefixSum2D, m: usize) -> (Partition, u64) {
    assert!(m >= 1);
    // One span for the whole DP: inner states race on the shared memo, so
    // per-state spans would not be thread-count deterministic.
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::HierOptSolve);
    let memo = Memo::new();
    let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
    let value = solve_root(pfx, &full, m, &memo);
    let mut rects = Vec::with_capacity(m);
    rebuild(pfx, &full, m, &memo, &mut rects);
    debug_assert_eq!(rects.len(), m);
    let partition = Partition::new(rects);
    debug_assert_eq!(partition.lmax(pfx), value);
    (partition, value)
}

/// Optimal hierarchical bottleneck value only.
pub fn hier_opt_value(pfx: &PrefixSum2D, m: usize) -> u64 {
    let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::HierOptSolve);
    let memo = Memo::new();
    let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
    solve_root(pfx, &full, m, &memo)
}

fn key(rect: &Rect, m: usize) -> Key {
    (rect.r0, rect.r1, rect.c0, rect.c1, m)
}

/// Root solve: the `(axis, j)` candidates of the top node explore
/// largely disjoint families of subproblems, so they fan out across
/// worker tasks against the shared memo. `min` is order-independent and
/// every DP value is deterministic, so the result is identical to the
/// serial nested loop. Deeper nodes stay serial ([`solve`]): their
/// candidate loops are dominated by memo hits and would not amortize a
/// task spawn.
fn solve_root(pfx: &PrefixSum2D, rect: &Rect, m: usize, memo: &Memo) -> u64 {
    if m == 1 || rect.area() <= 1 {
        return pfx.load(rect);
    }
    let cands: Vec<(Axis, usize)> = [Axis::Rows, Axis::Cols]
        .into_iter()
        .filter(|&axis| {
            let (lo, hi) = rect.extent(axis);
            hi - lo >= 2
        })
        .flat_map(|axis| (1..m).map(move |j| (axis, j)))
        .collect();
    let best =
        rectpart_parallel::map_slice(&cands, |&(axis, j)| candidate(pfx, rect, axis, j, m, memo))
            .into_iter()
            .min()
            .unwrap_or(u64::MAX);
    if memo.insert_if_absent(key(rect, m), best) {
        rectpart_obs::incr(rectpart_obs::Counter::HierOptMemoStates);
    }
    best
}

fn solve(pfx: &PrefixSum2D, rect: &Rect, m: usize, memo: &Memo) -> u64 {
    if m == 1 {
        return pfx.load(rect);
    }
    if rect.area() <= 1 {
        // Unsplittable: the extra processors idle at load 0.
        return pfx.load(rect);
    }
    if let Some(v) = memo.get(&key(rect, m)) {
        return v;
    }
    let mut best = u64::MAX;
    for axis in [Axis::Rows, Axis::Cols] {
        let (lo, hi) = rect.extent(axis);
        if hi - lo < 2 {
            continue;
        }
        for j in 1..m {
            best = best.min(candidate(pfx, rect, axis, j, m, memo));
        }
    }
    // First-insert counting stays deterministic under racing duplicate
    // solves: the set of visited states is thread-independent even though
    // a state may be solved more than once.
    if memo.insert_if_absent(key(rect, m), best) {
        rectpart_obs::incr(rectpart_obs::Counter::HierOptMemoStates);
    }
    best
}

/// Best bottleneck for one `(axis, j)` candidate of a node: for fixed
/// `(axis, j)`, `g(s) = max(solve(first, j), solve(second, m-j))` is
/// bi-monotonic in the cut position `s` (first grows, second shrinks):
/// binary search the crossing, exactly the refinement the paper
/// describes in §3.3.
fn candidate(pfx: &PrefixSum2D, rect: &Rect, axis: Axis, j: usize, m: usize, memo: &Memo) -> u64 {
    let (lo, hi) = rect.extent(axis);
    let (mut a, mut b) = (lo + 1, hi - 1);
    while a < b {
        let mid = a + (b - a) / 2;
        let (r1, r2) = rect.split(axis, mid);
        let v1 = solve(pfx, &r1, j, memo);
        let v2 = solve(pfx, &r2, m - j, memo);
        if v1 >= v2 {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let mut best = u64::MAX;
    for s in [a, (a - 1).max(lo + 1)] {
        let (r1, r2) = rect.split(axis, s);
        let v1 = solve(pfx, &r1, j, memo);
        let v2 = solve(pfx, &r2, m - j, memo);
        best = best.min(v1.max(v2));
    }
    best
}

/// Re-derives the optimal choices from the memo table to emit rectangles.
fn rebuild(pfx: &PrefixSum2D, rect: &Rect, m: usize, memo: &Memo, out: &mut Vec<Rect>) {
    if m == 1 {
        out.push(*rect);
        return;
    }
    if rect.area() <= 1 {
        out.push(*rect);
        out.extend(std::iter::repeat_n(Rect::EMPTY, m - 1));
        return;
    }
    // lint:allow(panic) -- invariant: `solve` memoized the root state before `rebuild` runs
    let target = memo
        .get(&key(rect, m))
        .expect("invariant: root state memoized");
    let lookup = |r: &Rect, q: usize| -> u64 {
        if q == 1 || r.area() <= 1 {
            pfx.load(r)
        } else {
            // lint:allow(panic) -- invariant: rebuild replays exactly the states `solve` visited
            memo.get(&key(r, q))
                .expect("invariant: visited state memoized")
        }
    };
    for axis in [Axis::Rows, Axis::Cols] {
        let (lo, hi) = rect.extent(axis);
        if hi - lo < 2 {
            continue;
        }
        for j in 1..m {
            // Memoized values exist for exactly the states `solve`
            // visited; re-run its binary search to land on the same cuts.
            let (mut a, mut b) = (lo + 1, hi - 1);
            while a < b {
                let mid = a + (b - a) / 2;
                let (r1, r2) = rect.split(axis, mid);
                if lookup(&r1, j) >= lookup(&r2, m - j) {
                    b = mid;
                } else {
                    a = mid + 1;
                }
            }
            for s in [a, (a - 1).max(lo + 1)] {
                let (r1, r2) = rect.split(axis, s);
                if lookup(&r1, j).max(lookup(&r2, m - j)) == target {
                    rebuild(pfx, &r1, j, memo, out);
                    rebuild(pfx, &r2, m - j, memo, out);
                    return;
                }
            }
        }
    }
    // lint:allow(panic) -- invariant: the memoized optimum was produced by one of these splits
    unreachable!("invariant: memoized optimum must be reproducible");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{HierRb, HierRelaxed, HierVariant};
    use crate::matrix::LoadMatrix;
    use crate::traits::Partitioner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(0..30)
        }))
    }

    #[test]
    fn optimal_bounds_every_hierarchical_heuristic() {
        for seed in 0..5 {
            let pfx = random_pfx(7, 8, seed);
            for m in [2, 3, 4, 5] {
                let (part, value) = hier_opt(&pfx, m);
                assert!(part.validate(&pfx).is_ok(), "seed={seed} m={m}");
                assert_eq!(part.lmax(&pfx), value);
                assert!(value >= pfx.lower_bound(m).min(value)); // sanity
                for variant in [
                    HierVariant::Load,
                    HierVariant::Dist,
                    HierVariant::Hor,
                    HierVariant::Ver,
                ] {
                    let rb = HierRb { variant }.partition(&pfx, m).lmax(&pfx);
                    let rel = HierRelaxed {
                        variant,
                        ..HierRelaxed::default()
                    }
                    .partition(&pfx, m)
                    .lmax(&pfx);
                    assert!(rb >= value, "RB-{variant:?} {rb} < opt {value}");
                    assert!(rel >= value, "RELAXED-{variant:?} {rel} < opt {value}");
                }
            }
        }
    }

    #[test]
    fn single_processor_and_single_cell() {
        let pfx = random_pfx(4, 4, 9);
        let (p, v) = hier_opt(&pfx, 1);
        assert_eq!(v, pfx.total());
        assert!(p.validate(&pfx).is_ok());

        let one = PrefixSum2D::new(&LoadMatrix::from_vec(1, 1, vec![7]));
        let (p, v) = hier_opt(&one, 3);
        assert_eq!(v, 7);
        assert!(p.validate(&one).is_ok());
    }

    #[test]
    fn optimal_on_uniform_quadrants() {
        let mat = LoadMatrix::from_fn(4, 4, |_, _| 1);
        let pfx = PrefixSum2D::new(&mat);
        let (_, v) = hier_opt(&pfx, 4);
        assert_eq!(v, 4);
        let (_, v8) = hier_opt(&pfx, 8);
        assert_eq!(v8, 2);
    }

    #[test]
    fn value_only_matches_full_solve() {
        let pfx = random_pfx(6, 5, 11);
        for m in [2, 4, 6] {
            assert_eq!(hier_opt(&pfx, m).1, hier_opt_value(&pfx, m));
        }
    }

    #[test]
    fn hierarchical_optimum_respects_global_lower_bound() {
        // Hierarchical partitions are a subclass of all rectangle
        // partitions, so their optimum is bounded below by the global
        // lower bounds of §2.1.
        let pfx = random_pfx(6, 6, 3);
        for m in [2, 3, 4] {
            assert!(hier_opt_value(&pfx, m) >= pfx.lower_bound(m));
        }
    }
}
