//! Theoretical guarantees of the paper (Lemma 1, Theorems 1–4).
//!
//! These formulas require every cell of the matrix to be strictly
//! positive (Δ = max/min must be defined). They are used by the tests to
//! check that the heuristics never exceed their proven worst case, and by
//! the figure-9 experiment which plots the Theorem 3 guarantee next to
//! the measured imbalance.

/// Lemma 1: bound on the `DirectCut` bottleneck over a positive array of
/// `n` elements split into `m` parts —
/// `Lmax(DC) ≤ (Σ/m)(1 + Δm/n)`, expressed here as the multiplicative
/// factor `1 + Δm/n` over the average load.
pub fn lemma1_factor(delta: f64, m: usize, n: usize) -> f64 {
    assert!(delta >= 1.0 && n > 0);
    1.0 + delta * m as f64 / n as f64
}

/// Theorem 1: approximation ratio of `JAG-PQ-HEUR` on an `n1 × n2`
/// positive matrix with `P × Q` processors:
/// `(1 + ΔP/n1)(1 + ΔQ/n2)`.
pub fn jag_pq_heur_ratio(delta: f64, p: usize, q: usize, n1: usize, n2: usize) -> f64 {
    assert!(delta >= 1.0 && p < n1.max(1) + 1 && q < n2.max(1) + 1);
    (1.0 + delta * p as f64 / n1 as f64) * (1.0 + delta * q as f64 / n2 as f64)
}

/// Theorem 2: the stripe count minimizing the Theorem 1 ratio,
/// `P = √(m · n1 / n2)` (continuous optimum; callers round).
pub fn jag_pq_heur_best_p(m: usize, n1: usize, n2: usize) -> f64 {
    (m as f64 * n1 as f64 / n2 as f64).sqrt()
}

/// Theorem 3: approximation ratio of `JAG-M-HEUR` with `P` stripes on an
/// `n1 × n2` positive matrix and `m` processors:
/// `m/(m−P) · (1 + Δ/n2) + Δ·m/(P·n2) · (1 + ΔP/n1)`.
pub fn jag_m_heur_ratio(delta: f64, p: usize, m: usize, n1: usize, n2: usize) -> f64 {
    assert!(delta >= 1.0 && p < m && p < n1 + 1);
    let (m, p, n1, n2) = (m as f64, p as f64, n1 as f64, n2 as f64);
    // lint:allow(panic-reach) -- f64 division is total (never panics)
    m / (m - p) * (1.0 + delta / n2) + delta * m / (p * n2) * (1.0 + delta * p / n1)
}

/// Theorem 4: the stripe count minimizing the Theorem 3 ratio,
/// `P = m(√(Δ(Δ + n2)) − Δ) / n2` (continuous optimum; callers round and
/// clamp to `[1, min(m − 1, n1)]`).
pub fn jag_m_heur_best_p(delta: f64, m: usize, n2: usize) -> f64 {
    let (m, n2) = (m as f64, n2 as f64);
    // lint:allow(panic-reach) -- f64 division is total (never panics)
    m * ((delta * (delta + n2)).sqrt() - delta) / n2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_reduces_to_two_approximation() {
        // With m = n and Δ = 1 the factor is 2 — DC's generic guarantee.
        assert!((lemma1_factor(1.0, 8, 8) - 2.0).abs() < 1e-12);
        // Finer split: factor approaches 1.
        assert!(lemma1_factor(1.0, 8, 8000) < 1.01);
    }

    #[test]
    fn theorem1_is_product_of_two_lemma1_factors() {
        let r = jag_pq_heur_ratio(1.5, 10, 10, 100, 100);
        let f = lemma1_factor(1.5, 10, 100);
        assert!((r - f * f).abs() < 1e-12);
    }

    #[test]
    fn theorem2_square_case() {
        // n1 = n2 -> P = sqrt(m).
        assert!((jag_pq_heur_best_p(100, 512, 512) - 10.0).abs() < 1e-12);
        // Taller matrix gets more stripes.
        assert!(jag_pq_heur_best_p(100, 1024, 256) > 10.0);
    }

    #[test]
    fn theorem3_finite_and_above_one() {
        let r = jag_m_heur_ratio(1.2, 28, 800, 514, 514);
        assert!(r > 1.0 && r.is_finite());
    }

    #[test]
    fn theorem4_minimizes_theorem3() {
        let (delta, m, n1, n2) = (1.2, 800, 514, 514);
        let p_star = jag_m_heur_best_p(delta, m, n2).round() as usize;
        let at_star = jag_m_heur_ratio(delta, p_star, m, n1, n2);
        // The analytic optimum beats neighbouring integer choices.
        for p in [p_star.saturating_sub(5).max(1), p_star + 5] {
            assert!(jag_m_heur_ratio(delta, p, m, n1, n2) >= at_star - 1e-9);
        }
        // And comfortably beats a far-off choice.
        assert!(jag_m_heur_ratio(delta, 300, m, n1, n2) > at_star);
    }

    #[test]
    fn theorem3_improves_on_theorem1_for_large_m() {
        // The paper's §3.2.2 discussion: for large m, m-way beats P×Q-way.
        let (delta, n1, n2) = (1.2, 514, 514);
        let m = 10_000;
        let p = 100; // sqrt(m)
        let pq = jag_pq_heur_ratio(delta, p, p, n1, n2);
        let mw = jag_m_heur_ratio(delta, p, m, n1, n2);
        assert!(
            mw < pq,
            "m-way guarantee {mw} should beat PxQ guarantee {pq}"
        );
    }
}
