//! Hierarchical bipartition heuristics (§3.3): `HIER-RB` and
//! `HIER-RELAXED`.
//!
//! A hierarchical partition recursively splits a rectangle into two along
//! one dimension, dividing the processors between the halves.
//! `HIER-RB` (Berger–Bokhari recursive bisection) always splits the
//! processors `⌊m/2⌋ / ⌈m/2⌉`; `HIER-RELAXED` — derived by the paper from
//! its optimal hierarchical dynamic program — also optimizes *how many*
//! processors go to each side, evaluating subproblems with the
//! average-load relaxation `L(sub)/j` instead of a recursive solve.

use crate::cancel::Checker;
use crate::error::RectpartError;
use crate::geometry::{Axis, Rect};
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;
use crate::traits::Partitioner;

/// Minimum processors in a node before its two recursive halves are
/// forked onto separate tasks. Below this the subtrees are too small to
/// amortize a thread spawn; recursion inside a forked half keeps forking
/// while its share stays above the threshold, so the fork depth tracks
/// the thread budget (`join` halves it per level).
const PARALLEL_PROCS_MIN: usize = 32;

/// Recurse into the two halves of a bipartition node, forking onto
/// separate tasks when `m` is large enough and threads are available.
/// The first half's rectangles are always appended before the second
/// half's, so the output order is bit-identical to serial recursion.
/// Cancellation in either half cancels the node wholesale — partial
/// subtrees are discarded, never merged into a completed result.
fn recurse_halves(
    out: &mut Vec<Rect>,
    m: usize,
    first: impl FnOnce(&mut Vec<Rect>) -> Result<(), RectpartError> + Send,
    second: impl FnOnce(&mut Vec<Rect>) -> Result<(), RectpartError> + Send,
) -> Result<(), RectpartError> {
    // One bipartition node regardless of whether its halves fork.
    rectpart_obs::incr(rectpart_obs::Counter::HierBisections);
    if m >= PARALLEL_PROCS_MIN && rectpart_parallel::current_threads() >= 2 {
        let (a, b) = rectpart_parallel::join(
            || {
                let mut v = Vec::new();
                first(&mut v).map(|()| v)
            },
            || {
                let mut v = Vec::new();
                second(&mut v).map(|()| v)
            },
        );
        out.extend(a?);
        out.extend(b?);
        Ok(())
    } else {
        first(out)?;
        second(out)
    }
}

/// Dimension-selection policy for the hierarchical algorithms (§4.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HierVariant {
    /// Try both dimensions, keep the split with the best expected load
    /// balance (`-LOAD`, the best performer in the paper's figures 3–4).
    #[default]
    Load,
    /// Split the longer dimension (`-DIST`).
    Dist,
    /// Alternate dimensions by recursion depth, starting with rows
    /// (`-HOR`).
    Hor,
    /// Alternate dimensions by recursion depth, starting with columns
    /// (`-VER`).
    Ver,
}

impl HierVariant {
    pub(crate) fn suffix(self) -> &'static str {
        match self {
            HierVariant::Load => "LOAD",
            HierVariant::Dist => "DIST",
            HierVariant::Hor => "HOR",
            HierVariant::Ver => "VER",
        }
    }

    /// Candidate split axes for a node, most preferred first. Axes along
    /// which the rectangle cannot be split (extent < 2) are filtered, so
    /// the list may be empty (single-cell rectangle).
    fn candidates(self, rect: &Rect, depth: usize) -> Vec<Axis> {
        let axes: Vec<Axis> = match self {
            HierVariant::Load => vec![Axis::Rows, Axis::Cols],
            HierVariant::Dist => {
                if rect.height() >= rect.width() {
                    vec![Axis::Rows, Axis::Cols]
                } else {
                    vec![Axis::Cols, Axis::Rows]
                }
            }
            HierVariant::Hor | HierVariant::Ver => {
                let first = if depth.is_multiple_of(2) == (self == HierVariant::Hor) {
                    Axis::Rows
                } else {
                    Axis::Cols
                };
                vec![first, first.flip()]
            }
        };
        let splittable: Vec<Axis> = axes
            .iter()
            .copied()
            .filter(|&a| {
                let (lo, hi) = rect.extent(a);
                hi - lo >= 2
            })
            .collect();
        match self {
            // LOAD genuinely considers both; the others take the first
            // splittable axis of their preference order.
            HierVariant::Load => splittable,
            _ => splittable.into_iter().take(1).collect(),
        }
    }
}

/// `HIER-RB` — recursive bisection: split the rectangle into two parts of
/// approximately equal per-processor load, give `⌊m/2⌋` processors to one
/// side and `⌈m/2⌉` to the other (both assignments of the odd processor
/// are tried, per the paper), recurse. `O(m log max(n1, n2))`.
#[derive(Clone, Debug, Default)]
pub struct HierRb {
    /// Dimension-selection policy.
    pub variant: HierVariant,
}

impl HierRb {
    /// The paper's preferred configuration (`-LOAD`).
    pub fn load() -> Self {
        Self::default()
    }
}

impl Partitioner for HierRb {
    fn name(&self) -> String {
        format!("HIER-RB-{}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let mut rects = Vec::with_capacity(m);
        let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
        if rb_recurse(pfx, self.variant, full, m, 0, &mut rects, Checker::OFF).is_err() {
            // Unreachable with Checker::OFF; a valid one-part fallback.
            one_part_rects(full, m, &mut rects);
        }
        debug_assert_eq!(rects.len(), m);
        Partition::new(rects)
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let mut rects = Vec::with_capacity(m);
        let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
        rb_recurse(pfx, self.variant, full, m, 0, &mut rects, Checker::active())?;
        Ok(Partition::new(rects))
    }
}

/// Discharges the unreachable `Err` arm of the infallible entry points:
/// the whole matrix on one processor, the rest idle.
fn one_part_rects(full: Rect, m: usize, out: &mut Vec<Rect>) {
    out.clear();
    out.push(full);
    out.extend(std::iter::repeat_n(Rect::EMPTY, m - 1));
}

#[allow(clippy::too_many_arguments)]
fn rb_recurse(
    pfx: &PrefixSum2D,
    variant: HierVariant,
    rect: Rect,
    m: usize,
    depth: usize,
    out: &mut Vec<Rect>,
    check: Checker,
) -> Result<(), RectpartError> {
    if m == 1 {
        out.push(rect);
        return Ok(());
    }
    // One poll per bipartition node: each node's split search is the
    // recursion's serial work quantum.
    check.check()?;
    // Span depth mirrors the bipartition tree depth: each level nests one
    // `core.hier.level#d` inside its parent's (forked halves re-root under
    // the captured parent path, so the tree is thread-count independent).
    let _span =
        rectpart_obs::span::enter_arg(rectpart_obs::span::SpanKind::HierLevel, depth as u32);
    let candidates = variant.candidates(&rect, depth);
    if candidates.is_empty() {
        // Unsplittable (≤ 1 cell): one processor takes it, the rest idle.
        out.push(rect);
        out.extend(std::iter::repeat_n(Rect::EMPTY, m - 1));
        return Ok(());
    }
    let m1 = m / 2;
    let m2 = m - m1;
    let mut best: Option<(u128, Axis, usize, usize)> = None;
    for &axis in &candidates {
        for (ma, mb) in assignments(m1, m2) {
            let (at, key) = best_balanced_split(pfx, &rect, axis, ma, mb);
            if best.is_none_or(|(bk, ..)| key < bk) {
                best = Some((key, axis, at, ma));
            }
        }
    }
    // lint:allow(panic) -- invariant: `candidates` is non-empty (checked above) and every candidate yields a keyed split
    let (_, axis, at, ma) = best.expect("invariant: non-empty candidates produce a best split");
    let (a, b) = rect.split(axis, at);
    recurse_halves(
        out,
        m,
        |v| rb_recurse(pfx, variant, a, ma, depth + 1, v, check),
        |v| rb_recurse(pfx, variant, b, m - ma, depth + 1, v, check),
    )
}

/// The one or two ways to hand `⌊m/2⌋ + ⌈m/2⌉` processors to the halves.
fn assignments(m1: usize, m2: usize) -> impl Iterator<Item = (usize, usize)> {
    let second = if m1 == m2 { None } else { Some((m2, m1)) };
    std::iter::once((m1, m2)).chain(second)
}

/// Best split of `rect` along `axis` when the first part gets `ma`
/// processors and the second `mb`: minimizes
/// `max(L(first)/ma, L(second)/mb)`, located by binary search on the
/// crossing of the two monotone per-processor loads. Returns
/// `(split position, max(L1·mb, L2·ma))` — the comparable cross-product
/// key (denominator `ma·mb` is constant across candidates of one node).
fn best_balanced_split(
    pfx: &PrefixSum2D,
    rect: &Rect,
    axis: Axis,
    ma: usize,
    mb: usize,
) -> (usize, u128) {
    let (lo, hi) = rect.extent(axis);
    let side = |at: usize| -> (u128, u128) {
        let (a, b) = rect.split(axis, at);
        (pfx.load(&a) as u128, pfx.load(&b) as u128)
    };
    // Smallest split with L1·mb >= L2·ma.
    let (mut a, mut b) = (lo, hi);
    while a < b {
        let mid = a + (b - a) / 2;
        let (l1, l2) = side(mid);
        if l1 * mb as u128 >= l2 * ma as u128 {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    let key = |at: usize| {
        let (l1, l2) = side(at);
        (l1 * mb as u128).max(l2 * ma as u128)
    };
    let mut best = (a, key(a));
    if a > lo {
        let k = key(a - 1);
        if k < best.1 {
            best = (a - 1, k);
        }
    }
    best
}

/// `HIER-RELAXED` — the heuristic the paper extracts from its optimal
/// hierarchical dynamic program: at every node choose the dimension, the
/// cut position *and* the processor split `j / (m−j)` minimizing the
/// relaxed objective `max(L(first)/j, L(second)/(m−j))`, then recurse on
/// both halves. `O(m² log max(n1, n2))`.
///
/// One engineering stabilization on top of the paper's description:
/// candidate splits are visited from the balanced `j = m/2` outward, and
/// a less balanced split must beat the incumbent by a relative margin
/// ([`HierRelaxed::balance_bias`], default 0.1%). On noisy near-uniform
/// loads *every* proportional split scores within noise of `Lavg`, and
/// chasing that noise picks processor counts whose integer cell geometry
/// cannot tile evenly many levels later — the erratic behaviour the
/// paper itself reports for this algorithm (its figure 11). The margin
/// resolves meaningless ties toward the balanced split without
/// suppressing real structural gains.
#[derive(Clone, Debug)]
pub struct HierRelaxed {
    /// Dimension-selection policy.
    pub variant: HierVariant,
    /// Relative improvement a less balanced processor split must show
    /// over a more balanced one (0 reproduces the paper's literal greedy
    /// argmin).
    pub balance_bias: f64,
}

impl Default for HierRelaxed {
    fn default() -> Self {
        Self {
            variant: HierVariant::default(),
            balance_bias: 1e-3,
        }
    }
}

impl HierRelaxed {
    /// The paper's preferred configuration (`-LOAD`).
    pub fn load() -> Self {
        Self::default()
    }
}

impl Partitioner for HierRelaxed {
    fn name(&self) -> String {
        format!("HIER-RELAXED-{}", self.variant.suffix())
    }

    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert!(m >= 1);
        let mut rects = Vec::with_capacity(m);
        let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
        let run = relaxed_recurse(
            pfx,
            self.variant,
            self.balance_bias,
            full,
            m,
            0,
            &mut rects,
            Checker::OFF,
        );
        if run.is_err() {
            // Unreachable with Checker::OFF; a valid one-part fallback.
            one_part_rects(full, m, &mut rects);
        }
        debug_assert_eq!(rects.len(), m);
        Partition::new(rects)
    }

    fn try_partition(&self, pfx: &PrefixSum2D, m: usize) -> Result<Partition, RectpartError> {
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let mut rects = Vec::with_capacity(m);
        let full = Rect::new(0, pfx.rows(), 0, pfx.cols());
        relaxed_recurse(
            pfx,
            self.variant,
            self.balance_bias,
            full,
            m,
            0,
            &mut rects,
            Checker::active(),
        )?;
        Ok(Partition::new(rects))
    }
}

#[allow(clippy::too_many_arguments)]
fn relaxed_recurse(
    pfx: &PrefixSum2D,
    variant: HierVariant,
    bias: f64,
    rect: Rect,
    m: usize,
    depth: usize,
    out: &mut Vec<Rect>,
    check: Checker,
) -> Result<(), RectpartError> {
    if m == 1 {
        out.push(rect);
        return Ok(());
    }
    // One poll per bipartition node, mirroring `rb_recurse`.
    check.check()?;
    let _span =
        rectpart_obs::span::enter_arg(rectpart_obs::span::SpanKind::HierLevel, depth as u32);
    let candidates = variant.candidates(&rect, depth);
    if candidates.is_empty() {
        out.push(rect);
        out.extend(std::iter::repeat_n(Rect::EMPTY, m - 1));
        return Ok(());
    }
    // Relaxed keys compare across different processor splits, so the
    // cross-product trick no longer has a common denominator; loads are
    // < 2^53 in every supported instance, so f64 comparison is exact
    // enough. Splits are visited from the balanced one (j = m/2) outward;
    // a later (less balanced) candidate must improve by the relative
    // `bias` margin (see the type-level docs for why).
    let mut best: Option<(f64, Axis, usize, usize)> = None;
    for &axis in &candidates {
        for step in 0..m - 1 {
            let half = m / 2;
            let j = if step % 2 == 0 {
                half - step / 2
            } else {
                half + step.div_ceil(2)
            };
            if j == 0 || j >= m {
                continue;
            }
            let (at, _) = best_balanced_split(pfx, &rect, axis, j, m - j);
            let (a, b) = rect.split(axis, at);
            let key = (pfx.load(&a) as f64 / j as f64).max(pfx.load(&b) as f64 / (m - j) as f64);
            if best.is_none_or(|(bk, ..)| key < bk * (1.0 - bias)) {
                best = Some((key, axis, at, j));
            }
        }
    }
    // lint:allow(panic) -- invariant: m >= 2 makes j = m/2 a valid first candidate, so the scan always keys at least one split
    let (_, axis, at, j) = best.expect("invariant: the relaxed scan keys at least one split");
    let (a, b) = rect.split(axis, at);
    recurse_halves(
        out,
        m,
        |v| relaxed_recurse(pfx, variant, bias, a, j, depth + 1, v, check),
        |v| relaxed_recurse(pfx, variant, bias, b, m - j, depth + 1, v, check),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LoadMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const VARIANTS: [HierVariant; 4] = [
        HierVariant::Load,
        HierVariant::Dist,
        HierVariant::Hor,
        HierVariant::Ver,
    ];

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(1..100)
        }))
    }

    #[test]
    fn rb_valid_for_all_variants_and_m() {
        let pfx = random_pfx(20, 26, 1);
        for variant in VARIANTS {
            for m in [1, 2, 3, 5, 7, 8, 16, 31] {
                let p = HierRb { variant }.partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "{variant:?} m={m}");
                assert_eq!(p.parts(), m);
            }
        }
    }

    #[test]
    fn relaxed_valid_for_all_variants_and_m() {
        let pfx = random_pfx(20, 26, 2);
        for variant in VARIANTS {
            for m in [1, 2, 3, 5, 7, 8, 16, 31] {
                let p = HierRelaxed {
                    variant,
                    ..HierRelaxed::default()
                }
                .partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "{variant:?} m={m}");
            }
        }
    }

    #[test]
    fn rb_power_of_two_on_uniform_is_perfect() {
        let mat = LoadMatrix::from_fn(16, 16, |_, _| 2);
        let pfx = PrefixSum2D::new(&mat);
        for m in [2, 4, 8, 16, 32] {
            let p = HierRb::load().partition(&pfx, m);
            assert_eq!(p.lmax(&pfx), pfx.total() / m as u64, "m={m}");
        }
    }

    #[test]
    fn relaxed_not_worse_than_rb_on_average() {
        // The paper's headline hierarchical result (figures 10, 12, 14):
        // HIER-RELAXED usually improves on HIER-RB. Check aggregate, not
        // per-instance (RELAXED can lose on individual runs, cf. fig 11).
        let mut rb_total = 0.0;
        let mut rel_total = 0.0;
        for seed in 0..6 {
            let mat = {
                let mut rng = StdRng::seed_from_u64(seed);
                LoadMatrix::from_fn(32, 32, |r, c| {
                    let d = ((r as f64 - 16.0).powi(2) + (c as f64 - 16.0).powi(2)).sqrt();
                    (1000.0 / (d + 0.5)) as u32 + rng.gen_range(1u32..10)
                })
            };
            let pfx = PrefixSum2D::new(&mat);
            for m in [5, 9, 13] {
                rb_total += HierRb::load().partition(&pfx, m).load_imbalance(&pfx);
                rel_total += HierRelaxed::load().partition(&pfx, m).load_imbalance(&pfx);
            }
        }
        assert!(
            rel_total <= rb_total,
            "relaxed {rel_total} should beat rb {rb_total} in aggregate"
        );
    }

    #[test]
    fn unsplittable_cell_idles_processors() {
        let mat = LoadMatrix::from_vec(1, 1, vec![5]);
        let pfx = PrefixSum2D::new(&mat);
        for m in [1, 2, 4] {
            let p = HierRb::load().partition(&pfx, m);
            assert!(p.validate(&pfx).is_ok());
            assert_eq!(p.active_parts(), 1);
            let q = HierRelaxed::load().partition(&pfx, m);
            assert!(q.validate(&pfx).is_ok());
        }
    }

    #[test]
    fn thin_matrices_fall_back_to_the_splittable_axis() {
        let mat = LoadMatrix::from_fn(1, 64, |_, c| (c + 1) as u32);
        let pfx = PrefixSum2D::new(&mat);
        for variant in VARIANTS {
            let p = HierRb { variant }.partition(&pfx, 8);
            assert!(p.validate(&pfx).is_ok(), "{variant:?}");
            assert!(p.active_parts() > 1, "{variant:?} must actually split");
        }
    }

    #[test]
    fn hor_and_ver_start_on_different_axes() {
        let pfx = random_pfx(16, 16, 5);
        let hor = HierRb {
            variant: HierVariant::Hor,
        }
        .partition(&pfx, 2);
        let ver = HierRb {
            variant: HierVariant::Ver,
        }
        .partition(&pfx, 2);
        // First split of HOR is a row split: both rects span all columns.
        assert!(hor.rects().iter().all(|r| r.c0 == 0 && r.c1 == 16));
        assert!(ver.rects().iter().all(|r| r.r0 == 0 && r.r1 == 16));
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(HierRb::load().name(), "HIER-RB-LOAD");
        assert_eq!(
            HierRelaxed {
                variant: HierVariant::Dist,
                ..HierRelaxed::default()
            }
            .name(),
            "HIER-RELAXED-DIST"
        );
    }

    #[test]
    fn lower_bound_respected() {
        let pfx = random_pfx(24, 24, 8);
        for m in [2, 5, 9, 17] {
            assert!(HierRb::load().partition(&pfx, m).lmax(&pfx) >= pfx.lower_bound(m));
            assert!(HierRelaxed::load().partition(&pfx, m).lmax(&pfx) >= pfx.lower_bound(m));
        }
    }
}
