//! Descriptive statistics of a partition, for reports and experiment
//! tables beyond the single `Lmax`-based metric the paper optimizes.

use crate::prefix::PrefixSum2D;
use crate::solution::Partition;

/// Load and shape statistics of one partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Number of processors.
    pub parts: usize,
    /// Non-empty rectangles.
    pub active_parts: usize,
    /// Most loaded processor.
    pub lmax: u64,
    /// Least loaded *active* processor.
    pub lmin: u64,
    /// Mean load over all processors.
    pub mean: f64,
    /// Population standard deviation of the per-processor loads.
    pub stddev: f64,
    /// The paper's metric: `lmax / mean − 1`.
    pub imbalance: f64,
    /// Largest rectangle aspect ratio (long side / short side) among
    /// non-empty rectangles; 1.0 for squares. Squat rectangles
    /// communicate less per unit of area.
    pub max_aspect: f64,
    /// Total perimeter cells of non-empty rectangles (a
    /// machine-independent proxy for halo volume).
    pub total_perimeter: usize,
}

impl PartitionStats {
    /// Computes the statistics of `part` over the load in `pfx`.
    pub fn compute(pfx: &PrefixSum2D, part: &Partition) -> Self {
        let loads = part.loads(pfx);
        let parts = part.parts();
        let active: Vec<usize> = part
            .rects()
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, _)| i)
            .collect();
        let lmax = loads.iter().copied().max().unwrap_or(0);
        // lint:allow(panic-reach) -- active holds enumerate() indices of
        // rects(), and loads() has one entry per rect
        let lmin = active.iter().map(|&i| loads[i]).min().unwrap_or(0);
        let mean = loads.iter().sum::<u64>() as f64 / parts as f64;
        let var = loads
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / parts as f64;
        let max_aspect = active
            .iter()
            .map(|&i| {
                // lint:allow(panic-reach) -- i is an enumerate() index of rects()
                let r = &part.rects()[i];
                let (a, b) = (r.height().max(r.width()), r.height().min(r.width()));
                a as f64 / b as f64
            })
            .fold(1.0f64, f64::max);
        let total_perimeter = active
            .iter()
            .map(|&i| {
                // lint:allow(panic-reach) -- i is an enumerate() index of rects()
                let r = &part.rects()[i];
                2 * (r.height() + r.width())
            })
            .sum();
        Self {
            parts,
            active_parts: active.len(),
            lmax,
            lmin,
            mean,
            stddev: var.sqrt(),
            imbalance: if mean > 0.0 {
                lmax as f64 / mean - 1.0
            } else {
                0.0
            },
            max_aspect,
            total_perimeter,
        }
    }
}

impl std::fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "m={} (active {}), loads {}..{} (mean {:.1}, sd {:.1}), \
             imbalance {:.4}, max aspect {:.2}, perimeter {}",
            self.parts,
            self.active_parts,
            self.lmin,
            self.lmax,
            self.mean,
            self.stddev,
            self.imbalance,
            self.max_aspect,
            self.total_perimeter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::matrix::LoadMatrix;

    #[test]
    fn stats_of_a_perfect_split() {
        let m = LoadMatrix::from_fn(4, 4, |_, _| 2);
        let pfx = PrefixSum2D::new(&m);
        let part = Partition::new(vec![Rect::new(0, 2, 0, 4), Rect::new(2, 4, 0, 4)]);
        let s = PartitionStats::compute(&pfx, &part);
        assert_eq!(s.parts, 2);
        assert_eq!(s.active_parts, 2);
        assert_eq!((s.lmin, s.lmax), (16, 16));
        assert!(s.stddev.abs() < 1e-12);
        assert!(s.imbalance.abs() < 1e-12);
        assert!((s.max_aspect - 2.0).abs() < 1e-12);
        assert_eq!(s.total_perimeter, 2 * (2 * (2 + 4)));
    }

    #[test]
    fn stats_of_a_skewed_split() {
        let m = LoadMatrix::from_fn(2, 4, |_, c| if c == 0 { 10 } else { 1 });
        let pfx = PrefixSum2D::new(&m);
        let part = Partition::new(vec![Rect::new(0, 2, 0, 1), Rect::new(0, 2, 1, 4)]);
        let s = PartitionStats::compute(&pfx, &part);
        assert_eq!(s.lmax, 20);
        assert_eq!(s.lmin, 6);
        assert!((s.mean - 13.0).abs() < 1e-12);
        assert!(s.stddev > 0.0);
        assert!((s.imbalance - (20.0 / 13.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_rects_counted_as_idle() {
        let m = LoadMatrix::from_fn(2, 2, |_, _| 1);
        let pfx = PrefixSum2D::new(&m);
        let part = Partition::with_parts(vec![Rect::new(0, 2, 0, 2)], 4);
        let s = PartitionStats::compute(&pfx, &part);
        assert_eq!(s.parts, 4);
        assert_eq!(s.active_parts, 1);
        assert_eq!(s.lmin, 4); // the only active part
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.imbalance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let m = LoadMatrix::from_fn(4, 4, |_, _| 1);
        let pfx = PrefixSum2D::new(&m);
        let part = Partition::new(vec![Rect::new(0, 4, 0, 4)]);
        let text = PartitionStats::compute(&pfx, &part).to_string();
        assert!(text.contains("imbalance"));
        assert!(text.contains("m=1"));
    }
}
