//! Cell → processor lookup structures.
//!
//! The paper motivates rectangles partly by their *compact
//! representation*: "allows to easily find which processor a given cell
//! is allocated to" (§1), with jagged layouts singled out for cheap
//! indexing (§3.2). This module provides those lookups:
//!
//! * [`JaggedIndex`] — recognizes a jagged structure in a partition and
//!   answers queries with two binary searches (`O(log P + log Q)`); works
//!   for rectilinear and jagged partitions in either orientation;
//! * [`RectTreeIndex`] — a k-d-style interval tree over arbitrary
//!   disjoint rectangles (`O(log m)` expected), covering hierarchical and
//!   any other partition;
//! * [`OwnerGrid`] — the dense O(1) table, for when memory is no object.

use crate::geometry::{Axis, Rect};
use crate::solution::Partition;

/// Jagged lookup: stripes along the main axis, each with its own sorted
/// run of auxiliary intervals.
///
/// ```
/// use rectpart_core::{JagMHeur, JaggedIndex, LoadMatrix, Partitioner, PrefixSum2D};
///
/// let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(16, 16, |r, c| (r + c) as u32 + 1));
/// let part = JagMHeur::best().partition(&pfx, 6);
/// let index = JaggedIndex::detect(&part).expect("jagged output indexes");
/// assert_eq!(index.owner_of(3, 11), part.owner_of(3, 11));
/// ```
#[derive(Clone, Debug)]
pub struct JaggedIndex {
    axis: Axis,
    /// Stripe boundaries along the main axis (sorted, deduplicated).
    main_cuts: Vec<usize>,
    /// Per stripe: sorted `(aux_end, processor)` runs.
    stripes: Vec<Vec<(usize, u32)>>,
}

impl JaggedIndex {
    /// Builds the index if the partition is jagged with `axis` as the
    /// main dimension: every non-empty rectangle's main extent must
    /// coincide with one of the stripe intervals, and each stripe's
    /// rectangles must tile its auxiliary range. Returns `None` for
    /// non-jagged partitions (e.g. most hierarchical ones).
    pub fn from_partition(partition: &Partition, axis: Axis) -> Option<Self> {
        let rects: Vec<(usize, &Rect)> = partition
            .rects()
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .collect();
        if rects.is_empty() {
            return None;
        }
        let main = |r: &Rect| r.extent(axis);
        let aux = |r: &Rect| r.extent(axis.flip());
        // Collect candidate stripe boundaries from the rectangles.
        let mut cuts: Vec<usize> = rects
            .iter()
            .flat_map(|(_, r)| [main(r).0, main(r).1])
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        // Every rectangle must span exactly one stripe interval.
        let stripe_of = |r: &Rect| -> Option<usize> {
            let (lo, hi) = main(r);
            let i = cuts.binary_search(&lo).ok()?;
            (cuts.get(i + 1) == Some(&hi)).then_some(i)
        };
        let mut stripes: Vec<Vec<(usize, u32)>> = vec![Vec::new(); cuts.len().saturating_sub(1)];
        for (proc, r) in &rects {
            let s = stripe_of(r)?;
            stripes[s].push((aux(r).1, *proc as u32));
        }
        // Each stripe's runs must be contiguous when sorted by end.
        for (s, runs) in stripes.iter_mut().enumerate() {
            if runs.is_empty() {
                // A gap in the main dimension: only permissible when the
                // stripe interval is empty.
                if cuts[s] != cuts[s + 1] {
                    return None;
                }
                continue;
            }
            runs.sort_unstable();
            let Some(mut prev) = runs
                .iter()
                .map(|&(_, p)| aux(&partition.rects()[p as usize]).0)
                .min()
            else {
                // A stripe with no rectangles is not a jagged layout.
                return None;
            };
            for &(end, p) in runs.iter() {
                let r = &partition.rects()[p as usize];
                if aux(r).0 != prev {
                    return None;
                }
                prev = end;
            }
        }
        Some(Self {
            axis,
            main_cuts: cuts,
            stripes,
        })
    }

    /// Tries both orientations.
    pub fn detect(partition: &Partition) -> Option<Self> {
        Self::from_partition(partition, Axis::Rows)
            .or_else(|| Self::from_partition(partition, Axis::Cols))
    }

    /// The main axis of the detected jagged structure.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Owner of cell `(r, c)`, or `None` outside the indexed area.
    pub fn owner_of(&self, r: usize, c: usize) -> Option<usize> {
        let (main, aux) = match self.axis {
            Axis::Rows => (r, c),
            Axis::Cols => (c, r),
        };
        // Stripe: last cut <= main.
        let s = match self.main_cuts.binary_search(&main) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let runs = self.stripes.get(s)?;
        // First run whose end exceeds aux.
        let i = runs.partition_point(|&(end, _)| end <= aux);
        runs.get(i).map(|&(_, p)| p as usize)
    }
}

/// Interval-tree lookup over arbitrary disjoint rectangles: alternating
/// median splits (k-d tree) with leaf buckets.
#[derive(Clone, Debug)]
pub struct RectTreeIndex {
    nodes: Vec<TreeNode>,
}

#[derive(Clone, Debug)]
enum TreeNode {
    Leaf(Vec<(Rect, u32)>),
    Split {
        axis: Axis,
        at: usize,
        /// Children indices: rectangles entirely below / not below `at`.
        below: usize,
        above: usize,
    },
}

const LEAF_SIZE: usize = 8;

impl RectTreeIndex {
    /// Builds the tree from a partition's non-empty rectangles.
    pub fn new(partition: &Partition) -> Self {
        let rects: Vec<(Rect, u32)> = partition
            .rects()
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| (*r, i as u32))
            .collect();
        let mut nodes = Vec::new();
        build(rects, Axis::Rows, &mut nodes);
        Self { nodes }
    }

    /// Owner of cell `(r, c)`, or `None` if no rectangle covers it.
    pub fn owner_of(&self, r: usize, c: usize) -> Option<usize> {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf(rects) => {
                    return rects
                        .iter()
                        .find(|(rect, _)| rect.contains(r, c))
                        .map(|&(_, p)| p as usize);
                }
                TreeNode::Split {
                    axis,
                    at,
                    below,
                    above,
                } => {
                    let coord = match axis {
                        Axis::Rows => r,
                        Axis::Cols => c,
                    };
                    node = if coord < *at { *below } else { *above };
                }
            }
        }
    }

    /// Number of tree nodes (for size assertions in tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Recursively builds the k-d tree; returns the node index.
fn build(rects: Vec<(Rect, u32)>, axis: Axis, nodes: &mut Vec<TreeNode>) -> usize {
    if rects.len() <= LEAF_SIZE {
        nodes.push(TreeNode::Leaf(rects));
        return nodes.len() - 1;
    }
    // Median split over rectangle starts along the axis; rectangles
    // crossing the split would break the disjoint-descent property, so
    // pick the best axis/coordinate that no rectangle straddles. In a
    // tiling, every rectangle edge is such a coordinate for the rects it
    // bounds, but a global non-straddled coordinate may not exist — fall
    // back to a bigger leaf in that (rare) case.
    for try_axis in [axis, axis.flip()] {
        let mut starts: Vec<usize> = rects.iter().map(|(r, _)| r.extent(try_axis).0).collect();
        starts.sort_unstable();
        let at = starts[starts.len() / 2];
        let straddles = rects.iter().any(|(r, _)| {
            let (lo, hi) = r.extent(try_axis);
            lo < at && at < hi
        });
        if straddles {
            continue;
        }
        let (below, above): (Vec<_>, Vec<_>) =
            rects.iter().partition(|(r, _)| r.extent(try_axis).1 <= at);
        if below.is_empty() || above.is_empty() {
            continue;
        }
        let slot = nodes.len();
        nodes.push(TreeNode::Leaf(Vec::new())); // placeholder
        let b = build(below, try_axis.flip(), nodes);
        let a = build(above, try_axis.flip(), nodes);
        nodes[slot] = TreeNode::Split {
            axis: try_axis,
            at,
            below: b,
            above: a,
        };
        return slot;
    }
    nodes.push(TreeNode::Leaf(rects));
    nodes.len() - 1
}

/// Dense O(1) lookup table.
#[derive(Clone, Debug)]
pub struct OwnerGrid {
    cols: usize,
    owners: Vec<u32>,
}

impl OwnerGrid {
    /// Materializes the owner of every cell.
    pub fn new(partition: &Partition, rows: usize, cols: usize) -> Self {
        Self {
            cols,
            owners: partition.owner_map(rows, cols),
        }
    }

    /// Owner of cell `(r, c)`, or `None` for uncovered cells.
    #[inline]
    pub fn owner_of(&self, r: usize, c: usize) -> Option<usize> {
        match self.owners[r * self.cols + c] {
            u32::MAX => None,
            p => Some(p as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::HierRb;
    use crate::jagged::{JagMHeur, JagPqHeur};
    use crate::matrix::LoadMatrix;
    use crate::prefix::PrefixSum2D;
    use crate::rectilinear::RectNicol;
    use crate::spiral::SpiralRelaxed;
    use crate::traits::Partitioner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pfx(rows: usize, cols: usize, seed: u64) -> PrefixSum2D {
        let mut rng = StdRng::seed_from_u64(seed);
        PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
            rng.gen_range(1..50)
        }))
    }

    fn assert_index_agrees(
        partition: &Partition,
        rows: usize,
        cols: usize,
        lookup: impl Fn(usize, usize) -> Option<usize>,
    ) {
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(
                    lookup(r, c),
                    partition.owner_of(r, c),
                    "cell ({r},{c}) disagrees"
                );
            }
        }
    }

    #[test]
    fn jagged_index_on_jagged_partitions() {
        let pfx = random_pfx(18, 15, 1);
        for m in [4, 9, 12] {
            let p = JagMHeur::best().partition(&pfx, m);
            let idx = JaggedIndex::detect(&p).expect("jagged output must index");
            assert_index_agrees(&p, 18, 15, |r, c| idx.owner_of(r, c));
        }
    }

    #[test]
    fn jagged_index_on_rectilinear_partitions() {
        let pfx = random_pfx(16, 16, 2);
        let p = RectNicol::default().partition(&pfx, 9);
        let idx = JaggedIndex::detect(&p).expect("grids are jagged too");
        assert_eq!(idx.stripe_count(), 3);
        assert_index_agrees(&p, 16, 16, |r, c| idx.owner_of(r, c));
    }

    #[test]
    fn jagged_index_respects_orientation() {
        let pfx = random_pfx(20, 10, 3);
        let p = JagPqHeur {
            variant: crate::jagged::JaggedVariant::Ver,
            grid: None,
        }
        .partition(&pfx, 6);
        let idx = JaggedIndex::detect(&p).expect("vertical jagged");
        assert_index_agrees(&p, 20, 10, |r, c| idx.owner_of(r, c));
    }

    #[test]
    fn jagged_index_rejects_pinwheel() {
        // The classic non-jagged tiling: 4 rectangles around a center.
        let p = Partition::new(vec![
            Rect::new(0, 2, 0, 4),
            Rect::new(0, 4, 4, 6),
            Rect::new(2, 6, 0, 2),
            Rect::new(4, 6, 2, 6),
            Rect::new(2, 4, 2, 4),
        ]);
        assert!(p.validate_dims(6, 6).is_ok());
        assert!(JaggedIndex::detect(&p).is_none());
    }

    #[test]
    fn tree_index_on_everything() {
        let pfx = random_pfx(24, 24, 4);
        for m in [3, 8, 17, 40] {
            for algo in [
                &HierRb::load() as &dyn Partitioner,
                &JagMHeur::best(),
                &SpiralRelaxed::default(),
            ] {
                let p = algo.partition(&pfx, m);
                let idx = RectTreeIndex::new(&p);
                assert_index_agrees(&p, 24, 24, |r, c| idx.owner_of(r, c));
            }
        }
    }

    #[test]
    fn tree_index_splits_large_partitions() {
        let pfx = random_pfx(32, 32, 5);
        let p = HierRb::load().partition(&pfx, 64);
        let idx = RectTreeIndex::new(&p);
        assert!(idx.node_count() > 1, "64 rects must not fit in one leaf");
        assert_index_agrees(&p, 32, 32, |r, c| idx.owner_of(r, c));
    }

    #[test]
    fn owner_grid_matches() {
        let pfx = random_pfx(12, 9, 6);
        let p = JagMHeur::best().partition(&pfx, 7);
        let grid = OwnerGrid::new(&p, 12, 9);
        assert_index_agrees(&p, 12, 9, |r, c| grid.owner_of(r, c));
    }

    #[test]
    fn out_of_area_lookups_return_none_gracefully() {
        let p = Partition::new(vec![Rect::new(1, 3, 1, 3)]);
        let idx = JaggedIndex::detect(&p).unwrap();
        assert_eq!(idx.owner_of(0, 0), None);
        assert_eq!(idx.owner_of(1, 1), Some(0));
        let tree = RectTreeIndex::new(&p);
        assert_eq!(tree.owner_of(0, 0), None);
        assert_eq!(tree.owner_of(2, 2), Some(0));
    }
}
