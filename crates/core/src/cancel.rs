//! Cooperative cancellation checkpoints for the algorithm loops.
//!
//! The cancellation *flag* lives in [`rectpart_obs::cancel`] (a work-unit
//! deadline against the deterministic meter); this module provides the
//! core-side [`Checker`] that algorithm loops thread through their serial
//! checkpoints. A checker is either *live* — it polls the armed deadline
//! and yields [`RectpartError::Cancelled`] once it fires — or *off*, in
//! which case [`Checker::check`] is a constant `Ok(())` and the fallible
//! plumbing collapses to the historical infallible behaviour.
//!
//! The [`Partitioner::partition`](crate::Partitioner::partition) contract
//! stays infallible: the default implementations route through the same
//! checked code paths with [`Checker::OFF`], and only
//! [`Partitioner::try_partition`](crate::Partitioner::try_partition)
//! (used by the solver driver) runs with a live checker.

use crate::error::RectpartError;

/// A cancellation probe threaded through checkpointed algorithm loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checker {
    live: bool,
}

impl Checker {
    /// A checker that never cancels; `check` is a constant `Ok(())`.
    pub const OFF: Checker = Checker { live: false };

    /// A checker polling the process-wide work-unit deadline
    /// ([`rectpart_obs::cancel`]).
    pub const fn active() -> Checker {
        Checker { live: true }
    }

    /// Whether this checker can ever cancel.
    #[inline]
    pub const fn is_live(&self) -> bool {
        self.live
    }

    /// Serial checkpoint: `Err(Cancelled)` once a live checker observes
    /// the armed deadline, `Ok(())` otherwise. Cheap enough to call once
    /// per loop iteration (two relaxed atomic loads when live, a branch
    /// when off).
    #[inline]
    pub fn check(&self) -> Result<(), RectpartError> {
        if self.live && rectpart_obs::cancel::requested() {
            Err(RectpartError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Maps a cancellation-aware 1D solve ([`rectpart_onedim::try_nicol_in`])
    /// into the checked-path idiom: live checkers forward the solver's
    /// polling verdict, off checkers run the plain infallible solve.
    #[inline]
    pub fn nicol_in<C: rectpart_onedim::IntervalCost>(
        &self,
        cost: &C,
        m: usize,
        scratch: &mut rectpart_onedim::SolveScratch,
    ) -> Result<rectpart_onedim::OneDimResult, RectpartError> {
        if self.live {
            rectpart_onedim::try_nicol_in(cost, m, scratch)
                .map_err(|rectpart_onedim::Cancelled| RectpartError::Cancelled)
        } else {
            Ok(rectpart_onedim::nicol_in(cost, m, scratch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test so nothing else in this binary races the global deadline.
    #[test]
    fn off_never_cancels_and_live_observes_the_deadline() {
        rectpart_obs::cancel::disarm();
        assert_eq!(Checker::OFF.check(), Ok(()));
        assert_eq!(Checker::active().check(), Ok(()));

        rectpart_obs::cancel::arm_now();
        assert_eq!(Checker::OFF.check(), Ok(()));
        assert_eq!(Checker::active().check(), Err(RectpartError::Cancelled));

        // The 1D bridge follows the same split.
        let cost = rectpart_onedim::PrefixCosts::from_loads(&[3u64, 1, 4, 1, 5]);
        let mut scratch = rectpart_onedim::SolveScratch::new();
        assert!(Checker::OFF.nicol_in(&cost, 2, &mut scratch).is_ok());
        assert_eq!(
            Checker::active().nicol_in(&cost, 2, &mut scratch),
            Err(RectpartError::Cancelled)
        );

        rectpart_obs::cancel::disarm();
        let checked = Checker::active().nicol_in(&cost, 2, &mut scratch);
        let plain = rectpart_onedim::nicol(&cost, 2);
        assert_eq!(checked, Ok(plain));
    }
}
