//! Dense 2D load matrices.

use crate::error::RectpartError;
use crate::geometry::Rect;

/// A dense `rows × cols` matrix of non-negative cell loads, row-major.
///
/// The paper's model is a matrix of *positive* integers; zeros are
/// nevertheless accepted because the mesh-derived instances (SLAC, paper
/// §4.1) are sparse and contain many empty cells. Algorithms must cope
/// with zero-load cells and do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
}

impl LoadMatrix {
    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major data, surfacing a length mismatch
    /// as [`RectpartError::DimMismatch`] instead of panicking.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<u32>) -> Result<Self, RectpartError> {
        if data.len() != rows * cols {
            return Err(RectpartError::DimMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a list of rows, rejecting ragged input
    /// ([`RectpartError::RaggedRow`]) and a zero-width first row with
    /// further rows ([`RectpartError::EmptyMatrix`]).
    pub fn try_from_rows(rows: &[Vec<u32>]) -> Result<Self, RectpartError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        if n_rows > 0 && n_cols == 0 {
            return Err(RectpartError::EmptyMatrix {
                rows: n_rows,
                cols: 0,
            });
        }
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(RectpartError::RaggedRow {
                    row: r,
                    expected: n_cols,
                    got: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` on every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Number of rows (the paper's `n1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the paper's `n2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell load at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u32 {
        // lint:allow(panic-reach) -- API contract: r < rows, c < cols, and
        // data.len() = rows * cols, so r*cols + c < len
        self.data[r * self.cols + c]
    }

    /// Mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut u32 {
        // lint:allow(panic-reach) -- same bounds contract as `get`
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[u32] {
        // lint:allow(panic-reach) -- r < rows, so (r+1)*cols <= len
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Sum of all cell loads.
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| v as u64).sum()
    }

    /// Largest cell load.
    pub fn max_cell(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Smallest cell load.
    pub fn min_cell(&self) -> u32 {
        self.data.iter().copied().min().unwrap_or(0)
    }

    /// The heterogeneity ratio Δ = max / min, defined only when every cell
    /// is strictly positive (paper §3.2.1).
    pub fn delta(&self) -> Option<f64> {
        let min = self.min_cell();
        if min == 0 {
            None
        } else {
            Some(self.max_cell() as f64 / min as f64)
        }
    }

    /// Naive O(area) load of a rectangle; the production path is
    /// [`crate::PrefixSum2D::load`], this is the test oracle.
    pub fn load_naive(&self, r: &Rect) -> u64 {
        let mut sum = 0u64;
        for row in r.r0..r.r1 {
            for col in r.c0..r.c1 {
                sum += self.get(row, col) as u64;
            }
        }
        sum
    }

    /// Renders the matrix as coarse ASCII art (darker = heavier), for the
    /// example binaries and the instance-gallery experiment.
    pub fn ascii_art(&self, out_rows: usize, out_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut cells = vec![0u64; out_rows * out_cols];
        let mut counts = vec![0u64; out_rows * out_cols];
        for r in 0..self.rows {
            let or = r * out_rows / self.rows.max(1);
            for c in 0..self.cols {
                let oc = c * out_cols / self.cols.max(1);
                cells[or * out_cols + oc] += self.get(r, c) as u64;
                counts[or * out_cols + oc] += 1;
            }
        }
        let avgs: Vec<f64> = cells
            .iter()
            .zip(&counts)
            .map(|(&s, &n)| if n == 0 { 0.0 } else { s as f64 / n as f64 })
            .collect();
        let max = avgs.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let mut s = String::with_capacity(out_rows * (out_cols + 1));
        for r in 0..out_rows {
            for c in 0..out_cols {
                let t = avgs[r * out_cols + c] / max;
                let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                s.push(RAMP[idx] as char);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = LoadMatrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(1, 2), 6);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.total(), 21);
        assert_eq!(m.max_cell(), 6);
        assert_eq!(m.min_cell(), 1);
    }

    #[test]
    fn from_fn_matches_from_vec() {
        let a = LoadMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as u32);
        let b = LoadMatrix::from_vec(3, 2, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn delta_defined_only_without_zeros() {
        let m = LoadMatrix::from_vec(1, 3, vec![2, 4, 8]);
        assert_eq!(m.delta(), Some(4.0));
        let z = LoadMatrix::from_vec(1, 3, vec![0, 4, 8]);
        assert_eq!(z.delta(), None);
    }

    #[test]
    fn naive_load() {
        let m = LoadMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as u32);
        assert_eq!(m.load_naive(&Rect::new(0, 4, 0, 4)), m.total());
        assert_eq!(m.load_naive(&Rect::new(1, 3, 1, 3)), 5 + 6 + 9 + 10);
        assert_eq!(m.load_naive(&Rect::EMPTY), 0);
    }

    #[test]
    fn mutation() {
        let mut m = LoadMatrix::zeros(2, 2);
        *m.get_mut(1, 1) = 9;
        assert_eq!(m.get(1, 1), 9);
        assert_eq!(m.total(), 9);
        m.data_mut()[0] = 1;
        assert_eq!(m.get(0, 0), 1);
    }

    #[test]
    fn ascii_art_has_expected_shape() {
        let m = LoadMatrix::from_fn(16, 16, |r, _| if r < 8 { 0 } else { 10 });
        let art = m.ascii_art(4, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
        assert!(lines[0].chars().all(|ch| ch == ' '));
        assert!(lines[3].chars().all(|ch| ch == '@'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_rejects_bad_length() {
        let _ = LoadMatrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn try_from_vec_surfaces_dim_mismatch() {
        assert_eq!(
            LoadMatrix::try_from_vec(2, 2, vec![1, 2, 3]),
            Err(RectpartError::DimMismatch {
                rows: 2,
                cols: 2,
                len: 3
            })
        );
        let m = LoadMatrix::try_from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m, LoadMatrix::from_vec(2, 2, vec![1, 2, 3, 4]));
    }

    #[test]
    fn try_from_rows_rejects_ragged_and_degenerate() {
        let m = LoadMatrix::try_from_rows(&[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(m, LoadMatrix::from_vec(2, 2, vec![1, 2, 3, 4]));
        assert_eq!(
            LoadMatrix::try_from_rows(&[vec![1, 2], vec![3]]),
            Err(RectpartError::RaggedRow {
                row: 1,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            LoadMatrix::try_from_rows(&[vec![], vec![]]),
            Err(RectpartError::EmptyMatrix { rows: 2, cols: 0 })
        );
        let empty = LoadMatrix::try_from_rows(&[]).unwrap();
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 0);
    }
}
