//! Name → algorithm registry.
//!
//! One canonical list of every runnable algorithm, shared by the CLI and
//! the fault-tolerant solver driver (`rectpart-robust` resolves fallback
//! ladders through [`algorithm_by_name`]).

use crate::hierarchical::{HierRb, HierRelaxed, HierVariant};
use crate::jagged::{JagMHeur, JagPqHeur, JaggedVariant};
use crate::jagged_opt::{JagMOpt, JagPqOpt};
use crate::rectilinear::{RectNicol, RectUniform};
use crate::spiral::SpiralRelaxed;
use crate::traits::Partitioner;

/// Every registered algorithm, by its canonical name.
fn registry() -> Vec<Box<dyn Partitioner>> {
    let mut algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(RectUniform::default()),
        Box::new(RectNicol::default()),
        Box::new(SpiralRelaxed::default()),
        Box::new(JagPqOpt::default()),
        Box::new(JagMOpt::default()),
    ];
    for variant in [JaggedVariant::Hor, JaggedVariant::Ver, JaggedVariant::Best] {
        algos.push(Box::new(JagPqHeur {
            variant,
            grid: None,
        }));
        algos.push(Box::new(JagMHeur {
            variant,
            ..JagMHeur::default()
        }));
    }
    for variant in [
        HierVariant::Load,
        HierVariant::Dist,
        HierVariant::Hor,
        HierVariant::Ver,
    ] {
        algos.push(Box::new(HierRb { variant }));
        algos.push(Box::new(HierRelaxed {
            variant,
            ..HierRelaxed::default()
        }));
    }
    algos
}

/// All registered algorithm names, sorted.
pub fn algorithm_names() -> Vec<String> {
    let mut names: Vec<String> = registry().iter().map(|a| a.name()).collect();
    names.sort();
    names
}

/// Looks an algorithm up by its canonical name (case-insensitive).
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn Partitioner>> {
    registry()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = algorithm_names();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup, "duplicate algorithm names");
        for name in &names {
            assert!(algorithm_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(algorithm_by_name("jag-m-heur-best").is_some());
        assert!(algorithm_by_name("HIER-RB-LOAD").is_some());
        assert!(algorithm_by_name("nope").is_none());
    }

    #[test]
    fn paper_roster_is_present() {
        for name in [
            "RECT-UNIFORM",
            "RECT-NICOL",
            "JAG-PQ-HEUR-BEST",
            "JAG-PQ-OPT-BEST",
            "JAG-M-HEUR-BEST",
            "JAG-M-OPT-BEST",
            "HIER-RB-LOAD",
            "HIER-RELAXED-LOAD",
            "SPIRAL-RELAXED",
        ] {
            assert!(algorithm_by_name(name).is_some(), "{name} missing");
        }
    }
}
