//! Structured errors for the fallible API boundary.
//!
//! [`RectpartError`] is the single error type surfaced by every
//! `try_*` entry point in the workspace — matrix construction, Γ
//! building, JSON loading, and the `rectpart-robust` solver driver. The
//! infallible constructors (`LoadMatrix::from_vec`, `PrefixSum2D::new`)
//! remain as thin `try_*().expect` shims for tests and trusted callers.

use std::fmt;

use crate::solution::PartitionError;

/// Everything that can go wrong at the library boundary.
///
/// The variants fall into three groups: *input* errors (hostile or
/// degenerate data that a caller can fix), *resource* errors (the work
/// budget ran out before any solver rung answered), and *internal*
/// errors (a solver panicked or produced an invalid cover — both bugs,
/// but demoted to `Err` so one bad rung cannot take down the process).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RectpartError {
    /// Γ accumulation overflowed `u64` (total load ≥ 2⁶⁴).
    Overflow,
    /// The matrix has zero rows or zero columns — nothing to partition.
    EmptyMatrix {
        /// Supplied row count.
        rows: usize,
        /// Supplied column count.
        cols: usize,
    },
    /// A row of row-major input has the wrong width.
    RaggedRow {
        /// Offending row index.
        row: usize,
        /// Width established by the first row.
        expected: usize,
        /// Width actually found.
        got: usize,
    },
    /// Row-major data length disagrees with the declared dimensions.
    DimMismatch {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
        /// Actual data length.
        len: usize,
    },
    /// `m == 0` processors requested.
    ZeroParts,
    /// More processors than cells — some rectangle would be empty by
    /// pigeonhole, and the paper's model has no use for idle-only parts.
    TooManyParts {
        /// Processors requested.
        m: usize,
        /// Cells available.
        cells: usize,
    },
    /// The deterministic work budget ran out before any fallback rung
    /// produced a solution.
    BudgetExhausted {
        /// The budget the driver was given, in abstract work units.
        budget: u64,
        /// Work already spent when the driver gave up.
        spent: u64,
    },
    /// A solver panicked; the panic was contained at the driver boundary.
    WorkerPanic {
        /// Name of the rung (algorithm) that panicked.
        rung: String,
    },
    /// A solver returned rectangles that are not a valid cover.
    InvalidSolution(PartitionError),
    /// An algorithm name (CLI `--algo`, driver ladder) is not registered.
    UnknownAlgorithm(String),
    /// The solve was cancelled cooperatively at a work-meter checkpoint
    /// (armed via `rectpart_obs::cancel`). Partial work is discarded;
    /// the resume protocol restarts from the last good snapshot.
    Cancelled,
    /// A progress snapshot could not be used: torn write, checksum
    /// mismatch, malformed payload, or a payload that does not describe
    /// the instance being resumed. Never silently ignored — the CLI
    /// maps this to its dedicated exit code.
    SnapshotCorrupt {
        /// Human-readable reason the snapshot was rejected.
        reason: String,
    },
    /// A delta update addressed a row outside the matrix.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Rows actually present.
        rows: usize,
    },
    /// A serving-mode query addressed a region that is empty or reaches
    /// outside the resident matrix.
    RegionOutOfRange {
        /// The requested region.
        region: crate::geometry::Rect,
        /// Rows actually present.
        rows: usize,
        /// Columns actually present.
        cols: usize,
    },
}

impl fmt::Display for RectpartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RectpartError::Overflow => write!(f, "2D prefix sum overflowed u64"),
            RectpartError::EmptyMatrix { rows, cols } => {
                write!(f, "matrix is degenerate: {rows}x{cols}")
            }
            RectpartError::RaggedRow { row, expected, got } => {
                write!(
                    f,
                    "ragged input: row {row} has {got} cells, expected {expected}"
                )
            }
            RectpartError::DimMismatch { rows, cols, len } => {
                write!(f, "{len} cells do not fill a {rows}x{cols} matrix")
            }
            RectpartError::ZeroParts => write!(f, "cannot partition into 0 parts"),
            RectpartError::TooManyParts { m, cells } => {
                write!(f, "{m} parts requested for only {cells} cells")
            }
            RectpartError::BudgetExhausted { budget, spent } => {
                write!(
                    f,
                    "work budget exhausted: {spent} of {budget} units spent, no rung answered"
                )
            }
            RectpartError::WorkerPanic { rung } => {
                write!(f, "solver rung {rung:?} panicked (contained)")
            }
            RectpartError::InvalidSolution(e) => write!(f, "solver produced invalid cover: {e}"),
            RectpartError::UnknownAlgorithm(name) => write!(f, "unknown algorithm {name:?}"),
            RectpartError::Cancelled => {
                write!(f, "solve cancelled at a work-meter checkpoint")
            }
            RectpartError::SnapshotCorrupt { reason } => {
                write!(f, "snapshot unusable: {reason}")
            }
            RectpartError::RowOutOfRange { row, rows } => {
                write!(f, "delta row {row} outside matrix of {rows} rows")
            }
            RectpartError::RegionOutOfRange { region, rows, cols } => {
                write!(
                    f,
                    "query region rows {}..{} cols {}..{} is empty or outside the {rows}x{cols} matrix",
                    region.r0, region.r1, region.c0, region.c1
                )
            }
        }
    }
}

impl std::error::Error for RectpartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RectpartError::InvalidSolution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for RectpartError {
    fn from(e: PartitionError) -> Self {
        RectpartError::InvalidSolution(e)
    }
}

impl RectpartError {
    /// Whether the error is the caller's fault (malformed or degenerate
    /// input) as opposed to a resource or internal condition. The CLI
    /// maps this to its input-error exit code.
    pub fn is_input_error(&self) -> bool {
        matches!(
            self,
            RectpartError::Overflow
                | RectpartError::EmptyMatrix { .. }
                | RectpartError::RaggedRow { .. }
                | RectpartError::DimMismatch { .. }
                | RectpartError::ZeroParts
                | RectpartError::TooManyParts { .. }
                | RectpartError::UnknownAlgorithm(_)
                | RectpartError::RowOutOfRange { .. }
                | RectpartError::RegionOutOfRange { .. }
        )
    }

    /// Validates a `(matrix dims, m)` problem statement — the shared
    /// gate used by [`crate::PrefixSum2D::try_new`] consumers, the JSON
    /// loader, and the solver driver.
    pub fn check_problem(rows: usize, cols: usize, m: usize) -> Result<(), RectpartError> {
        if rows == 0 || cols == 0 {
            return Err(RectpartError::EmptyMatrix { rows, cols });
        }
        if m == 0 {
            return Err(RectpartError::ZeroParts);
        }
        let cells = rows * cols;
        if m > cells {
            return Err(RectpartError::TooManyParts { m, cells });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(RectpartError, &str)> = vec![
            (RectpartError::Overflow, "overflow"),
            (RectpartError::EmptyMatrix { rows: 0, cols: 5 }, "0x5"),
            (
                RectpartError::RaggedRow {
                    row: 2,
                    expected: 4,
                    got: 3,
                },
                "row 2",
            ),
            (
                RectpartError::DimMismatch {
                    rows: 2,
                    cols: 2,
                    len: 3,
                },
                "2x2",
            ),
            (RectpartError::ZeroParts, "0 parts"),
            (RectpartError::TooManyParts { m: 9, cells: 4 }, "9 parts"),
            (
                RectpartError::BudgetExhausted {
                    budget: 10,
                    spent: 11,
                },
                "budget",
            ),
            (
                RectpartError::WorkerPanic {
                    rung: "JAG-M-OPT".into(),
                },
                "panicked",
            ),
            (RectpartError::UnknownAlgorithm("NOPE".into()), "NOPE"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
        }
        assert!(RectpartError::Cancelled.to_string().contains("cancelled"));
        let snap = RectpartError::SnapshotCorrupt {
            reason: "checksum mismatch".into(),
        };
        assert!(snap.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn input_error_classification() {
        assert!(RectpartError::ZeroParts.is_input_error());
        assert!(RectpartError::Overflow.is_input_error());
        assert!(!RectpartError::BudgetExhausted {
            budget: 1,
            spent: 2
        }
        .is_input_error());
        assert!(!RectpartError::WorkerPanic { rung: "X".into() }.is_input_error());
        // Cancellation and snapshot problems are never the input's fault:
        // one is a caller-armed deadline, the other a damaged artifact.
        assert!(!RectpartError::Cancelled.is_input_error());
        assert!(!RectpartError::SnapshotCorrupt {
            reason: "torn".into()
        }
        .is_input_error());
    }

    #[test]
    fn check_problem_gates() {
        assert!(RectpartError::check_problem(4, 4, 4).is_ok());
        assert_eq!(
            RectpartError::check_problem(0, 4, 1),
            Err(RectpartError::EmptyMatrix { rows: 0, cols: 4 })
        );
        assert_eq!(
            RectpartError::check_problem(4, 4, 0),
            Err(RectpartError::ZeroParts)
        );
        assert_eq!(
            RectpartError::check_problem(2, 2, 5),
            Err(RectpartError::TooManyParts { m: 5, cells: 4 })
        );
    }

    #[test]
    fn partition_error_converts() {
        let pe = PartitionError::Overlap { a: 0, b: 1 };
        let re: RectpartError = pe.clone().into();
        assert_eq!(re, RectpartError::InvalidSolution(pe));
        assert!(std::error::Error::source(&re).is_some());
    }
}
