//! Multilevel partitioning: coarsen → partition → project.
//!
//! For very large matrices the exact prefix-sum queries are cheap but the
//! optimal 1D solves inside the partitioners still walk fine-grained
//! index spaces. A classic engineering response (familiar from graph
//! partitioning) is to partition a block-coarsened matrix and scale the
//! cuts back up. This module implements that wrapper for *any*
//! [`Partitioner`] and the `extG` experiment measures what the shortcut
//! costs in balance — the coarse matrix can hide in-block skew, so the
//! projected partition is generally worse than partitioning at full
//! resolution.

use crate::error::RectpartError;
use crate::geometry::Rect;
use crate::matrix::LoadMatrix;
use crate::prefix::PrefixSum2D;
use crate::solution::Partition;
use crate::traits::Partitioner;

impl LoadMatrix {
    /// Sums `factor × factor` blocks into one coarse cell (edge blocks
    /// may be smaller). The coarse matrix has
    /// `⌈rows/factor⌉ × ⌈cols/factor⌉` cells and the same total load.
    ///
    /// # Panics
    ///
    /// Panics if a block's sum exceeds `u32::MAX`.
    pub fn coarsen(&self, factor: usize) -> LoadMatrix {
        assert!(factor >= 1);
        let rows = self.rows().div_ceil(factor);
        let cols = self.cols().div_ceil(factor);
        LoadMatrix::from_fn(rows, cols, |r, c| {
            let mut sum = 0u64;
            for fr in r * factor..((r + 1) * factor).min(self.rows()) {
                for fc in c * factor..((c + 1) * factor).min(self.cols()) {
                    sum += self.get(fr, fc) as u64;
                }
            }
            // lint:allow(panic) -- overflow guard: a coarse block summing past u32 must abort with an actionable message, not truncate loads
            u32::try_from(sum).expect("coarse block load exceeds u32")
        })
    }
}

/// Wraps a partitioner to run on a block-coarsened copy of the matrix,
/// scaling the resulting rectangles back to full resolution.
///
/// The wrapper needs the *matrix* (to coarsen), so unlike the plain
/// algorithms it is constructed per instance with [`Multilevel::new`].
pub struct Multilevel<'a, P> {
    matrix: &'a LoadMatrix,
    inner: P,
    factor: usize,
    coarse_pfx: PrefixSum2D,
}

impl<'a, P: Partitioner> Multilevel<'a, P> {
    /// Coarsens `matrix` by `factor` and prepares the wrapper.
    ///
    /// Convenience shim over [`Multilevel::try_new`] for callers that
    /// have already validated their instance.
    pub fn new(matrix: &'a LoadMatrix, inner: P, factor: usize) -> Self {
        // lint:allow(panic) -- documented convenience boundary; fallible construction is Multilevel::try_new
        Self::try_new(matrix, inner, factor).expect("total load overflows u64")
    }

    /// Coarsens `matrix` by `factor` and prepares the wrapper,
    /// surfacing Γ construction overflow (coarsening preserves the
    /// total load, so this errs exactly when the fine matrix's total
    /// reaches `2^64`).
    pub fn try_new(matrix: &'a LoadMatrix, inner: P, factor: usize) -> Result<Self, RectpartError> {
        assert!(factor >= 1);
        let coarse = matrix.coarsen(factor);
        Ok(Self {
            matrix,
            inner,
            factor,
            coarse_pfx: PrefixSum2D::try_new(&coarse)?,
        })
    }

    /// The coarsening factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl<P: Partitioner> Partitioner for Multilevel<'_, P> {
    fn name(&self) -> String {
        format!("{}@1/{}", self.inner.name(), self.factor)
    }

    /// Partitions the coarse matrix with the inner algorithm and projects
    /// the rectangles to full resolution (cut positions multiply by the
    /// factor, clamped to the fine dimensions — exact because coarse cell
    /// `(r, c)` covers fine rows `[r·f, (r+1)·f)`).
    fn partition(&self, pfx: &PrefixSum2D, m: usize) -> Partition {
        assert_eq!(
            (pfx.rows(), pfx.cols()),
            (self.matrix.rows(), self.matrix.cols()),
            "prefix sums must describe the constructing matrix"
        );
        let coarse_part = self.inner.partition(&self.coarse_pfx, m);
        let f = self.factor;
        let rects = coarse_part
            .rects()
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Rect::EMPTY
                } else {
                    Rect::new(
                        (r.r0 * f).min(pfx.rows()),
                        (r.r1 * f).min(pfx.rows()),
                        (r.c0 * f).min(pfx.cols()),
                        (r.c1 * f).min(pfx.cols()),
                    )
                }
            })
            .collect();
        Partition::new(rects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::HierRb;
    use crate::jagged::JagMHeur;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> LoadMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        LoadMatrix::from_fn(rows, cols, |_, _| rng.gen_range(1..100))
    }

    #[test]
    fn coarsen_preserves_total_and_shape() {
        let m = random_matrix(17, 23, 1);
        for f in [1, 2, 3, 5, 17, 40] {
            let c = m.coarsen(f);
            assert_eq!(c.total(), m.total(), "factor {f}");
            assert_eq!(c.rows(), 17usize.div_ceil(f));
            assert_eq!(c.cols(), 23usize.div_ceil(f));
        }
        assert_eq!(m.coarsen(1), m);
    }

    #[test]
    fn coarsen_sums_blocks() {
        let m = LoadMatrix::from_vec(2, 4, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let c = m.coarsen(2);
        assert_eq!(c.data(), &[1 + 2 + 5 + 6, 3 + 4 + 7 + 8]);
    }

    #[test]
    fn multilevel_partitions_are_valid() {
        let m = random_matrix(50, 38, 2);
        let pfx = PrefixSum2D::new(&m);
        for f in [2, 3, 7] {
            for algo_m in [1, 4, 9, 12] {
                let ml = Multilevel::new(&m, JagMHeur::best(), f);
                let p = ml.partition(&pfx, algo_m);
                assert!(p.validate(&pfx).is_ok(), "f={f} m={algo_m}");
                assert_eq!(p.parts(), algo_m);
            }
        }
    }

    #[test]
    fn multilevel_no_better_than_full_resolution() {
        let m = random_matrix(64, 64, 3);
        let pfx = PrefixSum2D::new(&m);
        for f in [2, 4, 8] {
            let full = HierRb::load().partition(&pfx, 16).lmax(&pfx);
            let ml = Multilevel::new(&m, HierRb::load(), f)
                .partition(&pfx, 16)
                .lmax(&pfx);
            // Coarse cuts are a subset of fine cuts for this class.
            assert!(ml >= full, "f={f}: {ml} < {full}");
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let m = random_matrix(20, 20, 4);
        let pfx = PrefixSum2D::new(&m);
        let direct = JagMHeur::best().partition(&pfx, 6);
        let ml = Multilevel::new(&m, JagMHeur::best(), 1).partition(&pfx, 6);
        assert_eq!(direct.rects(), ml.rects());
    }

    #[test]
    fn name_reports_the_factor() {
        let m = random_matrix(8, 8, 5);
        let ml = Multilevel::new(&m, HierRb::load(), 4);
        assert_eq!(ml.name(), "HIER-RB-LOAD@1/4");
        assert_eq!(ml.factor(), 4);
    }
}
