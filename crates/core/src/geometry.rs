//! Rectangles and axis selection.

/// One of the two dimensions of the load matrix.
///
/// The jagged algorithms distinguish a *main* dimension (split into
/// stripes) and an *auxiliary* dimension (split independently within each
/// stripe). `Axis::Rows` means the main dimension is the row dimension
/// (`n1` in the paper) — the `-HOR` variants; `Axis::Cols` is `-VER`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Main dimension = rows (dimension 1, paper's `-HOR`).
    Rows,
    /// Main dimension = columns (dimension 2, paper's `-VER`).
    Cols,
}

impl Axis {
    /// The other axis.
    pub fn flip(self) -> Axis {
        match self {
            Axis::Rows => Axis::Cols,
            Axis::Cols => Axis::Rows,
        }
    }
}

/// An axis-aligned rectangle of cells: rows `[r0, r1)` × columns
/// `[c0, c1)`, both half-open.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// First row (inclusive).
    pub r0: usize,
    /// Past-the-end row.
    pub r1: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Past-the-end column.
    pub c1: usize,
}

impl Rect {
    /// A rectangle with no cells, used for idle processors.
    pub const EMPTY: Rect = Rect {
        r0: 0,
        r1: 0,
        c0: 0,
        c1: 0,
    };

    /// Creates a rectangle; panics if the bounds are inverted.
    pub fn new(r0: usize, r1: usize, c0: usize, c1: usize) -> Rect {
        assert!(r0 <= r1 && c0 <= c1, "inverted rectangle bounds");
        Rect { r0, r1, c0, c1 }
    }

    /// Number of cells covered.
    pub fn area(&self) -> usize {
        (self.r1 - self.r0) * (self.c1 - self.c0)
    }

    /// `true` if the rectangle covers no cell.
    pub fn is_empty(&self) -> bool {
        self.r0 == self.r1 || self.c0 == self.c1
    }

    /// Height (rows) of the rectangle.
    pub fn height(&self) -> usize {
        self.r1 - self.r0
    }

    /// Width (columns) of the rectangle.
    pub fn width(&self) -> usize {
        self.c1 - self.c0
    }

    /// `true` if `self` and `other` share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.r0 < other.r1
            && other.r0 < self.r1
            && self.c0 < other.c1
            && other.c0 < self.c1
    }

    /// `true` if the cell `(r, c)` lies inside.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        self.r0 <= r && r < self.r1 && self.c0 <= c && c < self.c1
    }

    /// Length of the boundary shared with `other` when the two rectangles
    /// are edge-adjacent (touching, not overlapping); 0 otherwise. This is
    /// the number of cell pairs exchanging halo data between the two
    /// rectangles in a 4-neighbourhood stencil.
    pub fn shared_boundary(&self, other: &Rect) -> usize {
        if self.is_empty() || other.is_empty() {
            return 0;
        }
        // Vertically adjacent (one on top of the other).
        if self.r1 == other.r0 || other.r1 == self.r0 {
            let lo = self.c0.max(other.c0);
            let hi = self.c1.min(other.c1);
            return hi.saturating_sub(lo);
        }
        // Horizontally adjacent.
        if self.c1 == other.c0 || other.c1 == self.c0 {
            let lo = self.r0.max(other.r0);
            let hi = self.r1.min(other.r1);
            return hi.saturating_sub(lo);
        }
        0
    }

    /// Splits at `r` (row axis) or `c` (column axis) into two rectangles.
    /// The split point must lie within the rectangle's bounds.
    pub fn split(&self, axis: Axis, at: usize) -> (Rect, Rect) {
        match axis {
            Axis::Rows => {
                assert!(self.r0 <= at && at <= self.r1);
                (
                    Rect::new(self.r0, at, self.c0, self.c1),
                    Rect::new(at, self.r1, self.c0, self.c1),
                )
            }
            Axis::Cols => {
                assert!(self.c0 <= at && at <= self.c1);
                (
                    Rect::new(self.r0, self.r1, self.c0, at),
                    Rect::new(self.r0, self.r1, at, self.c1),
                )
            }
        }
    }

    /// Extent `[lo, hi)` along `axis`.
    pub fn extent(&self, axis: Axis) -> (usize, usize) {
        match axis {
            Axis::Rows => (self.r0, self.r1),
            Axis::Cols => (self.c0, self.c1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_emptiness() {
        let r = Rect::new(1, 4, 2, 7);
        assert_eq!(r.area(), 15);
        assert_eq!(r.height(), 3);
        assert_eq!(r.width(), 5);
        assert!(!r.is_empty());
        assert!(Rect::EMPTY.is_empty());
        assert!(Rect::new(3, 3, 0, 5).is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 4, 0, 4);
        assert!(a.intersects(&Rect::new(3, 5, 3, 5)));
        assert!(!a.intersects(&Rect::new(4, 8, 0, 4))); // touching edge
        assert!(!a.intersects(&Rect::new(0, 4, 4, 8)));
        assert!(!a.intersects(&Rect::EMPTY));
        assert!(a.intersects(&a));
    }

    #[test]
    fn contains_cell() {
        let r = Rect::new(2, 4, 1, 3);
        assert!(r.contains(2, 1));
        assert!(r.contains(3, 2));
        assert!(!r.contains(4, 1));
        assert!(!r.contains(2, 3));
    }

    #[test]
    fn shared_boundary_vertical_and_horizontal() {
        let top = Rect::new(0, 2, 0, 4);
        let bottom = Rect::new(2, 4, 1, 6);
        assert_eq!(top.shared_boundary(&bottom), 3); // columns 1..4
        assert_eq!(bottom.shared_boundary(&top), 3);
        let left = Rect::new(0, 3, 0, 2);
        let right = Rect::new(1, 5, 2, 4);
        assert_eq!(left.shared_boundary(&right), 2); // rows 1..3
                                                     // Diagonal touch only: no shared edge.
        let a = Rect::new(0, 2, 0, 2);
        let b = Rect::new(2, 4, 2, 4);
        assert_eq!(a.shared_boundary(&b), 0);
        // Disjoint with a gap.
        assert_eq!(a.shared_boundary(&Rect::new(5, 6, 0, 2)), 0);
    }

    #[test]
    fn split_along_each_axis() {
        let r = Rect::new(0, 4, 0, 6);
        let (t, b) = r.split(Axis::Rows, 1);
        assert_eq!(t, Rect::new(0, 1, 0, 6));
        assert_eq!(b, Rect::new(1, 4, 0, 6));
        let (l, rr) = r.split(Axis::Cols, 6);
        assert_eq!(l, r);
        assert!(rr.is_empty());
    }

    #[test]
    fn axis_flip() {
        assert_eq!(Axis::Rows.flip(), Axis::Cols);
        assert_eq!(Axis::Cols.flip(), Axis::Rows);
    }

    #[test]
    fn extent_follows_axis() {
        let r = Rect::new(1, 4, 2, 7);
        assert_eq!(r.extent(Axis::Rows), (1, 4));
        assert_eq!(r.extent(Axis::Cols), (2, 7));
    }
}
