//! Differential test for the instrumentation layer: every *work* counter
//! (the `counters` section of the obs report, plus the per-shard insert
//! tallies and the convergence traces) must be **bit-identical** at any
//! thread count. Only execution stats and phase timers may differ.
//!
//! The whole file is a single `#[test]` on purpose: obs counters are
//! process-wide, so a second concurrently running test in this binary
//! would pollute the snapshots.

#![cfg(feature = "obs")]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::{
    HierRb, HierRelaxed, JagMHeur, JagMOpt, JagPqHeur, JagPqOpt, LoadMatrix, Partitioner,
    PrefixSum2D, RectNicol, RectUniform,
};
use rectpart_obs::Recorder;
use rectpart_parallel::with_threads;

fn random_matrix(rows: usize, cols: usize, seed: u64, zeros: bool) -> LoadMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    LoadMatrix::from_fn(rows, cols, |_, _| {
        if zeros && rng.gen_bool(0.15) {
            0
        } else {
            rng.gen_range(1..100)
        }
    })
}

/// Runs `f` with the recorder freshly reset under the given thread budget
/// and returns the deterministic view of the snapshot.
fn counters_under<T>(threads: usize, f: impl Fn() -> T) -> rectpart_obs::DeterministicView {
    let rec = Recorder::global();
    rec.reset();
    let _ = with_threads(threads, f);
    rec.snapshot().deterministic_view()
}

#[test]
fn work_counters_are_thread_invariant_across_all_families() {
    assert!(
        Recorder::global().enabled(),
        "this test binary must be built with --features obs"
    );

    let pfx = PrefixSum2D::new(&random_matrix(24, 20, 7, true));
    let small = PrefixSum2D::new(&random_matrix(10, 9, 11, false));

    // (label, closure) per partitioner family; the optimal algorithms run
    // on the smaller instance.
    type Family = Box<dyn Fn()>;
    let families: Vec<(&str, Family)> = vec![
        ("RECT-UNIFORM", {
            let p = pfx.clone();
            Box::new(move || drop(RectUniform::default().partition(&p, 12)))
        }),
        ("RECT-NICOL", {
            let p = pfx.clone();
            Box::new(move || drop(RectNicol::default().partition(&p, 12)))
        }),
        ("JAG-PQ-HEUR-BEST", {
            let p = pfx.clone();
            Box::new(move || drop(JagPqHeur::best().partition(&p, 12)))
        }),
        ("JAG-M-HEUR-BEST", {
            let p = pfx.clone();
            Box::new(move || drop(JagMHeur::best().partition(&p, 12)))
        }),
        ("JAG-PQ-OPT-BEST", {
            let p = small.clone();
            Box::new(move || drop(JagPqOpt::default().partition(&p, 6)))
        }),
        ("JAG-M-OPT-BEST", {
            let p = small.clone();
            Box::new(move || drop(JagMOpt::default().partition(&p, 6)))
        }),
        ("HIER-RB-LOAD", {
            let p = pfx.clone();
            // Above PARALLEL_PROCS_MIN so the forking recursion engages.
            Box::new(move || drop(HierRb::load().partition(&p, 40)))
        }),
        ("HIER-RELAXED-LOAD", {
            let p = pfx.clone();
            Box::new(move || drop(HierRelaxed::load().partition(&p, 40)))
        }),
        ("HIER-OPT", {
            let p = small.clone();
            Box::new(move || drop(rectpart_core::hier_opt(&p, 4)))
        }),
        ("GAMMA-BUILD", {
            let m = random_matrix(300, 260, 3, false);
            Box::new(move || drop(PrefixSum2D::new(&m)))
        }),
        ("GAMMA-BUILD-SPARSE", {
            // ~92% zeros: exercises the CSR-like backend (run detection,
            // SparseGammaRuns) through the forced-sparse constructor.
            let mut rng = StdRng::seed_from_u64(13);
            let m = LoadMatrix::from_fn(120, 95, |_, _| {
                if rng.gen_bool(0.92) {
                    0
                } else {
                    rng.gen_range(1..40)
                }
            });
            Box::new(move || drop(PrefixSum2D::try_new_sparse(&m).unwrap()))
        }),
    ];

    for (label, run) in &families {
        let serial = counters_under(1, run);
        // Work happened at all. RECT-UNIFORM is exempt: its cuts are pure
        // arithmetic (no probes, no caches), so all-zero is correct.
        if *label != "RECT-UNIFORM" {
            assert!(
                serial.0.iter().any(|&(_, v)| v > 0),
                "{label}: no counter recorded under the serial run"
            );
        }
        for threads in [2, 4, 7, 8] {
            let parallel = counters_under(threads, run);
            assert_eq!(
                serial.0, parallel.0,
                "{label} threads={threads}: work counters diverged"
            );
            assert_eq!(
                serial.1, parallel.1,
                "{label} threads={threads}: per-shard inserts diverged"
            );
            assert_eq!(
                serial.2, parallel.2,
                "{label} threads={threads}: traces diverged"
            );
            assert_eq!(
                serial.3, parallel.3,
                "{label} threads={threads}: work-anchored span tree diverged"
            );
        }
    }

    // The span tree is part of the deterministic view (proven invariant
    // above); pin that the solver spans actually populate it — a tree
    // that is empty because instrumentation was dropped would pass the
    // equality check vacuously.
    let span_work = |view: &rectpart_obs::DeterministicView, path: &str| {
        view.3
            .iter()
            .find(|(p, _, _)| p == path)
            .map(|&(_, count, work)| (count, work))
    };
    let nicol_spans = counters_under(1, || drop(RectNicol::default().partition(&pfx, 12)));
    let (refine_count, _) = span_work(&nicol_spans, "core.rect_nicol.refine")
        .expect("RECT-NICOL must record refine spans");
    assert!(refine_count >= 2, "one refine per dimension at minimum");
    assert!(
        span_work(&nicol_spans, "core.rect_nicol.refine;onedim.nicol").is_some(),
        "1D solves must nest inside the refine span"
    );
    let hier_spans = counters_under(4, || drop(HierRb::load().partition(&pfx, 40)));
    let (l0, _) = span_work(&hier_spans, "core.hier.level").expect("root HIER level span");
    assert_eq!(l0, 1, "exactly one depth-0 bipartition node");
    assert!(
        span_work(&hier_spans, "core.hier.level;core.hier.level#1").is_some(),
        "forked recursion must nest depth-1 under depth-0"
    );
    let opt_spans = counters_under(2, || drop(JagMOpt::default().partition(&small, 6)));
    for path in ["onedim.nicol", "core.jag_m.feasibility"] {
        assert!(
            opt_spans.3.iter().any(|(p, _, _)| p.contains(path)),
            "span {path} missing from the JAG-M-OPT profile"
        );
    }

    // Unbounded-cache invariant: the stripe cache never evicts, so the
    // eviction counter stays 0 while lookups flow. A future bounded
    // cache must consciously break this pin (see crates/core/src/cache.rs).
    let cache_run = counters_under(4, || drop(JagPqOpt::default().partition(&small, 6)));
    let get_counter = |view: &rectpart_obs::DeterministicView, name: &str| {
        view.0
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(
        get_counter(&cache_run, "core.stripe_cache.lookups") > 0,
        "JAG-PQ-OPT must consult the stripe cache"
    );
    assert_eq!(
        get_counter(&cache_run, "core.stripe_cache.evictions"),
        0,
        "the stripe cache is unbounded: evictions must stay 0 by construction"
    );

    // The substrate counters introduced with the blocked/sparse Γ
    // builds and the scratch arena are work counters too: they must be
    // present (the paths really ran) on top of the generic invariance
    // proven above.
    let get = |view: &rectpart_obs::DeterministicView, name: &str| {
        view.0
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let dense_build = counters_under(1, || {
        drop(PrefixSum2D::new(&random_matrix(300, 260, 3, false)))
    });
    assert!(
        get(&dense_build, "core.gamma.tile_sweeps") > 0,
        "blocked dense build must record tile sweeps"
    );
    let mut rng = StdRng::seed_from_u64(13);
    let sparse_mat = LoadMatrix::from_fn(120, 95, |_, _| {
        if rng.gen_bool(0.92) {
            0
        } else {
            rng.gen_range(1..40)
        }
    });
    let sparse_build = counters_under(1, || {
        drop(PrefixSum2D::try_new_sparse(&sparse_mat).unwrap())
    });
    assert!(
        get(&sparse_build, "core.gamma.sparse_runs") > 0,
        "sparse build must record nonzero runs"
    );
    let scratch_solve = counters_under(1, || drop(JagMOpt::default().partition(&small, 6)));
    assert!(
        get(&scratch_solve, "onedim.scratch.allocs") > 0,
        "scratch arena checkouts must be counted"
    );
    assert!(
        get(&scratch_solve, "onedim.scratch.reuses") > 0,
        "repeated per-stripe solves must reuse scratch capacity"
    );
}
