//! Differential tests for the parallel execution layer.
//!
//! Every parallel path in this workspace is required to be **bit-
//! identical** to its serial counterpart — not "statistically similar",
//! not "same bottleneck": the same Γ array, the same rectangles in the
//! same order, at every thread count. These tests pin that contract by
//! running each partitioner family under a forced single-thread budget
//! and under forced multi-thread budgets and comparing full outputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart_core::{
    HierRb, HierRelaxed, JagMHeur, JagMOpt, JagPqHeur, JagPqOpt, LoadMatrix, Partition,
    Partitioner, PrefixSum2D, RectNicol, RectUniform,
};
use rectpart_parallel::with_threads;

fn random_matrix(rows: usize, cols: usize, seed: u64, zeros: bool) -> LoadMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    LoadMatrix::from_fn(rows, cols, |_, _| {
        if zeros && rng.gen_bool(0.15) {
            0
        } else {
            rng.gen_range(1..100)
        }
    })
}

/// Runs `algo` serially and under several thread budgets; asserts the
/// full partitions (rect vectors, hence also Lmax) are identical.
fn assert_thread_invariant(algo: &dyn Partitioner, pfx: &PrefixSum2D, m: usize, label: &str) {
    let serial: Partition = with_threads(1, || algo.partition(pfx, m));
    for threads in [2, 4, 7] {
        let parallel = with_threads(threads, || algo.partition(pfx, m));
        assert_eq!(
            serial.rects(),
            parallel.rects(),
            "{label} m={m} threads={threads}: parallel result diverged from serial"
        );
        assert_eq!(serial.lmax(pfx), parallel.lmax(pfx), "{label} m={m}");
    }
}

#[test]
fn prefix_sum_construction_is_thread_invariant() {
    // Shapes straddling the parallel threshold and the chunk boundaries,
    // plus degenerate ones. Compare the serial and parallel constructions
    // entry by entry via load queries over a grid of rectangles.
    for &(rows, cols) in &[(1usize, 7usize), (2, 2), (37, 53), (64, 1), (300, 300)] {
        let mat = random_matrix(rows, cols, 0xC0FFEE ^ (rows * cols) as u64, true);
        let serial = with_threads(1, || PrefixSum2D::new(&mat));
        for threads in [2, 3, 8] {
            let parallel = with_threads(threads, || PrefixSum2D::new(&mat));
            assert_eq!(serial.total(), parallel.total(), "{rows}x{cols}");
            assert_eq!(serial.max_cell(), parallel.max_cell(), "{rows}x{cols}");
            for r0 in (0..rows).step_by(7.min(rows)) {
                for c0 in (0..cols).step_by(5.min(cols)) {
                    assert_eq!(
                        serial.load4(r0, rows, c0, cols),
                        parallel.load4(r0, rows, c0, cols),
                        "{rows}x{cols} t={threads} load4({r0}..{rows}, {c0}..{cols})"
                    );
                }
            }
        }
    }
}

#[test]
fn rect_nicol_is_thread_invariant() {
    for seed in 0..3 {
        let pfx = PrefixSum2D::new(&random_matrix(40, 34, seed, seed == 1));
        for m in [4, 9, 25] {
            assert_thread_invariant(&RectNicol::default(), &pfx, m, "RECT-NICOL");
            assert_thread_invariant(&RectUniform::default(), &pfx, m, "RECT-UNIFORM");
        }
    }
}

#[test]
fn jagged_heuristics_are_thread_invariant() {
    for seed in 0..3 {
        let pfx = PrefixSum2D::new(&random_matrix(36, 28, 100 + seed, seed == 2));
        for m in [5, 16, 30] {
            assert_thread_invariant(&JagPqHeur::best(), &pfx, m, "JAG-PQ-HEUR-BEST");
            assert_thread_invariant(&JagMHeur::best(), &pfx, m, "JAG-M-HEUR-BEST");
        }
    }
}

#[test]
fn jagged_optimals_are_thread_invariant() {
    // The optimal algorithms are expensive; keep instances small.
    for seed in 0..2 {
        let pfx = PrefixSum2D::new(&random_matrix(14, 12, 200 + seed, seed == 0));
        for m in [4, 9] {
            assert_thread_invariant(&JagPqOpt::default(), &pfx, m, "JAG-PQ-OPT-BEST");
            assert_thread_invariant(&JagMOpt::default(), &pfx, m, "JAG-M-OPT-BEST");
        }
    }
}

#[test]
fn hierarchical_heuristics_are_thread_invariant() {
    for seed in 0..2 {
        let pfx = PrefixSum2D::new(&random_matrix(48, 40, 300 + seed, false));
        // Above and below PARALLEL_PROCS_MIN so both recursion paths run.
        for m in [8, 33, 64] {
            assert_thread_invariant(&HierRb::load(), &pfx, m, "HIER-RB-LOAD");
            assert_thread_invariant(&HierRelaxed::load(), &pfx, m, "HIER-RELAXED-LOAD");
        }
    }
}

#[test]
fn hier_opt_is_thread_invariant() {
    let pfx = PrefixSum2D::new(&random_matrix(7, 8, 42, true));
    for m in [2, 3, 5] {
        let (ps, vs) = with_threads(1, || rectpart_core::hier_opt(&pfx, m));
        for threads in [2, 5] {
            let (pp, vp) = with_threads(threads, || rectpart_core::hier_opt(&pfx, m));
            assert_eq!(vs, vp, "m={m} threads={threads}");
            assert_eq!(ps.rects(), pp.rects(), "m={m} threads={threads}");
        }
    }
}

#[test]
fn degenerate_shapes_are_thread_invariant() {
    // 0-row, 0-col and single-cell matrices must behave identically (and
    // not panic) at any thread budget.
    for &(rows, cols) in &[(0usize, 5usize), (5, 0), (0, 0), (1, 1)] {
        let mat = LoadMatrix::from_fn(rows, cols, |_, _| 3);
        let serial = with_threads(1, || PrefixSum2D::new(&mat));
        for threads in [2, 4] {
            let parallel = with_threads(threads, || PrefixSum2D::new(&mat));
            assert_eq!(serial.total(), parallel.total(), "{rows}x{cols}");
            assert_eq!(serial.rows(), parallel.rows());
            assert_eq!(serial.cols(), parallel.cols());
        }
        if rows > 0 && cols > 0 {
            for m in [1, 3] {
                assert_thread_invariant(&JagMHeur::best(), &serial, m, "single-cell");
                assert_thread_invariant(&HierRb::load(), &serial, m, "single-cell");
            }
        }
    }
}

/// With a fault plan injecting worker panics, partitioner output must
/// still be bit-identical at every thread count: a panicked `map_range`
/// worker is retried sequentially before any of its units ran, so the
/// recovery reproduces the exact blocks (and work charges) the worker
/// would have produced. Serial runs never consult the plan at all —
/// which is the point: faults only perturb scheduling, never results.
#[cfg(feature = "faultinject")]
#[test]
fn injected_worker_panics_are_output_invariant() {
    use rectpart_obs::fault::{self, FaultConfig};
    let pfx = PrefixSum2D::new(&random_matrix(36, 28, 77, true));
    let algo = JagMHeur::best();
    let clean: Partition = with_threads(4, || algo.partition(&pfx, 16));
    fault::install(FaultConfig {
        seed: 7,
        panic_workers: vec![0, 2, 3],
        ..FaultConfig::default()
    });
    let serial = with_threads(1, || algo.partition(&pfx, 16));
    let faulted = with_threads(4, || algo.partition(&pfx, 16));
    fault::clear();
    assert_eq!(clean.rects(), faulted.rects());
    assert_eq!(serial.rects(), faulted.rects());
}

/// The Γ backend is a pure representation choice: every partitioner
/// must produce the same rectangles whether queries are answered from
/// the dense table or the CSR-like sparse structure, at one thread and
/// at many. This is the contract that lets `--gamma auto` flip the
/// backend on sparse instances without changing any answer.
#[test]
fn sparse_backend_solutions_are_bit_identical_to_dense() {
    use rectpart_core::GammaMode;
    for seed in 0..2u64 {
        // ≥90%-zero instance, the regime where auto mode picks sparse.
        let mut rng = StdRng::seed_from_u64(0x5AA5 + seed);
        let mat = LoadMatrix::from_fn(41, 37, |_, _| {
            if rng.gen_bool(0.92) {
                0
            } else {
                rng.gen_range(1..50)
            }
        });
        let dense = PrefixSum2D::try_new_with(&mat, GammaMode::Dense).unwrap();
        let sparse = PrefixSum2D::try_new_with(&mat, GammaMode::Sparse).unwrap();
        assert!(!dense.is_sparse());
        assert!(
            sparse.is_sparse(),
            "sparse mode must engage the CSR backend"
        );
        assert_eq!(dense.total(), sparse.total());
        assert_eq!(dense.max_cell(), sparse.max_cell());
        assert_eq!(dense.min_cell(), sparse.min_cell());
        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RectUniform::default()),
            Box::new(RectNicol::default()),
            Box::new(JagMHeur::best()),
            Box::new(JagPqHeur::best()),
            Box::new(JagMOpt::default()),
            Box::new(HierRb::load()),
            Box::new(HierRelaxed::load()),
        ];
        for algo in &algos {
            for m in [4, 9, 16] {
                for threads in [1, 4] {
                    let d: Partition = with_threads(threads, || algo.partition(&dense, m));
                    let s: Partition = with_threads(threads, || algo.partition(&sparse, m));
                    assert_eq!(
                        d.rects(),
                        s.rects(),
                        "{} m={m} threads={threads}: sparse backend diverged from dense",
                        algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn parallelism_config_matches_with_threads() {
    let mat = random_matrix(300, 257, 9, false);
    let a = PrefixSum2D::with_config(&mat, rectpart_core::ParallelismConfig::serial());
    let b = PrefixSum2D::with_config(&mat, rectpart_core::ParallelismConfig::threads(4));
    assert_eq!(a.total(), b.total());
    for r in [0, 17, 299] {
        assert_eq!(a.load4(0, r + 1, 0, 257), b.load4(0, r + 1, 0, 257));
    }
}
