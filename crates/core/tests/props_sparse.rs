//! Property tests for the sparse Γ backend: on arbitrary matrices (any
//! zero density, including all-zero and fully dense), the CSR-like
//! [`SparsePrefixSum`] must answer every rectangle query with exactly
//! the value the dense prefix-sum table produces, and the facade's
//! metadata (total, extrema) must agree. The overflow path is pinned
//! separately via fault injection: forced Γ overflow must surface as
//! `RectpartError::Overflow` from the sparse constructor too, never as
//! a wrong answer.

use proptest::collection::vec;
use proptest::prelude::*;
use rectpart_core::{GammaBackend, GammaMode, LoadMatrix, PrefixSum2D, SparsePrefixSum};

/// Matrix dimensions plus a flat cell vector with a tunable zero bias:
/// `density_sel` drives the fraction of nonzero cells from ~2% to ~100%.
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<u32>)> {
    (1usize..24, 1usize..24, 0u32..4).prop_flat_map(|(rows, cols, density_sel)| {
        let nonzero = 2 + density_sel * 33; // ~2%, 35%, 68%, 100% nonzero
        (
            Just(rows),
            Just(cols),
            vec((0u32..100, 1u32..500), rows * cols).prop_map(move |cells| {
                cells
                    .into_iter()
                    .map(|(p, v)| if p < nonzero { v } else { 0 })
                    .collect()
            }),
        )
    })
}

fn matrix_from(rows: usize, cols: usize, cells: &[u32]) -> LoadMatrix {
    LoadMatrix::from_fn(rows, cols, |r, c| cells[r * cols + c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sparse_sum_matches_dense_on_every_rectangle(
        shape in arb_matrix(),
        corners in vec((0usize..24, 0usize..24, 0usize..24, 0usize..24), 16),
    ) {
        let (rows, cols, cells) = shape;
        let m = matrix_from(rows, cols, &cells);
        let dense = PrefixSum2D::try_new_with(&m, GammaMode::Dense).unwrap();
        let sparse = SparsePrefixSum::try_new(&m).unwrap();
        prop_assert_eq!(sparse.total(), dense.total());
        prop_assert_eq!(sparse.max_cell(), dense.max_cell());
        prop_assert_eq!(sparse.min_cell(), dense.min_cell());
        for &(a, b, c, d) in &corners {
            let (r0, r1) = ((a % rows).min(b % rows), (a % rows).max(b % rows) + 1);
            let (c0, c1) = ((c % cols).min(d % cols), (c % cols).max(d % cols) + 1);
            prop_assert_eq!(
                sparse.sum4(r0, r1, c0, c1),
                dense.sum4(r0, r1, c0, c1),
                "{}x{} rect [{},{})x[{},{})", rows, cols, r0, r1, c0, c1
            );
        }
        // Degenerate (empty) rectangles answer 0 on both backends.
        prop_assert_eq!(sparse.sum4(0, 0, 0, cols), 0);
        prop_assert_eq!(dense.sum4(0, 0, 0, cols), 0);
    }

    #[test]
    fn facade_backends_agree_on_full_row_and_column_bands(
        shape in arb_matrix(),
    ) {
        // Full-width and full-height queries take the O(1) border fast
        // paths in the sparse backend; sweep them all.
        let (rows, cols, cells) = shape;
        let m = matrix_from(rows, cols, &cells);
        let dense = PrefixSum2D::try_new_with(&m, GammaMode::Dense).unwrap();
        let sparse = PrefixSum2D::try_new_with(&m, GammaMode::Sparse).unwrap();
        prop_assert!(sparse.is_sparse());
        for r in 0..rows {
            prop_assert_eq!(sparse.load4(r, rows, 0, cols), dense.load4(r, rows, 0, cols));
            prop_assert_eq!(sparse.load4(0, r + 1, 0, cols), dense.load4(0, r + 1, 0, cols));
        }
        for c in 0..cols {
            prop_assert_eq!(sparse.load4(0, rows, c, cols), dense.load4(0, rows, c, cols));
            prop_assert_eq!(sparse.load4(0, rows, 0, c + 1), dense.load4(0, rows, 0, c + 1));
        }
    }
}

/// Forced Γ overflow must surface as `RectpartError::Overflow` from the
/// sparse constructor exactly as it does from the dense ones — the
/// fallible surface is backend-independent.
#[cfg(feature = "faultinject")]
#[test]
fn sparse_constructor_surfaces_injected_overflow() {
    use rectpart_core::RectpartError;
    use rectpart_obs::fault::{self, FaultConfig};
    let m = LoadMatrix::from_fn(6, 5, |r, c| (r + c) as u32);
    fault::install(FaultConfig {
        force_gamma_overflow: true,
        ..FaultConfig::default()
    });
    let raw = SparsePrefixSum::try_new(&m);
    let facade = PrefixSum2D::try_new_with(&m, GammaMode::Sparse);
    fault::clear();
    assert!(matches!(raw, Err(RectpartError::Overflow)));
    assert!(matches!(facade, Err(RectpartError::Overflow)));
    // With the plan cleared both succeed and agree.
    let ok = SparsePrefixSum::try_new(&m).unwrap();
    assert_eq!(ok.total(), PrefixSum2D::try_new(&m).unwrap().total());
}
