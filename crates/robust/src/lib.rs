//! Fault-tolerant solver driver for the rectpart partitioners.
//!
//! The algorithm crates ([`rectpart_core`], `rectpart-onedim`) follow
//! the paper's contract: given a well-formed instance they always
//! produce a valid partition. This crate wraps that infallible kernel
//! in a boundary suitable for long-running services and batch sweeps,
//! where inputs arrive from files and a wedged or crashed solve is
//! worse than a slightly-worse partition:
//!
//! * **Fallible API** — [`SolverDriver::try_solve`] validates the
//!   instance up front and returns structured [`RectpartError`]s
//!   instead of panicking (degenerate matrices, `m = 0`, `m` larger
//!   than the cell count, Γ overflow, …).
//! * **Budgeted degradation** — the driver runs a *fallback ladder* of
//!   algorithms (optimal → heuristic → closed-form) under a
//!   deterministic work budget measured in [`rectpart_obs::work`]
//!   units, not wall-clock time, so the same budget admits the same
//!   rungs on every machine and at every thread count. The
//!   [`DegradationReport`] records which rung answered and why the
//!   others did not.
//! * **Panic containment** — each rung runs under `catch_unwind`; a
//!   panicking algorithm demotes to the next rung instead of tearing
//!   down the caller. (One layer below, `rectpart-parallel` retries
//!   panicked `map_range` workers sequentially.)
//! * **Deterministic fault injection** — with the default-off
//!   `faultinject` feature, a seeded `FaultPlan` panics chosen
//!   workers and rungs, forces Γ overflow and inflates work charges,
//!   so every degradation path has a reproducible test.
//!
//! ```
//! use rectpart_robust::SolverDriver;
//! use rectpart_core::LoadMatrix;
//!
//! let m = LoadMatrix::from_fn(8, 8, |r, c| (r * c) as u32);
//! let out = SolverDriver::new().with_budget(1_000_000).try_solve(&m, 4).unwrap();
//! assert_eq!(out.report.answered_by.as_deref(), Some("JAG-M-OPT-BEST"));
//! assert!(out.partition.validate(&rectpart_core::PrefixSum2D::new(&m)).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
#[cfg(feature = "faultinject")]
mod fault;

pub use driver::{
    estimate_work, matrix_fingerprint, CheckpointSink, DegradationReport, DriverFailure, NoopSink,
    RetryPolicy, RungOutcome, RungReport, SolveOutcome, SolveProgress, SolverDriver,
    DEFAULT_LADDER,
};
#[cfg(feature = "faultinject")]
pub use fault::FaultPlan;
pub use rectpart_core::RectpartError;
