//! Seeded fault plans (only with the `faultinject` feature).
//!
//! A [`FaultPlan`] is a deterministic description of which faults to
//! inject into the next solve: panic worker *k*, panic rung *r*, force
//! Γ overflow, inflate every work charge ×N. Plans either enumerate
//! faults explicitly (builder methods) or derive them from a seed via
//! SplitMix64, so a failing fuzz case is reproducible from one `u64`.
//!
//! Installation is process-global (`rectpart-obs` owns the injection
//! points); tests that install plans must serialize on a lock and
//! [`FaultPlan::clear`] when done.

use rectpart_obs::fault::FaultConfig;

/// One SplitMix64 step: the standard 64-bit mix used by the shim RNG
/// ecosystem; good enough to spread a seed over fault choices.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state = z ^ (z >> 31);
}

/// A deterministic fault-injection plan: which workers and ladder
/// rungs panic, whether Γ accumulation is forced to overflow, and how
/// much every work charge is inflated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// An empty plan (no faults); add them with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Derives a plan from a seed: one panicked worker in `0..8`, one
    /// panicked rung in `0..3`, and a work multiplier in `1..=4`, all
    /// chosen by independent SplitMix64 draws. The same seed always
    /// yields the same plan.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        splitmix64(&mut s);
        let worker = s % 8;
        splitmix64(&mut s);
        let rung = s % 3;
        splitmix64(&mut s);
        let multiplier = 1 + s % 4;
        FaultPlan {
            cfg: FaultConfig {
                seed,
                panic_workers: vec![worker],
                panic_rungs: vec![rung],
                force_gamma_overflow: false,
                work_multiplier: multiplier,
            },
        }
    }

    /// Panic the `idx`-th spawned `map_range` worker (process-global
    /// spawn order); it is retried sequentially by `rectpart-parallel`.
    pub fn panic_worker(mut self, idx: u64) -> Self {
        self.cfg.panic_workers.push(idx);
        self
    }

    /// Panic ladder rung `idx`; the driver demotes to the next rung.
    pub fn panic_rung(mut self, idx: u64) -> Self {
        self.cfg.panic_rungs.push(idx);
        self
    }

    /// Make the next Γ construction report [`overflow`].
    ///
    /// [`overflow`]: rectpart_core::RectpartError::Overflow
    pub fn force_overflow(mut self) -> Self {
        self.cfg.force_gamma_overflow = true;
        self
    }

    /// Multiply every work charge by `mult` (≥ 1), simulating a slow
    /// machine so budget-degradation paths trigger on small instances.
    pub fn inflate_work(mut self, mult: u64) -> Self {
        self.cfg.work_multiplier = mult.max(1);
        self
    }

    /// Installs the plan process-globally, replacing any previous one
    /// and resetting the worker spawn counter.
    pub fn install(&self) {
        rectpart_obs::fault::install(self.cfg.clone());
    }

    /// Removes the installed plan (whoever installed it).
    pub fn clear() {
        rectpart_obs::fault::clear();
    }

    /// The underlying low-level config.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.config().work_multiplier >= 1);
        assert_eq!(a.config().panic_workers.len(), 1);
        assert_eq!(a.config().panic_rungs.len(), 1);
    }

    #[test]
    fn builder_accumulates_faults() {
        let plan = FaultPlan::new()
            .panic_worker(3)
            .panic_rung(0)
            .panic_rung(1)
            .force_overflow()
            .inflate_work(0);
        assert_eq!(plan.config().panic_workers, vec![3]);
        assert_eq!(plan.config().panic_rungs, vec![0, 1]);
        assert!(plan.config().force_gamma_overflow);
        // Multiplier is clamped to ≥ 1.
        assert_eq!(plan.config().work_multiplier, 1);
    }
}
