//! The budgeted fallback driver.
//!
//! A [`SolverDriver`] owns a *fallback ladder* — an ordered list of
//! algorithm names from the core registry — and an optional work
//! budget. [`SolverDriver::try_solve`] walks the ladder top-down:
//!
//! 1. The instance is validated up front ([`RectpartError::check_problem`])
//!    and Γ is built through the fallible path, so malformed inputs and
//!    overflow surface as errors before any rung runs.
//! 2. Before each rung, a coarse a-priori estimate ([`estimate_work`])
//!    is compared against the remaining budget; rungs that do not fit
//!    are skipped (the last rung is always admitted while any budget
//!    remains, so a tight budget degrades to the cheapest algorithm
//!    instead of failing).
//! 3. Each admitted rung runs under a panic boundary: a panicking
//!    algorithm records [`RungOutcome::Failed`] and control demotes to
//!    the next rung. Solutions are re-validated before being returned.
//!
//! Budget accounting uses the deterministic work meter
//! ([`rectpart_obs::work`]): charges are decided by the algorithms, not
//! the scheduler, so the same budget admits the same rungs — and the
//! [`DegradationReport`] is bit-identical — at every thread count.
//! The budget is enforced only at these serial checkpoints; a running
//! rung is never interrupted, so a rung may overshoot its estimate.

use std::fmt;
use std::panic::AssertUnwindSafe;

use rectpart_core::{
    algorithm_by_name, LoadMatrix, Partition, Partitioner, PrefixSum2D, RectpartError,
};
use rectpart_obs::work;

/// The default fallback ladder: the optimal m-way jagged DP, demoting
/// to the paper's best m-way heuristic, demoting to the closed-form
/// uniform grid (which cannot fail and costs almost nothing).
pub const DEFAULT_LADDER: [&str; 3] = ["JAG-M-OPT-BEST", "JAG-M-HEUR-BEST", "RECT-UNIFORM"];

/// Coarse a-priori work estimate, in [`rectpart_obs::work`] units, for
/// running algorithm `name` on a `rows × cols` instance with `m` parts.
///
/// Used only for budget admission, so it needs the right order of
/// magnitude, not precision: exact DPs are charged one unit per cell
/// per part, heuristics one pass over the matrix plus per-part 1-D
/// solves, and the closed-form uniform grid a handful of units.
pub fn estimate_work(name: &str, rows: usize, cols: usize, m: usize) -> u64 {
    let cells = (rows as u64).saturating_mul(cols as u64);
    let m64 = m as u64;
    let upper = name.to_ascii_uppercase();
    if upper.contains("UNIFORM") {
        m64.saturating_add(1)
    } else if upper.contains("OPT") {
        cells.saturating_mul(m64.max(1)).saturating_add(cells)
    } else {
        cells.saturating_add(m64.saturating_mul((rows + cols) as u64))
    }
}

/// What happened to one ladder rung during a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung produced a validated partition; the solve stopped here.
    Answered {
        /// Bottleneck load of the accepted partition.
        lmax: u64,
    },
    /// The rung ran but did not produce an acceptable partition
    /// (panicked, or returned an invalid cover).
    Failed {
        /// Why the rung was rejected.
        error: RectpartError,
    },
    /// The rung was skipped because its a-priori estimate exceeded the
    /// remaining budget.
    SkippedEstimate {
        /// The rung's [`estimate_work`] value.
        estimate: u64,
        /// Budget units left when the rung was considered.
        remaining: u64,
    },
    /// An earlier rung already answered before this one was considered.
    NotReached,
}

impl RungOutcome {
    fn label(&self) -> String {
        match self {
            RungOutcome::Answered { lmax } => format!("answered (Lmax {lmax})"),
            RungOutcome::Failed { error } => format!("failed: {error}"),
            RungOutcome::SkippedEstimate {
                estimate,
                remaining,
            } => format!("skipped (estimate {estimate} > remaining {remaining})"),
            RungOutcome::NotReached => "not reached".to_string(),
        }
    }
}

/// Per-rung entry of a [`DegradationReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungReport {
    /// Algorithm name, as listed in the ladder.
    pub name: String,
    /// What happened to the rung.
    pub outcome: RungOutcome,
    /// Work units the rung actually spent (0 if skipped/not reached).
    pub work: u64,
}

/// Deterministic record of one driver run: which rungs ran, what each
/// spent, and which one answered.
///
/// Built exclusively from algorithm-decided quantities (work charges,
/// Lmax values, validation verdicts), never from execution statistics,
/// so two runs of the same instance under the same fault plan compare
/// equal with `==` regardless of thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationReport {
    /// Instance shape.
    pub rows: usize,
    /// Instance shape.
    pub cols: usize,
    /// Requested part count.
    pub m: usize,
    /// Work budget the run was given, if any.
    pub budget: Option<u64>,
    /// One entry per ladder rung, in ladder order.
    pub rungs: Vec<RungReport>,
    /// Name of the rung that answered, if any.
    pub answered_by: Option<String>,
    /// Total work units spent by the run, including Γ construction.
    pub total_work: u64,
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Some(b) => writeln!(
                f,
                "{}x{} m={}: budget {} units, spent {}",
                self.rows, self.cols, self.m, b, self.total_work
            )?,
            None => writeln!(
                f,
                "{}x{} m={}: unbudgeted, spent {} units",
                self.rows, self.cols, self.m, self.total_work
            )?,
        }
        for (i, r) in self.rungs.iter().enumerate() {
            writeln!(
                f,
                "  [{}] {:<18} {} ({} units)",
                i,
                r.name,
                r.outcome.label(),
                r.work
            )?;
        }
        Ok(())
    }
}

/// A successful driver run: the partition plus the full rung record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// The accepted (validated) partition.
    pub partition: Partition,
    /// What the ladder did to produce it.
    pub report: DegradationReport,
}

/// A failed driver run: the terminal error plus the rung record, so
/// callers can still see how far the ladder got. The report is boxed
/// to keep the `Err` arm of [`SolverDriver::try_solve`] pointer-sized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverFailure {
    /// The error that terminated the run.
    pub error: RectpartError,
    /// What the ladder did before failing.
    pub report: Box<DegradationReport>,
}

impl fmt::Display for DriverFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solve failed: {}\n{}", self.error, self.report)
    }
}

impl std::error::Error for DriverFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<DriverFailure> for RectpartError {
    fn from(f: DriverFailure) -> Self {
        f.error
    }
}

/// The fault-tolerant, budgeted solver driver. See the crate docs for
/// the execution model.
#[derive(Debug, Clone)]
pub struct SolverDriver {
    ladder: Vec<String>,
    budget: Option<u64>,
}

impl Default for SolverDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverDriver {
    /// A driver with the [`DEFAULT_LADDER`] and no budget.
    pub fn new() -> Self {
        SolverDriver {
            ladder: DEFAULT_LADDER.iter().map(|s| s.to_string()).collect(),
            budget: None,
        }
    }

    /// Replaces the fallback ladder. Names are resolved against the
    /// core registry (case-insensitively) at solve time.
    pub fn with_ladder<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.ladder = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the work budget, in deterministic [`rectpart_obs::work`]
    /// units (Γ construction charges one unit per cell; probes one unit
    /// per call — see `estimate_work` for the admission model).
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// The configured ladder, in order.
    pub fn ladder(&self) -> &[String] {
        &self.ladder
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Validates the instance, then walks the fallback ladder until a
    /// rung answers. Returns the first validated partition together
    /// with the [`DegradationReport`]; on failure the report is still
    /// attached to the [`DriverFailure`].
    pub fn try_solve(&self, matrix: &LoadMatrix, m: usize) -> Result<SolveOutcome, DriverFailure> {
        let mut rungs: Vec<(String, Box<dyn Partitioner>)> = Vec::with_capacity(self.ladder.len());
        for name in &self.ladder {
            match algorithm_by_name(name) {
                Some(algo) => rungs.push((name.clone(), algo)),
                None => {
                    return Err(self.failure_before_rungs(
                        matrix,
                        m,
                        RectpartError::UnknownAlgorithm(name.clone()),
                    ));
                }
            }
        }
        self.try_solve_with(rungs, matrix, m)
    }

    /// [`try_solve`](Self::try_solve) with explicit, pre-resolved rungs
    /// instead of registry names — the hook for custom ladders and for
    /// fault tests that need a deliberately misbehaving partitioner.
    pub fn try_solve_with(
        &self,
        rungs: Vec<(String, Box<dyn Partitioner>)>,
        matrix: &LoadMatrix,
        m: usize,
    ) -> Result<SolveOutcome, DriverFailure> {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        if rungs.is_empty() {
            return Err(self.failure_before_rungs(
                matrix,
                m,
                RectpartError::UnknownAlgorithm("(empty fallback ladder)".into()),
            ));
        }
        if let Err(e) = RectpartError::check_problem(rows, cols, m) {
            let mut failure = self.failure_before_rungs(matrix, m, e);
            failure.report.rungs = rungs
                .iter()
                .map(|(name, _)| RungReport {
                    name: name.clone(),
                    outcome: RungOutcome::NotReached,
                    work: 0,
                })
                .collect();
            return Err(failure);
        }

        // Everything from here on counts against the budget, including
        // Γ construction (one work unit per cell).
        let start = work::Mark::now();
        let pfx = match PrefixSum2D::try_new(matrix) {
            Ok(pfx) => pfx,
            Err(e) => {
                let mut failure = self.failure_before_rungs(matrix, m, e);
                failure.report.rungs = rungs
                    .iter()
                    .map(|(name, _)| RungReport {
                        name: name.clone(),
                        outcome: RungOutcome::NotReached,
                        work: 0,
                    })
                    .collect();
                failure.report.total_work = start.elapsed();
                return Err(failure);
            }
        };

        let mut reports: Vec<RungReport> = Vec::with_capacity(rungs.len());
        let mut answered: Option<Partition> = None;
        let mut answered_by: Option<String> = None;
        let mut last_failure: Option<RectpartError> = None;
        let mut budget_blocked = false;

        let n_rungs = rungs.len();
        for (idx, (name, algo)) in rungs.iter().enumerate() {
            if answered.is_some() {
                reports.push(RungReport {
                    name: name.clone(),
                    outcome: RungOutcome::NotReached,
                    work: 0,
                });
                continue;
            }
            // Budget admission: serial checkpoint against the meter.
            if let Some(budget) = self.budget {
                let remaining = budget.saturating_sub(start.elapsed());
                let estimate = estimate_work(name, rows, cols, m);
                let last = idx == n_rungs - 1;
                let admit = if last {
                    remaining > 0
                } else {
                    estimate <= remaining
                };
                if !admit {
                    budget_blocked = true;
                    reports.push(RungReport {
                        name: name.clone(),
                        outcome: RungOutcome::SkippedEstimate {
                            estimate,
                            remaining,
                        },
                        work: 0,
                    });
                    continue;
                }
            }
            let rung_mark = work::Mark::now();
            // The rung span wraps the panic boundary from outside: guards
            // are plain RAII, so an unwinding rung still exits its span
            // here rather than leaking an open frame into the next rung.
            let _rung_span =
                rectpart_obs::span::enter_arg(rectpart_obs::span::SpanKind::DriverRung, idx as u32);
            // lint:allow(panic) -- the workspace's one intentional panic boundary: a panicking rung demotes to the next ladder entry instead of tearing down the caller
            let solved = std::panic::catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "faultinject")]
                if rectpart_obs::fault::rung_should_panic(idx as u64) {
                    // lint:allow(panic) -- faultinject: deliberate injected rung panic, contained by the catch_unwind boundary above
                    panic!("injected rung fault");
                }
                algo.partition(&pfx, m)
            }));
            let rung_work = rung_mark.elapsed();
            match solved {
                Ok(partition) => match partition.validate(&pfx) {
                    Ok(()) => {
                        let lmax = partition.lmax(&pfx);
                        reports.push(RungReport {
                            name: name.clone(),
                            outcome: RungOutcome::Answered { lmax },
                            work: rung_work,
                        });
                        answered = Some(partition);
                        answered_by = Some(name.clone());
                    }
                    Err(pe) => {
                        let e = RectpartError::InvalidSolution(pe);
                        reports.push(RungReport {
                            name: name.clone(),
                            outcome: RungOutcome::Failed { error: e.clone() },
                            work: rung_work,
                        });
                        last_failure = Some(e);
                    }
                },
                Err(_payload) => {
                    let e = RectpartError::WorkerPanic { rung: name.clone() };
                    reports.push(RungReport {
                        name: name.clone(),
                        outcome: RungOutcome::Failed { error: e.clone() },
                        work: rung_work,
                    });
                    last_failure = Some(e);
                }
            }
        }

        let report = DegradationReport {
            rows,
            cols,
            m,
            budget: self.budget,
            rungs: reports,
            answered_by: answered_by.clone(),
            total_work: start.elapsed(),
        };
        match answered {
            Some(partition) => Ok(SolveOutcome { partition, report }),
            None => {
                let error = if budget_blocked && last_failure.is_none() {
                    RectpartError::BudgetExhausted {
                        budget: self.budget.unwrap_or(0),
                        spent: report.total_work,
                    }
                } else {
                    last_failure.unwrap_or(RectpartError::UnknownAlgorithm(
                        "(no rung produced an answer)".into(),
                    ))
                };
                Err(DriverFailure {
                    error,
                    report: Box::new(report),
                })
            }
        }
    }

    /// A failure whose report shows the configured ladder untouched.
    fn failure_before_rungs(
        &self,
        matrix: &LoadMatrix,
        m: usize,
        error: RectpartError,
    ) -> DriverFailure {
        DriverFailure {
            error,
            report: Box::new(DegradationReport {
                rows: matrix.rows(),
                cols: matrix.cols(),
                m,
                budget: self.budget,
                rungs: self
                    .ladder
                    .iter()
                    .map(|name| RungReport {
                        name: name.clone(),
                        outcome: RungOutcome::NotReached,
                        work: 0,
                    })
                    .collect(),
                answered_by: None,
                total_work: 0,
            }),
        }
    }
}
